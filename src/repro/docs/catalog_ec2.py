"""The EC2 documentation catalog: 28 resources, as in the paper's Fig. 4.

Ten core resources (the VPC networking and compute primitives the
paper's scenarios exercise) carry full behavioural documentation,
including the subtle checks §5 calls out: VPC deletion dependency
violations, subnet prefix-length limits, CIDR containment/overlap,
instance state preconditions, `instance_tenancy` and
`credit_specification` attributes, and the DNS support/hostnames
context rule.  The remaining 18 follow the standard
create/destroy/describe/modify pattern with lighter behaviour.

Rules built with :func:`repro.docs.model.undocumented` are enforced by
the real cloud but omitted from rendered documentation — the
documentation-drift gap that only automated alignment (§4.3) closes.
"""

from __future__ import annotations

from .build import (
    api,
    attr,
    make_create,
    make_delete,
    make_describe,
    make_modify,
    param,
    resource,
)
from .model import rule, ServiceDoc, undocumented

#: Instance types the docs admit; anything else is rejected.
INSTANCE_TYPES = ("t2.micro", "t3.micro", "t3.medium", "m5.large", "c5.large")

#: Endpoint service names the docs admit.
ENDPOINT_SERVICES = ("s3", "dynamodb", "kinesis", "secretsmanager")


def _vpc() -> "resource":
    attrs = [
        attr("cidr_block"),
        attr("state", "Enum", enum=("pending", "available"), default="pending"),
        attr("instance_tenancy", "Enum", enum=("default", "dedicated"),
             default="default"),
        attr("enable_dns_support", "Boolean", default=True),
        attr("enable_dns_hostnames", "Boolean", default=False),
        attr("is_default", "Boolean", default=False),
        attr("subnet_cidrs", "List"),
        attr("gateways", "List"),
        attr("endpoints", "List"),
    ]
    create = make_create(
        "vpc",
        "CreateVpc",
        [param("cidr_block", required=True), param("instance_tenancy")],
        attrs,
        extra_rules=[
            rule("check_valid_cidr", param="cidr_block",
                 code="InvalidParameterValue"),
            rule("check_prefix_between", param="cidr_block", lo=16, hi=28,
                 code="InvalidVpc.Range"),
            rule("require_one_of", param="instance_tenancy",
                 values=("default", "dedicated"), code="InvalidParameterValue"),
            rule("set_attr_const", attr="state", value="available"),
        ],
        desc="Creates a VPC with the specified IPv4 CIDR block.",
    )
    delete = make_delete(
        "vpc",
        "DeleteVpc",
        guard_rules=[
            rule("check_list_empty", attr="gateways", code="DependencyViolation"),
            rule("check_list_empty", attr="endpoints", code="DependencyViolation"),
            rule("check_list_empty", attr="subnet_cidrs",
                 code="DependencyViolation"),
        ],
        desc="Deletes the specified VPC. All gateways, endpoints and subnets "
             "must be deleted or detached first.",
    )
    modify = api(
        "ModifyVpcAttribute",
        "modify",
        [
            param("vpc_id", required=True),
            param("enable_dns_support", "Boolean"),
            param("enable_dns_hostnames", "Boolean"),
        ],
        [
            rule("require_param", param="vpc_id", code="MissingParameter"),
            # Real AWS rejects enabling DNS hostnames on a VPC whose DNS
            # support is disabled; the docs never spell this out (§5's
            # "lack of resource context" example), so only alignment
            # against the cloud can teach an emulator this rule.
            undocumented(
                "check_param_implies_attr",
                param="enable_dns_hostnames", value=True,
                attr="enable_dns_support", attr_value=True,
                code="InvalidParameterValue",
            ),
            rule("set_attr_param", attr="enable_dns_support",
                 param="enable_dns_support"),
            rule("set_attr_param", attr="enable_dns_hostnames",
                 param="enable_dns_hostnames"),
        ],
        desc="Modifies the DNS attributes of the specified VPC.",
    )
    modify_tenancy = api(
        "ModifyVpcTenancy",
        "modify",
        [param("vpc_id", required=True), param("instance_tenancy")],
        [
            rule("require_param", param="vpc_id", code="MissingParameter"),
            rule("require_one_of", param="instance_tenancy",
                 values=("default",), code="InvalidParameterValue"),
            rule("set_attr_param", attr="instance_tenancy",
                 param="instance_tenancy"),
        ],
        desc="Modifies the instance tenancy of the specified VPC. Tenancy "
             "can only be changed to 'default'.",
    )
    describe = make_describe("vpc", "DescribeVpcs", attrs)
    describe_attribute = api(
        "DescribeVpcAttribute",
        "describe",
        [param("vpc_id", required=True)],
        [
            rule("read_attr", attr="enable_dns_support"),
            rule("read_attr", attr="enable_dns_hostnames"),
        ],
        desc="Describes the DNS attributes of the specified VPC.",
    )
    return resource(
        "vpc",
        attrs,
        [create, delete, describe, describe_attribute, modify, modify_tenancy],
        desc="A virtual private cloud: an isolated virtual network.",
        notfound="InvalidVpcID.NotFound",
    )


def _subnet() -> "resource":
    attrs = [
        attr("cidr_block"),
        attr("vpc", "Reference", ref="vpc"),
        attr("state", "Enum", enum=("pending", "available"), default="pending"),
        attr("availability_zone"),
        attr("map_public_ip_on_launch", "Boolean", default=False),
        attr("interfaces", "List"),
        attr("instances", "List"),
    ]
    create = make_create(
        "subnet",
        "CreateSubnet",
        [
            param("vpc_id", "Reference", required=True, ref="vpc"),
            param("cidr_block", required=True),
            param("availability_zone"),
        ],
        attrs,
        extra_rules=[
            rule("check_valid_cidr", param="cidr_block",
                 code="InvalidParameterValue"),
            # AWS subnets must be between /16 and /28; a /29 request must
            # be rejected (the shallow-validation example of §5).
            rule("check_prefix_between", param="cidr_block", lo=16, hi=28,
                 code="InvalidSubnet.Range"),
            rule("check_cidr_within", param="cidr_block", ref="vpc_id",
                 ref_attr="cidr_block", code="InvalidSubnet.Range"),
            rule("check_no_overlap", param="cidr_block", ref="vpc_id",
                 list_attr="subnet_cidrs", code="InvalidSubnet.Conflict"),
            rule("set_attr_const", attr="state", value="available"),
            rule("link_ref", attr="vpc", param="vpc_id"),
            rule("track_in_ref", param="vpc_id", list_attr="subnet_cidrs",
                 source="cidr_block"),
        ],
        desc="Creates a subnet in the specified VPC.",
    )
    delete = make_delete(
        "subnet",
        "DeleteSubnet",
        guard_rules=[
            rule("check_list_empty", attr="interfaces",
                 code="DependencyViolation"),
            rule("check_list_empty", attr="instances",
                 code="DependencyViolation"),
            rule("untrack_in_attr", attr="vpc", list_attr="subnet_cidrs",
                 source="cidr_block"),
        ],
        desc="Deletes the specified subnet. All instances and network "
             "interfaces in the subnet must be terminated first.",
    )
    modify = api(
        "ModifySubnetAttribute",
        "modify",
        [
            param("subnet_id", required=True),
            param("map_public_ip_on_launch", "Boolean"),
        ],
        [
            rule("require_param", param="subnet_id", code="MissingParameter"),
            rule("set_attr_param", attr="map_public_ip_on_launch",
                 param="map_public_ip_on_launch"),
        ],
        desc="Modifies the attributes of the specified subnet, e.g. whether "
             "instances launched into it receive a public IPv4 address.",
    )
    describe = make_describe("subnet", "DescribeSubnets", attrs)
    return resource(
        "subnet",
        attrs,
        [create, delete, describe, modify],
        parent="vpc",
        desc="A range of IP addresses in a VPC, tied to one availability zone.",
        notfound="InvalidSubnetID.NotFound",
    )


def _internet_gateway() -> "resource":
    attrs = [attr("vpc", "Reference", ref="vpc"),
             attr("state", "Enum", enum=("detached", "attached"),
                  default="detached")]
    create = make_create(
        "internet_gateway", "CreateInternetGateway", [], attrs,
        desc="Creates an internet gateway for use with a VPC.",
    )
    attach = api(
        "AttachInternetGateway",
        "modify",
        [
            param("internet_gateway_id", required=True),
            param("vpc_id", "Reference", required=True, ref="vpc"),
        ],
        [
            rule("require_param", param="internet_gateway_id",
                 code="MissingParameter"),
            rule("require_param", param="vpc_id", code="MissingParameter"),
            rule("check_attr_unset", attr="vpc",
                 code="Resource.AlreadyAssociated"),
            rule("link_ref", attr="vpc", param="vpc_id"),
            rule("set_attr_const", attr="state", value="attached"),
            rule("track_in_ref", param="vpc_id", list_attr="gateways",
                 source="id"),
        ],
        desc="Attaches an internet gateway to a VPC, enabling connectivity "
             "between the internet and the VPC.",
    )
    detach = api(
        "DetachInternetGateway",
        "modify",
        [param("internet_gateway_id", required=True)],
        [
            rule("require_param", param="internet_gateway_id",
                 code="MissingParameter"),
            rule("check_attr_set", attr="vpc", code="Gateway.NotAttached"),
            rule("untrack_in_attr", attr="vpc", list_attr="gateways",
                 source="id"),
            rule("clear_attr", attr="vpc"),
            rule("set_attr_const", attr="state", value="detached"),
        ],
        desc="Detaches an internet gateway from its VPC.",
    )
    delete = make_delete(
        "internet_gateway",
        "DeleteInternetGateway",
        guard_rules=[
            rule("check_attr_unset", attr="vpc", code="DependencyViolation"),
        ],
        desc="Deletes the specified internet gateway. The gateway must be "
             "detached from its VPC first.",
    )
    describe = make_describe("internet_gateway", "DescribeInternetGateways",
                             attrs)
    return resource(
        "internet_gateway",
        attrs,
        [create, attach, detach, delete, describe],
        desc="A gateway that connects a VPC to the internet.",
        notfound="InvalidInternetGatewayID.NotFound",
    )


def _instance() -> "resource":
    attrs = [
        attr("state", "Enum",
             enum=("pending", "running", "stopping", "stopped", "terminated"),
             default="pending"),
        attr("instance_type"),
        attr("image_id"),
        attr("key_name"),
        attr("subnet", "Reference", ref="subnet"),
        attr("instance_tenancy", "Enum", enum=("default", "dedicated"),
             default="default"),
        attr("credit_specification", "Enum", enum=("standard", "unlimited"),
             default="standard"),
        attr("public_ip"),
    ]
    run = make_create(
        "instance",
        "RunInstances",
        [
            param("subnet_id", "Reference", required=True, ref="subnet"),
            param("image_id", required=True),
            param("instance_type", required=True),
            param("key_name"),
            param("instance_tenancy"),
            param("credit_specification"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="instance_type",
                 values=INSTANCE_TYPES, code="InvalidParameterValue"),
            rule("require_one_of", param="instance_tenancy",
                 values=("default", "dedicated"), code="InvalidParameterValue"),
            rule("require_one_of", param="credit_specification",
                 values=("standard", "unlimited"), code="InvalidParameterValue"),
            rule("set_attr_const", attr="state", value="running"),
            rule("link_ref", attr="subnet", param="subnet_id"),
            rule("track_in_ref", param="subnet_id", list_attr="instances",
                 source="id"),
        ],
        desc="Launches an instance into the specified subnet.",
    )
    start = api(
        "StartInstances",
        "modify",
        [param("instance_id", required=True)],
        [
            rule("require_param", param="instance_id", code="MissingParameter"),
            # The real cloud rejects starting a non-stopped instance with
            # IncorrectInstanceState, but the API reference omits this —
            # the exact silent-success trap §5 reports for D2C.
            undocumented("check_attr_is", attr="state", value="stopped",
                         code="IncorrectInstanceState"),
            rule("set_attr_const", attr="state", value="running"),
        ],
        desc="Starts a stopped instance.",
    )
    stop = api(
        "StopInstances",
        "modify",
        [param("instance_id", required=True)],
        [
            rule("require_param", param="instance_id", code="MissingParameter"),
            rule("check_attr_is", attr="state", value="running",
                 code="IncorrectInstanceState"),
            rule("set_attr_const", attr="state", value="stopped"),
        ],
        desc="Stops a running instance.",
    )
    terminate = api(
        "TerminateInstances",
        "modify",
        [param("instance_id", required=True)],
        [
            rule("require_param", param="instance_id", code="MissingParameter"),
            rule("check_attr_is_not", attr="state", value="terminated",
                 code="IncorrectInstanceState"),
            rule("untrack_in_attr", attr="subnet", list_attr="instances",
                 source="id"),
            rule("clear_attr", attr="subnet"),
            rule("set_attr_const", attr="state", value="terminated"),
        ],
        desc="Terminates the specified instance. Terminated instances remain "
             "visible for a while with state 'terminated'.",
    )
    modify_attribute = api(
        "ModifyInstanceAttribute",
        "modify",
        [param("instance_id", required=True), param("instance_type")],
        [
            rule("require_param", param="instance_id", code="MissingParameter"),
            rule("check_attr_is", attr="state", value="stopped",
                 code="IncorrectInstanceState"),
            rule("require_one_of", param="instance_type",
                 values=INSTANCE_TYPES, code="InvalidParameterValue"),
            rule("set_attr_param", attr="instance_type",
                 param="instance_type"),
        ],
        desc="Modifies an attribute of a stopped instance.",
    )
    modify_credit = api(
        "ModifyInstanceCreditSpecification",
        "modify",
        [param("instance_id", required=True), param("credit_specification")],
        [
            rule("require_param", param="instance_id", code="MissingParameter"),
            rule("require_param", param="credit_specification",
                 code="MissingParameter"),
            rule("require_one_of", param="credit_specification",
                 values=("standard", "unlimited"), code="InvalidParameterValue"),
            rule("set_attr_param", attr="credit_specification",
                 param="credit_specification"),
        ],
        desc="Modifies the credit option for CPU usage of a burstable "
             "performance instance.",
    )
    describe = make_describe("instance", "DescribeInstances", attrs)
    describe_status = api(
        "DescribeInstanceStatus",
        "describe",
        [param("instance_id", required=True)],
        [rule("read_attr", attr="state")],
        desc="Describes the status of the specified instance.",
    )
    return resource(
        "instance",
        attrs,
        [run, start, stop, terminate, modify_attribute, modify_credit,
         describe, describe_status],
        parent="subnet",
        desc="A virtual machine launched from an image into a subnet.",
        notfound="InvalidInstanceID.NotFound",
    )


def _elastic_ip() -> "resource":
    attrs = [
        attr("public_ip"),
        attr("domain", "Enum", enum=("vpc", "standard"), default="vpc"),
        attr("instance", "Reference", ref="instance"),
        attr("association_id"),
    ]
    allocate = make_create(
        "elastic_ip",
        "AllocateAddress",
        [],
        attrs,
        extra_rules=[
            rule("set_attr_fresh", attr="public_ip"),
            rule("set_attr_const", attr="domain", value="vpc"),
        ],
        desc="Allocates an Elastic IP address for use in a VPC.",
    )
    associate = api(
        "AssociateAddress",
        "modify",
        [
            param("elastic_ip_id", required=True),
            param("instance_id", "Reference", required=True, ref="instance"),
        ],
        [
            rule("require_param", param="elastic_ip_id",
                 code="MissingParameter"),
            rule("require_param", param="instance_id", code="MissingParameter"),
            rule("check_attr_unset", attr="instance",
                 code="Resource.AlreadyAssociated"),
            rule("check_ref_attr_is", ref="instance_id", ref_attr="state",
                 value="running", code="IncorrectInstanceState"),
            rule("link_ref", attr="instance", param="instance_id"),
            rule("set_attr_fresh", attr="association_id"),
        ],
        desc="Associates an Elastic IP address with a running instance.",
    )
    disassociate = api(
        "DisassociateAddress",
        "modify",
        [param("elastic_ip_id", required=True)],
        [
            rule("require_param", param="elastic_ip_id",
                 code="MissingParameter"),
            rule("check_attr_set", attr="instance",
                 code="InvalidAssociationID.NotFound"),
            rule("clear_attr", attr="instance"),
            rule("clear_attr", attr="association_id"),
        ],
        desc="Disassociates an Elastic IP address from its instance.",
    )
    release = make_delete(
        "elastic_ip",
        "ReleaseAddress",
        guard_rules=[
            rule("check_attr_unset", attr="instance",
                 code="InvalidIPAddress.InUse"),
        ],
        desc="Releases the specified Elastic IP address. The address must "
             "not be associated with an instance.",
    )
    describe = make_describe("elastic_ip", "DescribeAddresses", attrs)
    return resource(
        "elastic_ip",
        attrs,
        [allocate, associate, disassociate, release, describe],
        desc="A static public IPv4 address for dynamic cloud computing.",
        notfound="InvalidAllocationID.NotFound",
    )


def _network_interface() -> "resource":
    attrs = [
        attr("subnet", "Reference", ref="subnet"),
        attr("description"),
        attr("status", "Enum", enum=("available", "in_use"),
             default="available"),
        attr("attachment", "Reference", ref="instance"),
    ]
    create = make_create(
        "network_interface",
        "CreateNetworkInterface",
        [
            param("subnet_id", "Reference", required=True, ref="subnet"),
            param("description"),
        ],
        attrs,
        extra_rules=[
            rule("link_ref", attr="subnet", param="subnet_id"),
            rule("track_in_ref", param="subnet_id", list_attr="interfaces",
                 source="id"),
        ],
        desc="Creates a network interface in the specified subnet.",
    )
    attach = api(
        "AttachNetworkInterface",
        "modify",
        [
            param("network_interface_id", required=True),
            param("instance_id", "Reference", required=True, ref="instance"),
        ],
        [
            rule("require_param", param="network_interface_id",
                 code="MissingParameter"),
            rule("require_param", param="instance_id", code="MissingParameter"),
            rule("check_attr_unset", attr="attachment",
                 code="Resource.AlreadyAssociated"),
            rule("link_ref", attr="attachment", param="instance_id"),
            rule("set_attr_const", attr="status", value="in_use"),
        ],
        desc="Attaches a network interface to an instance.",
    )
    detach = api(
        "DetachNetworkInterface",
        "modify",
        [param("network_interface_id", required=True)],
        [
            rule("require_param", param="network_interface_id",
                 code="MissingParameter"),
            rule("check_attr_set", attr="attachment",
                 code="InvalidAttachmentID.NotFound"),
            rule("clear_attr", attr="attachment"),
            rule("set_attr_const", attr="status", value="available"),
        ],
        desc="Detaches a network interface from its instance.",
    )
    delete = make_delete(
        "network_interface",
        "DeleteNetworkInterface",
        guard_rules=[
            rule("check_attr_unset", attr="attachment",
                 code="InvalidNetworkInterface.InUse"),
            rule("untrack_in_attr", attr="subnet", list_attr="interfaces",
                 source="id"),
        ],
        desc="Deletes the specified network interface. The interface must "
             "be detached first.",
    )
    describe = make_describe("network_interface", "DescribeNetworkInterfaces",
                             attrs)
    modify = make_modify(
        "network_interface", "ModifyNetworkInterfaceAttribute", "description",
        desc="Modifies the description of a network interface.",
    )
    return resource(
        "network_interface",
        attrs,
        [create, attach, detach, delete, describe, modify],
        parent="subnet",
        desc="A virtual network card attachable to an instance.",
        notfound="InvalidNetworkInterfaceID.NotFound",
    )


def _security_group() -> "resource":
    attrs = [
        attr("group_name"),
        attr("description"),
        attr("vpc", "Reference", ref="vpc"),
        attr("ingress_rules", "List"),
        attr("egress_rules", "List"),
    ]
    create = make_create(
        "security_group",
        "CreateSecurityGroup",
        [
            param("group_name", required=True),
            param("description", required=True),
            param("vpc_id", "Reference", required=True, ref="vpc"),
        ],
        attrs,
        extra_rules=[rule("link_ref", attr="vpc", param="vpc_id")],
        desc="Creates a security group in the specified VPC.",
    )
    authorize_ingress = api(
        "AuthorizeSecurityGroupIngress",
        "modify",
        [param("security_group_id", required=True), param("cidr", required=True)],
        [
            rule("require_param", param="security_group_id",
                 code="MissingParameter"),
            rule("require_param", param="cidr", code="MissingParameter"),
            rule("check_valid_cidr", param="cidr", code="InvalidParameterValue"),
            rule("check_not_in_list", param="cidr", attr="ingress_rules",
                 code="InvalidPermission.Duplicate"),
            rule("append_to_attr", attr="ingress_rules", param="cidr"),
        ],
        desc="Adds an inbound rule to the specified security group.",
    )
    revoke_ingress = api(
        "RevokeSecurityGroupIngress",
        "modify",
        [param("security_group_id", required=True), param("cidr", required=True)],
        [
            rule("require_param", param="security_group_id",
                 code="MissingParameter"),
            rule("require_param", param="cidr", code="MissingParameter"),
            rule("check_in_list", param="cidr", attr="ingress_rules",
                 code="InvalidPermission.NotFound"),
            rule("remove_from_attr", attr="ingress_rules", param="cidr"),
        ],
        desc="Removes an inbound rule from the specified security group.",
    )
    authorize_egress = api(
        "AuthorizeSecurityGroupEgress",
        "modify",
        [param("security_group_id", required=True), param("cidr", required=True)],
        [
            rule("require_param", param="security_group_id",
                 code="MissingParameter"),
            rule("require_param", param="cidr", code="MissingParameter"),
            rule("check_valid_cidr", param="cidr", code="InvalidParameterValue"),
            rule("check_not_in_list", param="cidr", attr="egress_rules",
                 code="InvalidPermission.Duplicate"),
            rule("append_to_attr", attr="egress_rules", param="cidr"),
        ],
        desc="Adds an outbound rule to the specified security group.",
    )
    revoke_egress = api(
        "RevokeSecurityGroupEgress",
        "modify",
        [param("security_group_id", required=True), param("cidr", required=True)],
        [
            rule("require_param", param="security_group_id",
                 code="MissingParameter"),
            rule("require_param", param="cidr", code="MissingParameter"),
            rule("check_in_list", param="cidr", attr="egress_rules",
                 code="InvalidPermission.NotFound"),
            rule("remove_from_attr", attr="egress_rules", param="cidr"),
        ],
        desc="Removes an outbound rule from the specified security group.",
    )
    delete = make_delete("security_group", "DeleteSecurityGroup",
                         desc="Deletes the specified security group.")
    describe = make_describe("security_group", "DescribeSecurityGroups", attrs)
    return resource(
        "security_group",
        attrs,
        [create, authorize_ingress, revoke_ingress, authorize_egress,
         revoke_egress, delete, describe],
        parent="vpc",
        desc="A virtual firewall controlling traffic for instances.",
        notfound="InvalidGroupID.NotFound",
    )


def _route_table() -> "resource":
    attrs = [
        attr("vpc", "Reference", ref="vpc"),
        attr("routes", "List"),
        attr("associations", "List"),
    ]
    create = make_create(
        "route_table",
        "CreateRouteTable",
        [param("vpc_id", "Reference", required=True, ref="vpc")],
        attrs,
        extra_rules=[rule("link_ref", attr="vpc", param="vpc_id")],
        desc="Creates a route table for the specified VPC.",
    )
    create_route = api(
        "CreateRoute",
        "modify",
        [
            param("route_table_id", required=True),
            param("destination_cidr", required=True),
        ],
        [
            rule("require_param", param="route_table_id",
                 code="MissingParameter"),
            rule("require_param", param="destination_cidr",
                 code="MissingParameter"),
            rule("check_valid_cidr", param="destination_cidr",
                 code="InvalidParameterValue"),
            rule("check_not_in_list", param="destination_cidr", attr="routes",
                 code="RouteAlreadyExists"),
            rule("append_to_attr", attr="routes", param="destination_cidr"),
        ],
        desc="Creates a route in the specified route table.",
    )
    delete_route = api(
        "DeleteRoute",
        "modify",
        [
            param("route_table_id", required=True),
            param("destination_cidr", required=True),
        ],
        [
            rule("require_param", param="route_table_id",
                 code="MissingParameter"),
            rule("require_param", param="destination_cidr",
                 code="MissingParameter"),
            rule("check_in_list", param="destination_cidr", attr="routes",
                 code="InvalidRoute.NotFound"),
            rule("remove_from_attr", attr="routes", param="destination_cidr"),
        ],
        desc="Deletes a route from the specified route table.",
    )
    associate = api(
        "AssociateRouteTable",
        "modify",
        [
            param("route_table_id", required=True),
            param("subnet_id", required=True),
        ],
        [
            rule("require_param", param="route_table_id",
                 code="MissingParameter"),
            rule("require_param", param="subnet_id", code="MissingParameter"),
            rule("check_not_in_list", param="subnet_id", attr="associations",
                 code="Resource.AlreadyAssociated"),
            rule("append_to_attr", attr="associations", param="subnet_id"),
        ],
        desc="Associates a subnet with the specified route table.",
    )
    disassociate = api(
        "DisassociateRouteTable",
        "modify",
        [
            param("route_table_id", required=True),
            param("subnet_id", required=True),
        ],
        [
            rule("require_param", param="route_table_id",
                 code="MissingParameter"),
            rule("require_param", param="subnet_id", code="MissingParameter"),
            rule("check_in_list", param="subnet_id", attr="associations",
                 code="InvalidAssociationID.NotFound"),
            rule("remove_from_attr", attr="associations", param="subnet_id"),
        ],
        desc="Disassociates a subnet from the specified route table.",
    )
    delete = make_delete(
        "route_table",
        "DeleteRouteTable",
        guard_rules=[
            rule("check_list_empty", attr="associations",
                 code="DependencyViolation"),
        ],
        desc="Deletes the specified route table. The table must have no "
             "subnet associations.",
    )
    describe = make_describe("route_table", "DescribeRouteTables", attrs)
    return resource(
        "route_table",
        attrs,
        [create, create_route, delete_route, associate, disassociate, delete,
         describe],
        parent="vpc",
        desc="A set of routes determining where traffic from a subnet goes.",
        notfound="InvalidRouteTableID.NotFound",
    )


def _nat_gateway() -> "resource":
    attrs = [
        attr("subnet", "Reference", ref="subnet"),
        attr("elastic_ip", "Reference", ref="elastic_ip"),
        attr("state", "Enum", enum=("pending", "available", "deleted"),
             default="pending"),
        attr("connectivity_type", "Enum", enum=("public", "private"),
             default="public"),
    ]
    create = make_create(
        "nat_gateway",
        "CreateNatGateway",
        [
            param("subnet_id", "Reference", required=True, ref="subnet"),
            param("elastic_ip_id", "Reference", ref="elastic_ip"),
            param("connectivity_type"),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="connectivity_type",
                 values=("public", "private"), code="InvalidParameterValue"),
            rule("set_attr_const", attr="state", value="available"),
            rule("link_ref", attr="subnet", param="subnet_id"),
            rule("link_ref", attr="elastic_ip", param="elastic_ip_id"),
        ],
        desc="Creates a NAT gateway in the specified subnet.",
    )
    delete = make_delete("nat_gateway", "DeleteNatGateway",
                         desc="Deletes the specified NAT gateway.")
    describe = make_describe("nat_gateway", "DescribeNatGateways", attrs)
    return resource(
        "nat_gateway",
        attrs,
        [create, delete, describe],
        parent="subnet",
        desc="A gateway that lets instances in private subnets reach the "
             "internet.",
        notfound="NatGatewayNotFound",
    )


def _vpc_endpoint() -> "resource":
    attrs = [
        attr("vpc", "Reference", ref="vpc"),
        attr("service_name"),
        attr("state", "Enum", enum=("pending", "available"),
             default="pending"),
        attr("policy_document"),
    ]
    create = make_create(
        "vpc_endpoint",
        "CreateVpcEndpoint",
        [
            param("vpc_id", "Reference", required=True, ref="vpc"),
            param("service_name", required=True),
        ],
        attrs,
        extra_rules=[
            rule("require_one_of", param="service_name",
                 values=ENDPOINT_SERVICES, code="InvalidServiceName"),
            rule("set_attr_const", attr="state", value="available"),
            rule("link_ref", attr="vpc", param="vpc_id"),
            rule("track_in_ref", param="vpc_id", list_attr="endpoints",
                 source="id"),
        ],
        desc="Creates a VPC endpoint for the specified service.",
    )
    delete = make_delete(
        "vpc_endpoint",
        "DeleteVpcEndpoints",
        guard_rules=[
            rule("untrack_in_attr", attr="vpc", list_attr="endpoints",
                 source="id"),
        ],
        desc="Deletes the specified VPC endpoint.",
    )
    describe = make_describe("vpc_endpoint", "DescribeVpcEndpoints", attrs)
    modify = make_modify(
        "vpc_endpoint", "ModifyVpcEndpoint", "policy_document",
        desc="Modifies the policy document of a VPC endpoint.",
    )
    return resource(
        "vpc_endpoint",
        attrs,
        [create, delete, describe, modify],
        parent="vpc",
        desc="A private connection between a VPC and a supported service.",
        notfound="InvalidVpcEndpointId.NotFound",
    )


def _standard(
    name: str,
    verb_stem: str,
    extra_attrs: list | None = None,
    parent: str = "",
    create_params: list | None = None,
    extra_apis: list | None = None,
    desc: str = "",
) -> "resource":
    """A standard peripheral EC2 resource.

    Even EC2's peripheral resources are attribute-heavy (availability
    zone, tags, owner, creation time, tracked associations) and expose
    several lifecycle verbs — which is why EC2's state machines come
    out more complex than other services' in Fig. 4.
    """
    attrs = [
        attr("name"),
        attr("state", "Enum", enum=("pending", "available"),
             default="pending"),
        attr("description"),
        attr("availability_zone"),
        attr("owner_id"),
        attr("tags", "Map"),
        attr("associations", "List"),
    ] + list(extra_attrs or [])
    params = list(create_params or [param("name", required=True),
                                    param("description"),
                                    param("availability_zone")])
    create = make_create(
        name, f"Create{verb_stem}", params, attrs,
        extra_rules=[
            rule("set_attr_const", attr="state", value="available"),
            rule("set_attr_fresh", attr="owner_id"),
        ],
        desc=desc or f"Creates a {name.replace('_', ' ')}.",
    )
    delete = make_delete(
        name, f"Delete{verb_stem}",
        guard_rules=[
            rule("check_list_empty", attr="associations",
                 code="DependencyViolation"),
        ],
        desc=f"Deletes the specified {name.replace('_', ' ')}. The resource "
             "must have no remaining associations.",
    )
    plural = verb_stem + ("es" if verb_stem.endswith("s") else "s")
    describe = make_describe(name, f"Describe{plural}", attrs)
    modify = make_modify(
        name, f"Modify{verb_stem}Attribute", "description",
        desc=f"Modifies the description of a {name.replace('_', ' ')}.",
    )
    tag = api(
        f"Tag{verb_stem}", "modify",
        [param(f"{name}_id", required=True),
         param("tag_key", required=True), param("tag_value")],
        [
            rule("require_param", param=f"{name}_id",
                 code="MissingParameter"),
            rule("require_param", param="tag_key", code="MissingParameter"),
            rule("map_put", attr="tags", key_param="tag_key",
                 value_param="tag_value"),
        ],
        desc=f"Adds or overwrites a tag on the {name.replace('_', ' ')}.",
    )
    untag = api(
        f"Untag{verb_stem}", "modify",
        [param(f"{name}_id", required=True),
         param("tag_key", required=True)],
        [
            rule("require_param", param=f"{name}_id",
                 code="MissingParameter"),
            rule("require_param", param="tag_key", code="MissingParameter"),
            rule("check_in_map", attr="tags", key_param="tag_key",
                 code="InvalidTag.NotFound"),
            rule("map_remove", attr="tags", key_param="tag_key"),
        ],
        desc=f"Removes a tag from the {name.replace('_', ' ')}.",
    )
    apis = [create, delete, describe, modify, tag, untag] + list(
        extra_apis or []
    )
    return resource(name, attrs, apis, parent=parent, desc=desc)


def _volume_extra_apis() -> list:
    """Attach/detach lifecycle for volumes."""
    attach = api(
        "AttachVolume", "modify",
        [param("volume_id", required=True),
         param("instance_id", "Reference", required=True, ref="instance"),
         param("device")],
        [
            rule("require_param", param="volume_id", code="MissingParameter"),
            rule("require_param", param="instance_id",
                 code="MissingParameter"),
            rule("check_attr_unset", attr="attachment",
                 code="VolumeInUse"),
            rule("check_ref_attr_is", ref="instance_id", ref_attr="state",
                 value="running", code="IncorrectInstanceState"),
            rule("link_ref", attr="attachment", param="instance_id"),
            rule("set_attr_param", attr="device", param="device"),
        ],
        desc="Attaches a volume to a running instance.",
    )
    detach = api(
        "DetachVolume", "modify",
        [param("volume_id", required=True)],
        [
            rule("require_param", param="volume_id", code="MissingParameter"),
            rule("check_attr_set", attr="attachment",
                 code="IncorrectState"),
            rule("clear_attr", attr="attachment"),
            rule("clear_attr", attr="device"),
        ],
        desc="Detaches a volume from its instance.",
    )
    return [attach, detach]


def _peripheral_resources() -> list:
    """The 18 standard-pattern EC2 resources."""
    return [
        _standard("volume", "Volume",
                  extra_attrs=[attr("size", "Integer"),
                               attr("volume_type",
                                    "Enum", enum=("gp2", "gp3", "io1"),
                                    default="gp2"),
                               attr("iops", "Integer"),
                               attr("encrypted", "Boolean", default=False),
                               attr("attachment", "Reference",
                                    ref="instance"),
                               attr("device")],
                  extra_apis=_volume_extra_apis(),
                  desc="A block storage volume attachable to instances."),
        _standard("snapshot", "Snapshot",
                  extra_attrs=[attr("volume", "Reference", ref="volume"),
                               attr("progress", "Integer", default=100),
                               attr("encrypted", "Boolean", default=False)],
                  desc="A point-in-time copy of a volume."),
        _standard("key_pair", "KeyPair",
                  desc="A public/private key pair for instance login."),
        _standard("network_acl", "NetworkAcl", parent="vpc",
                  extra_attrs=[attr("entries", "List")],
                  desc="An optional stateless firewall layer for subnets."),
        _standard("vpc_peering_connection", "VpcPeeringConnection",
                  extra_attrs=[attr("accepter_vpc", "Reference", ref="vpc"),
                               attr("requester_vpc", "Reference", ref="vpc")],
                  desc="A networking connection between two VPCs."),
        _standard("dhcp_options", "DhcpOptions",
                  desc="DHCP option sets for a VPC."),
        _standard("customer_gateway", "CustomerGateway",
                  extra_attrs=[attr("bgp_asn", "Integer"),
                               attr("ip_address")],
                  desc="Your side of a VPN connection."),
        _standard("vpn_gateway", "VpnGateway",
                  extra_attrs=[attr("vpc", "Reference", ref="vpc")],
                  desc="The cloud side of a VPN connection."),
        _standard("vpn_connection", "VpnConnection",
                  extra_attrs=[attr("customer_gateway", "Reference",
                                    ref="customer_gateway"),
                               attr("vpn_gateway", "Reference",
                                    ref="vpn_gateway")],
                  desc="A VPN connection between a VPC and a remote network."),
        _standard("transit_gateway", "TransitGateway",
                  desc="A network transit hub interconnecting VPCs."),
        _standard("transit_gateway_attachment", "TransitGatewayAttachment",
                  extra_attrs=[attr("transit_gateway", "Reference",
                                    ref="transit_gateway"),
                               attr("vpc", "Reference", ref="vpc")],
                  desc="An attachment between a transit gateway and a VPC."),
        _standard("launch_template", "LaunchTemplate",
                  extra_attrs=[attr("instance_type"),
                               attr("image_id")],
                  desc="Launch parameters for instances, stored as a template."),
        _standard("placement_group", "PlacementGroup",
                  extra_attrs=[attr("strategy", "Enum",
                                    enum=("cluster", "spread", "partition"),
                                    default="cluster")],
                  desc="A logical grouping of instances."),
        _standard("image", "Image",
                  extra_attrs=[attr("instance", "Reference", ref="instance"),
                               attr("architecture")],
                  desc="An Amazon machine image."),
        _standard("flow_log", "FlowLog", parent="vpc",
                  extra_attrs=[attr("vpc", "Reference", ref="vpc"),
                               attr("traffic_type", "Enum",
                                    enum=("ACCEPT", "REJECT", "ALL"),
                                    default="ALL")],
                  desc="Captures IP traffic metadata for a VPC."),
        _standard("egress_only_internet_gateway", "EgressOnlyInternetGateway",
                  extra_attrs=[attr("vpc", "Reference", ref="vpc")],
                  desc="An IPv6-only outbound internet gateway."),
        _standard("prefix_list", "PrefixList",
                  extra_attrs=[attr("entries", "List"),
                               attr("max_entries", "Integer")],
                  desc="A named set of CIDR blocks."),
        _standard("carrier_gateway", "CarrierGateway", parent="vpc",
                  extra_attrs=[attr("vpc", "Reference", ref="vpc")],
                  desc="A gateway for Wavelength Zone carrier traffic."),
    ]


def build_ec2_catalog() -> ServiceDoc:
    """The full EC2 documentation catalog (28 resources)."""
    resources = [
        _vpc(),
        _subnet(),
        _internet_gateway(),
        _instance(),
        _elastic_ip(),
        _network_interface(),
        _security_group(),
        _route_table(),
        _nat_gateway(),
        _vpc_endpoint(),
    ] + _peripheral_resources()
    return ServiceDoc(
        name="ec2",
        provider="aws",
        resources=resources,
        description="Amazon Elastic Compute Cloud: compute instances and "
                    "the virtual networking around them.",
    )
