"""Render a service catalog as AWS-style API reference pages.

AWS documents each service as a large PDF with clear pagination and
marked sections indexed on resource names (§4.1).  The renderer
produces that layout: one page per resource carrying its attribute
table, followed by one page per API with signature, behaviour and error
list.  Rules marked undocumented are *not* rendered — the cloud
behaves in ways these pages never mention.
"""

from __future__ import annotations

from .model import ApiDoc, DocPage, ResourceDoc, ServiceDoc
from .prose import render_rule

HEADER = "{title}\nAPI Reference\n"


def _render_attribute(a) -> str:
    type_text = a.type
    if a.type == "Enum" and a.enum_values:
        type_text = "Enum: " + " | ".join(a.enum_values)
    if a.type == "Reference" and a.ref:
        type_text = f"Reference -> {a.ref}"
    line = f"- {a.name} ({type_text})"
    if a.default is not None:
        if isinstance(a.default, bool):
            default_text = "true" if a.default else "false"
        else:
            default_text = str(a.default)
        line += f" [default: {default_text}]"
    return line


def _render_param(p) -> str:
    requiredness = "required" if p.required else "optional"
    type_text = p.type
    if p.type == "Reference" and p.ref:
        type_text = f"Reference -> {p.ref}"
    return f"- {p.name} ({type_text}, {requiredness})"


def _render_api_page(
    service: ServiceDoc, res: ResourceDoc, api: ApiDoc, number: int
) -> DocPage:
    lines = [
        HEADER.format(title=service.description or service.name),
        f"Resource: {res.name}",
        f"Action: {api.name}",
        f"Category: {api.category}",
        f"Page {number}",
        "",
    ]
    if api.description:
        lines.append(api.description)
        lines.append("")
    lines.append("Request Parameters")
    if api.params:
        lines.extend(_render_param(p) for p in api.params)
    else:
        lines.append("- (none)")
    lines.append("")
    lines.append("Behavior")
    documented = api.documented_rules()
    if documented:
        for index, behaviour in enumerate(documented, start=1):
            lines.append(f"{index}. {render_rule(behaviour)}")
    else:
        lines.append("1. This action has no documented side effects.")
    lines.append("")
    lines.append("Errors")
    codes = api.error_codes()
    if codes:
        lines.extend(f"- {code}" for code in codes)
    else:
        lines.append("- (none)")
    return DocPage(number=number, title=f"{res.name}:{api.name}",
                   text="\n".join(lines))


def _render_resource_page(
    service: ServiceDoc, res: ResourceDoc, number: int
) -> DocPage:
    lines = [
        HEADER.format(title=service.description or service.name),
        f"Resource: {res.name}",
        f"Page {number}",
        "",
    ]
    if res.description:
        lines.append(res.description)
        lines.append("")
    parent = res.parent or "- (top-level resource)"
    lines.append(f"Contained in: {parent}")
    if res.notfound_code:
        lines.append(f"Not-found error code: {res.notfound_code}")
    lines.append("")
    lines.append("Attributes")
    for attribute in res.attributes:
        lines.append(_render_attribute(attribute))
    lines.append("")
    lines.append("Actions")
    for api in res.apis:
        lines.append(f"- {api.name}")
    return DocPage(number=number, title=res.name, text="\n".join(lines))


def render_aws_docs(service: ServiceDoc) -> list[DocPage]:
    """Render the catalog into the full list of documentation pages."""
    pages: list[DocPage] = []
    number = 1
    for res in service.resources:
        pages.append(_render_resource_page(service, res, number))
        number += 1
        for api in res.apis:
            pages.append(_render_api_page(service, res, api, number))
            number += 1
    return pages
