"""Resource-level dependency graphs (§4.2).

Extraction iterates over resources in dependency order so that, as far
as possible, an SM's references point at already-generated machines;
whatever remains (cycles, helper transitions) is patched by the
linking pass.  The same graph powers the completeness check (via
transitive closure) and the §4.4 complexity metrics (nodes, edge
density).
"""

from __future__ import annotations

import networkx as nx

from ..docs.model import ResourceDoc, ServiceDoc


def resource_references(res: ResourceDoc) -> set[str]:
    """Every resource type ``res`` depends on, per its documentation."""
    refs: set[str] = set()
    if res.parent:
        refs.add(res.parent)
    for attribute in res.attributes:
        if attribute.type == "Reference" and attribute.ref:
            refs.add(attribute.ref)
    for api in res.apis:
        for param in api.params:
            if param.type == "Reference" and param.ref:
                refs.add(param.ref)
    refs.discard(res.name)
    return refs


def build_dependency_graph(service_doc: ServiceDoc) -> nx.DiGraph:
    """Directed graph: edge A -> B when A depends on B."""
    graph = nx.DiGraph()
    for res in service_doc.resources:
        graph.add_node(res.name)
    known = {res.name for res in service_doc.resources}
    for res in service_doc.resources:
        for ref in resource_references(res):
            if ref in known:
                graph.add_edge(res.name, ref)
            else:
                # Cross-service reference (e.g. a firewall's VPC); keep
                # the node so completeness can flag it when required.
                graph.add_node(ref, external=True)
                graph.add_edge(res.name, ref)
    return graph


def extraction_order(service_doc: ServiceDoc) -> list[str]:
    """Resources ordered dependencies-first (cycles broken arbitrarily)."""
    graph = build_dependency_graph(service_doc)
    local = {res.name for res in service_doc.resources}
    subgraph = graph.subgraph(local).copy()
    try:
        order = list(nx.topological_sort(subgraph))
    except nx.NetworkXUnfeasible:
        # Cycles exist (mutually referencing resources): condense and
        # order the strongly connected components instead.
        condensed = nx.condensation(subgraph)
        order = []
        for component_id in nx.topological_sort(condensed):
            order.extend(sorted(condensed.nodes[component_id]["members"]))
    # topological_sort yields dependents before dependencies for our
    # edge direction; reverse to build bottom-up.
    order.reverse()
    return order


def extraction_waves(service_doc: ServiceDoc) -> list[list[str]]:
    """Resources grouped into dependency waves, bottom-up.

    Resources in the same wave have no dependency path between them,
    so a wave can be extracted concurrently; each wave only depends on
    resources from earlier waves.  Flattening the waves yields a valid
    dependencies-first order (names are sorted within a wave, so the
    schedule is deterministic).  Cycles are condensed first; mutually
    referencing resources land in the same wave.
    """
    graph = build_dependency_graph(service_doc)
    local = {res.name for res in service_doc.resources}
    subgraph = graph.subgraph(local).copy()
    condensed = nx.condensation(subgraph)
    # Edges point dependent -> dependency; reverse so generations come
    # out dependencies-first.
    waves: list[list[str]] = []
    for generation in nx.topological_generations(condensed.reverse()):
        members: list[str] = []
        for component_id in generation:
            members.extend(condensed.nodes[component_id]["members"])
        waves.append(sorted(members))
    return waves


def transitive_dependencies(service_doc: ServiceDoc, root: str) -> set[str]:
    """The transitive closure of ``root``'s dependencies."""
    graph = build_dependency_graph(service_doc)
    if root not in graph:
        return set()
    return set(nx.descendants(graph, root))


def graph_metrics(service_doc: ServiceDoc) -> dict:
    """Objective complexity metrics over the SM interaction graph (§4.4)."""
    graph = build_dependency_graph(service_doc)
    local = {res.name for res in service_doc.resources}
    subgraph = graph.subgraph(local)
    node_count = subgraph.number_of_nodes()
    edge_count = subgraph.number_of_edges()
    possible = node_count * (node_count - 1)
    return {
        "nodes": node_count,
        "edges": edge_count,
        "edge_density": (edge_count / possible) if possible else 0.0,
        "external_references": sorted(
            node for node, data in graph.nodes(data=True)
            if data.get("external")
        ),
    }
