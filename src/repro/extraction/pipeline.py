"""The end-to-end extraction pipeline (Fig. 2, left half).

documentation wrangling -> incremental extraction -> specification
linking -> consistency checks -> targeted correction -> an executable
emulator.  Alignment (the right half of Fig. 2) lives in
:mod:`repro.alignment` and consumes this pipeline's output.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..docs import build_catalog, render_docs, wrangle
from ..docs.model import ServiceDoc
from ..interpreter.emulator import Emulator
from ..llm.cache import CachingLLM, PromptCache, report_to_json
from ..llm.client import LLMUsage, make_llm, SimulatedLLM
from ..llm.prompting import spec_parser
from ..resilience.chaos import (
    ChaosEngine,
    ChaosLLM,
    ChaosProfile,
    kill_point,
    resolve_profile,
)
from ..resilience.errors import ResilienceError
from ..resilience.policy import RetryPolicy
from ..resilience.resilient import ResilientLLM
from ..resilience.stats import ResilienceStats
from ..spec import ast
from ..spec.serializer import serialize_sm
from ..spec.validator import collect_violations
from ..telemetry import ensure_telemetry
from .checks import CheckViolation, run_checks
from .incremental import (
    extract_incrementally,
    ExtractionState,
    install_journaled_resource,
    quarantine_resource,
    regenerate_resource,
)
from .linking import link_module, LinkResult


@dataclass
class ExtractionOutcome:
    """Everything the pipeline produced for one service."""

    service: str
    module: ast.SpecModule
    notfound_codes: dict[str, str]
    state: ExtractionState
    link: LinkResult
    initial_violations: list[CheckViolation] = field(default_factory=list)
    remaining_violations: list[CheckViolation] = field(default_factory=list)
    corrected_resources: list[str] = field(default_factory=list)
    validator_violations: list[str] = field(default_factory=list)
    #: What the resilience layer absorbed (all-zero when chaos is off).
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    #: The chaos profile the run was executed under.
    chaos_profile: str = "off"

    def build_emulator(self, compile: bool = True) -> Emulator:
        """Instantiate a fresh emulator over the extracted module."""
        return Emulator(self.module, notfound_codes=self.notfound_codes,
                        compile=compile)

    @property
    def total_llm_attempts(self) -> int:
        return self.state.total_attempts

    @property
    def quarantined(self) -> list[str]:
        """Resources degraded to stubs after persistent failures."""
        return list(self.state.quarantined)


def _lane_seed(seed: int, resource_name: str) -> int:
    """A stable per-resource chaos seed (``hash()`` is salted per run)."""
    return seed ^ zlib.crc32(resource_name.encode("utf-8"))


def run_extraction(
    service: str = "ec2",
    mode: str = "constrained",
    seed: int = 7,
    llm: SimulatedLLM | None = None,
    service_doc: ServiceDoc | None = None,
    checks_enabled: bool = True,
    correction_rounds: int = 3,
    max_attempts: int = 4,
    chaos: ChaosProfile | str | None = None,
    resilience_policy: RetryPolicy | None = None,
    telemetry=None,
    parallel: int = 1,
    llm_cache: "PromptCache | str | Path | None" = None,
    journal=None,
) -> ExtractionOutcome:
    """Run the full pipeline for one service.

    ``service_doc`` overrides the built-in catalog (used in tests);
    otherwise the catalog is built, rendered to provider text, and
    wrangled back — the LLM only ever sees what documentation pages
    carry.

    ``chaos`` selects a fault-injection profile (a profile, a name, or
    ``None`` to read ``REPRO_CHAOS_PROFILE`` / default off).  Under an
    active profile each resource gets its own chaos *lane* — a chaos +
    retry wrapper whose engine is seeded from (seed, resource name) —
    so injected weather depends only on the resource's own call
    history, never on scheduling.  That makes chaotic runs identical
    at any ``parallel`` width; resources whose generation fails
    persistently are quarantined with stub specs instead of aborting
    the service, and the absorbed weather is reported (lane counters
    merged in sorted resource order) in ``outcome.resilience``.

    ``parallel`` fans each dependency wave of the extraction pass onto
    a thread pool.  ``llm_cache`` (a :class:`PromptCache` or a path)
    replays previously seen completions and memoizes parses; the cache
    sits inside the chaos wrappers, so warm runs still exercise the
    full injected weather.

    ``journal`` (a :class:`~repro.durability.BuildJournal`, already
    started or resumed by the caller) makes each completed resource
    and targeted correction durable; any records it already holds are
    replayed instead of re-executed, with the per-resource usage and
    chaos-lane counters fast-forwarded so the run continues exactly
    where the crashed one stopped.
    """
    if service_doc is None:
        catalog = build_catalog(service)
        pages = render_docs(catalog)
        service_doc = wrangle(pages, provider=catalog.provider,
                              service=service)
        # Not-found codes and undocumented behaviours live outside the
        # page text only in the sense that wrangling recovers them from
        # the header fields; behaviour rules come from prose alone.
    if llm is None:
        llm = make_llm(mode, seed=seed)
    if telemetry is not None and isinstance(llm, SimulatedLLM):
        llm.telemetry = telemetry
    tele = ensure_telemetry(telemetry)

    sim = llm if isinstance(llm, SimulatedLLM) else None
    cache: PromptCache | None = None
    if llm_cache is not None:
        cache = (llm_cache if isinstance(llm_cache, PromptCache)
                 else PromptCache(llm_cache))
        llm = CachingLLM(llm, cache)

    profile = resolve_profile(chaos)
    stats = ResilienceStats()
    chaotic = profile.active
    llm_for = None
    lanes: dict[str, ResilientLLM] = {}
    lane_stats: dict[str, ResilienceStats] = {}

    # Journaled builds give each resource an output-identical *clone*
    # of the model with a private usage meter: completed units journal
    # their exact usage delta, and a resumed run fast-forwards the
    # shared meter past replayed work — so the final accounting (which
    # the saved manifest embeds) is byte-identical to an uninterrupted
    # build's.
    journaling = journal is not None and sim is not None
    unit_clones: dict[str, object] = {}
    unit_meters: dict[str, LLMUsage] = {}
    unit_reported: dict[str, dict] = {}

    def unit_client(resource_name: str):
        client = unit_clones.get(resource_name)
        if client is None:
            clone = sim.metered_clone()
            unit_meters[resource_name] = clone.usage
            unit_reported[resource_name] = {}
            client = CachingLLM(clone, cache) if cache is not None else clone
            unit_clones[resource_name] = client
        return client

    if chaotic:
        base_llm = llm

        def llm_for(resource_name: str) -> ResilientLLM:
            lane = lanes.get(resource_name)
            if lane is None:
                lane_seed = _lane_seed(seed, resource_name)
                lane_stats[resource_name] = ResilienceStats()
                inner = (unit_client(resource_name) if journaling
                         else base_llm)
                lane = ResilientLLM(
                    ChaosLLM(inner, ChaosEngine(profile, seed=lane_seed)),
                    policy=resilience_policy,
                    stats=lane_stats[resource_name],
                    seed=lane_seed,
                    clock=tele.clock,
                    telemetry=telemetry,
                )
                lanes[resource_name] = lane
            return lane
    elif journaling:
        llm_for = unit_client

    def journal_extra(resource_name: str) -> dict:
        """Usage delta + chaos-lane call count for one finished unit."""
        if not journaling or resource_name not in unit_meters:
            return {}
        current = unit_meters[resource_name].as_dict()
        last = unit_reported.get(resource_name) or {}
        delta = {key: current[key] - last.get(key, 0) for key in current}
        unit_reported[resource_name] = current
        sim.usage.add(delta)
        extra: dict = {"usage": delta}
        lane = lanes.get(resource_name)
        if lane is not None:
            extra["calls"] = lane.inner._calls
        return extra

    def on_replay(record: dict) -> None:
        """Fast-forward shared state past one journaled unit."""
        if sim is not None:
            sim.usage.add(record.get("usage") or {})
        calls = record.get("calls") or 0
        if chaotic and calls and llm_for is not None:
            lane = llm_for(record["name"])
            lane.inner._calls = max(lane.inner._calls, calls)

    with tele.span(
        "extraction", kind="phase", service=service, chaos=profile.name
    ) as phase:
        state = extract_incrementally(
            llm, service_doc, max_attempts=max_attempts,
            quarantine=chaotic, stats=stats, telemetry=telemetry,
            parallel=parallel, llm_for=llm_for,
            journal=journal,
            replay=journal.resource_replay() if journal is not None else None,
            journal_extra=journal_extra if journaling else None,
            on_replay=on_replay if journal is not None else None,
        )
        link = link_module(state, service_doc)
        outcome = ExtractionOutcome(
            service=service,
            module=link.module,
            notfound_codes=link.notfound_codes,
            state=state,
            link=link,
            resilience=stats,
            chaos_profile=profile.name,
        )
        tele.counter("extraction.resources").inc(len(state.specs))
        correcting_llm = llm_for if llm_for is not None else (lambda name: llm)

        def finish(outcome: ExtractionOutcome) -> ExtractionOutcome:
            # Lane counters merge in sorted resource order, so the
            # aggregate is independent of scheduling.
            for resource_name in sorted(lane_stats):
                stats.merge(lane_stats[resource_name])
            if cache is not None:
                cache.save()
                for key, value in cache.stats().items():
                    tele.gauge(f"llm.cache.{key}").set(value)
            return outcome

        if not checks_enabled:
            outcome.validator_violations = collect_violations(link.module)
            return finish(outcome)

        violations = run_checks(link.module, service_doc)
        outcome.initial_violations = list(violations)
        correction_replay = (
            journal.correction_replay() if journal is not None else {}
        )
        parse = spec_parser(llm)
        rounds = 0
        while violations and rounds < correction_rounds:
            flagged = sorted({v.resource for v in violations if v.resource})
            with tele.span(
                "extraction.correction", kind="correction",
                round=rounds, flagged=len(flagged),
            ):
                for resource_name in flagged:
                    if (
                        resource_name not in state.specs
                        or resource_name in state.quarantined
                    ):
                        continue
                    record = correction_replay.get((rounds, resource_name))
                    if record is not None:
                        install_journaled_resource(
                            state, record,
                            service_doc.resource(resource_name), parse, stats,
                        )
                        on_replay(record)
                        journal.replayed()
                        if (
                            not record.get("quarantined")
                            and resource_name
                            not in outcome.corrected_resources
                        ):
                            outcome.corrected_resources.append(resource_name)
                            tele.counter("extraction.corrections").inc()
                        continue
                    try:
                        regenerate_resource(
                            correcting_llm(resource_name), service_doc,
                            state, resource_name,
                        )
                    except ResilienceError:
                        # Targeted correction kept failing: degrade to a
                        # stub rather than abort the service build.
                        tele.event("quarantined", resource=resource_name,
                                   reason="correction")
                        quarantine_resource(
                            state, service_doc.resource(resource_name), 1,
                            stats,
                        )
                        if journal is not None:
                            journal.append(
                                "correction", round=rounds,
                                name=resource_name, quarantined=True,
                                attempts=1, **journal_extra(resource_name),
                            )
                        kill_point("post-extraction-of-resource")
                        continue
                    if resource_name not in outcome.corrected_resources:
                        outcome.corrected_resources.append(resource_name)
                        tele.counter("extraction.corrections").inc()
                    if journal is not None:
                        journal.append(
                            "correction", round=rounds, name=resource_name,
                            quarantined=False, attempts=1,
                            spec=serialize_sm(state.specs[resource_name]),
                            report=report_to_json(
                                state.results[resource_name].report
                            ),
                            **journal_extra(resource_name),
                        )
                    kill_point("post-extraction-of-resource")
                link = link_module(state, service_doc)
                outcome.module = link.module
                outcome.notfound_codes = link.notfound_codes
                outcome.link = link
                violations = run_checks(link.module, service_doc)
            rounds += 1
        outcome.remaining_violations = violations
        outcome.validator_violations = collect_violations(outcome.module)
        phase.set("resources", len(state.specs))
        phase.set("quarantined", len(state.quarantined))
        phase.set("corrections", len(outcome.corrected_resources))
        return finish(outcome)
