"""The end-to-end extraction pipeline (Fig. 2, left half).

documentation wrangling -> incremental extraction -> specification
linking -> consistency checks -> targeted correction -> an executable
emulator.  Alignment (the right half of Fig. 2) lives in
:mod:`repro.alignment` and consumes this pipeline's output.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..docs import build_catalog, render_docs, wrangle
from ..docs.model import ServiceDoc
from ..interpreter.emulator import Emulator
from ..llm.cache import CachingLLM, PromptCache
from ..llm.client import make_llm, SimulatedLLM
from ..resilience.chaos import ChaosEngine, ChaosLLM, ChaosProfile, resolve_profile
from ..resilience.errors import ResilienceError
from ..resilience.policy import RetryPolicy
from ..resilience.resilient import ResilientLLM
from ..resilience.stats import ResilienceStats
from ..spec import ast
from ..spec.validator import collect_violations
from ..telemetry import ensure_telemetry
from .checks import CheckViolation, run_checks
from .incremental import (
    extract_incrementally,
    ExtractionState,
    quarantine_resource,
    regenerate_resource,
)
from .linking import link_module, LinkResult


@dataclass
class ExtractionOutcome:
    """Everything the pipeline produced for one service."""

    service: str
    module: ast.SpecModule
    notfound_codes: dict[str, str]
    state: ExtractionState
    link: LinkResult
    initial_violations: list[CheckViolation] = field(default_factory=list)
    remaining_violations: list[CheckViolation] = field(default_factory=list)
    corrected_resources: list[str] = field(default_factory=list)
    validator_violations: list[str] = field(default_factory=list)
    #: What the resilience layer absorbed (all-zero when chaos is off).
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    #: The chaos profile the run was executed under.
    chaos_profile: str = "off"

    def build_emulator(self, compile: bool = True) -> Emulator:
        """Instantiate a fresh emulator over the extracted module."""
        return Emulator(self.module, notfound_codes=self.notfound_codes,
                        compile=compile)

    @property
    def total_llm_attempts(self) -> int:
        return self.state.total_attempts

    @property
    def quarantined(self) -> list[str]:
        """Resources degraded to stubs after persistent failures."""
        return list(self.state.quarantined)


def _lane_seed(seed: int, resource_name: str) -> int:
    """A stable per-resource chaos seed (``hash()`` is salted per run)."""
    return seed ^ zlib.crc32(resource_name.encode("utf-8"))


def run_extraction(
    service: str = "ec2",
    mode: str = "constrained",
    seed: int = 7,
    llm: SimulatedLLM | None = None,
    service_doc: ServiceDoc | None = None,
    checks_enabled: bool = True,
    correction_rounds: int = 3,
    max_attempts: int = 4,
    chaos: ChaosProfile | str | None = None,
    resilience_policy: RetryPolicy | None = None,
    telemetry=None,
    parallel: int = 1,
    llm_cache: "PromptCache | str | Path | None" = None,
) -> ExtractionOutcome:
    """Run the full pipeline for one service.

    ``service_doc`` overrides the built-in catalog (used in tests);
    otherwise the catalog is built, rendered to provider text, and
    wrangled back — the LLM only ever sees what documentation pages
    carry.

    ``chaos`` selects a fault-injection profile (a profile, a name, or
    ``None`` to read ``REPRO_CHAOS_PROFILE`` / default off).  Under an
    active profile each resource gets its own chaos *lane* — a chaos +
    retry wrapper whose engine is seeded from (seed, resource name) —
    so injected weather depends only on the resource's own call
    history, never on scheduling.  That makes chaotic runs identical
    at any ``parallel`` width; resources whose generation fails
    persistently are quarantined with stub specs instead of aborting
    the service, and the absorbed weather is reported (lane counters
    merged in sorted resource order) in ``outcome.resilience``.

    ``parallel`` fans each dependency wave of the extraction pass onto
    a thread pool.  ``llm_cache`` (a :class:`PromptCache` or a path)
    replays previously seen completions and memoizes parses; the cache
    sits inside the chaos wrappers, so warm runs still exercise the
    full injected weather.
    """
    if service_doc is None:
        catalog = build_catalog(service)
        pages = render_docs(catalog)
        service_doc = wrangle(pages, provider=catalog.provider,
                              service=service)
        # Not-found codes and undocumented behaviours live outside the
        # page text only in the sense that wrangling recovers them from
        # the header fields; behaviour rules come from prose alone.
    if llm is None:
        llm = make_llm(mode, seed=seed)
    if telemetry is not None and isinstance(llm, SimulatedLLM):
        llm.telemetry = telemetry
    tele = ensure_telemetry(telemetry)

    cache: PromptCache | None = None
    if llm_cache is not None:
        cache = (llm_cache if isinstance(llm_cache, PromptCache)
                 else PromptCache(llm_cache))
        llm = CachingLLM(llm, cache)

    profile = resolve_profile(chaos)
    stats = ResilienceStats()
    chaotic = profile.active
    llm_for = None
    lanes: dict[str, ResilientLLM] = {}
    lane_stats: dict[str, ResilienceStats] = {}
    if chaotic:
        base_llm = llm

        def llm_for(resource_name: str) -> ResilientLLM:
            lane = lanes.get(resource_name)
            if lane is None:
                lane_seed = _lane_seed(seed, resource_name)
                lane_stats[resource_name] = ResilienceStats()
                lane = ResilientLLM(
                    ChaosLLM(base_llm, ChaosEngine(profile, seed=lane_seed)),
                    policy=resilience_policy,
                    stats=lane_stats[resource_name],
                    seed=lane_seed,
                    clock=tele.clock,
                    telemetry=telemetry,
                )
                lanes[resource_name] = lane
            return lane

    with tele.span(
        "extraction", kind="phase", service=service, chaos=profile.name
    ) as phase:
        state = extract_incrementally(
            llm, service_doc, max_attempts=max_attempts,
            quarantine=chaotic, stats=stats, telemetry=telemetry,
            parallel=parallel, llm_for=llm_for,
        )
        link = link_module(state, service_doc)
        outcome = ExtractionOutcome(
            service=service,
            module=link.module,
            notfound_codes=link.notfound_codes,
            state=state,
            link=link,
            resilience=stats,
            chaos_profile=profile.name,
        )
        tele.counter("extraction.resources").inc(len(state.specs))
        correcting_llm = llm_for if llm_for is not None else (lambda name: llm)

        def finish(outcome: ExtractionOutcome) -> ExtractionOutcome:
            # Lane counters merge in sorted resource order, so the
            # aggregate is independent of scheduling.
            for resource_name in sorted(lane_stats):
                stats.merge(lane_stats[resource_name])
            if cache is not None:
                cache.save()
                for key, value in cache.stats().items():
                    tele.gauge(f"llm.cache.{key}").set(value)
            return outcome

        if not checks_enabled:
            outcome.validator_violations = collect_violations(link.module)
            return finish(outcome)

        violations = run_checks(link.module, service_doc)
        outcome.initial_violations = list(violations)
        rounds = 0
        while violations and rounds < correction_rounds:
            flagged = sorted({v.resource for v in violations if v.resource})
            with tele.span(
                "extraction.correction", kind="correction",
                round=rounds, flagged=len(flagged),
            ):
                for resource_name in flagged:
                    if (
                        resource_name not in state.specs
                        or resource_name in state.quarantined
                    ):
                        continue
                    try:
                        regenerate_resource(
                            correcting_llm(resource_name), service_doc,
                            state, resource_name,
                        )
                    except ResilienceError:
                        # Targeted correction kept failing: degrade to a
                        # stub rather than abort the service build.
                        tele.event("quarantined", resource=resource_name,
                                   reason="correction")
                        quarantine_resource(
                            state, service_doc.resource(resource_name), 1,
                            stats,
                        )
                        continue
                    if resource_name not in outcome.corrected_resources:
                        outcome.corrected_resources.append(resource_name)
                        tele.counter("extraction.corrections").inc()
                link = link_module(state, service_doc)
                outcome.module = link.module
                outcome.notfound_codes = link.notfound_codes
                outcome.link = link
                violations = run_checks(link.module, service_doc)
            rounds += 1
        outcome.remaining_violations = violations
        outcome.validator_violations = collect_violations(outcome.module)
        phase.set("resources", len(state.specs))
        phase.set("quarantined", len(state.quarantined))
        phase.set("corrections", len(outcome.corrected_resources))
        return finish(outcome)
