"""The end-to-end extraction pipeline (Fig. 2, left half).

documentation wrangling -> incremental extraction -> specification
linking -> consistency checks -> targeted correction -> an executable
emulator.  Alignment (the right half of Fig. 2) lives in
:mod:`repro.alignment` and consumes this pipeline's output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..docs import build_catalog, render_docs, wrangle
from ..docs.model import ServiceDoc
from ..interpreter.emulator import Emulator
from ..llm.client import make_llm, SimulatedLLM
from ..spec import ast
from ..spec.validator import collect_violations
from .checks import CheckViolation, run_checks
from .incremental import extract_incrementally, ExtractionState, regenerate_resource
from .linking import link_module, LinkResult


@dataclass
class ExtractionOutcome:
    """Everything the pipeline produced for one service."""

    service: str
    module: ast.SpecModule
    notfound_codes: dict[str, str]
    state: ExtractionState
    link: LinkResult
    initial_violations: list[CheckViolation] = field(default_factory=list)
    remaining_violations: list[CheckViolation] = field(default_factory=list)
    corrected_resources: list[str] = field(default_factory=list)
    validator_violations: list[str] = field(default_factory=list)

    def build_emulator(self) -> Emulator:
        """Instantiate a fresh emulator over the extracted module."""
        return Emulator(self.module, notfound_codes=self.notfound_codes)

    @property
    def total_llm_attempts(self) -> int:
        return self.state.total_attempts


def run_extraction(
    service: str = "ec2",
    mode: str = "constrained",
    seed: int = 7,
    llm: SimulatedLLM | None = None,
    service_doc: ServiceDoc | None = None,
    checks_enabled: bool = True,
    correction_rounds: int = 3,
    max_attempts: int = 4,
) -> ExtractionOutcome:
    """Run the full pipeline for one service.

    ``service_doc`` overrides the built-in catalog (used in tests);
    otherwise the catalog is built, rendered to provider text, and
    wrangled back — the LLM only ever sees what documentation pages
    carry.
    """
    if service_doc is None:
        catalog = build_catalog(service)
        pages = render_docs(catalog)
        service_doc = wrangle(pages, provider=catalog.provider,
                              service=service)
        # Not-found codes and undocumented behaviours live outside the
        # page text only in the sense that wrangling recovers them from
        # the header fields; behaviour rules come from prose alone.
    if llm is None:
        llm = make_llm(mode, seed=seed)

    state = extract_incrementally(llm, service_doc, max_attempts=max_attempts)
    link = link_module(state, service_doc)
    outcome = ExtractionOutcome(
        service=service,
        module=link.module,
        notfound_codes=link.notfound_codes,
        state=state,
        link=link,
    )

    if not checks_enabled:
        outcome.validator_violations = collect_violations(link.module)
        return outcome

    violations = run_checks(link.module, service_doc)
    outcome.initial_violations = list(violations)
    rounds = 0
    while violations and rounds < correction_rounds:
        flagged = sorted({v.resource for v in violations if v.resource})
        for resource_name in flagged:
            if resource_name in state.specs:
                regenerate_resource(llm, service_doc, state, resource_name)
                if resource_name not in outcome.corrected_resources:
                    outcome.corrected_resources.append(resource_name)
        link = link_module(state, service_doc)
        outcome.module = link.module
        outcome.notfound_codes = link.notfound_codes
        outcome.link = link
        violations = run_checks(link.module, service_doc)
        rounds += 1
    outcome.remaining_violations = violations
    outcome.validator_violations = collect_violations(outcome.module)
    return outcome
