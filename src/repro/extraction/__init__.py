"""Specification extraction: dependency analysis, incremental
generation, linking, consistency checks, and the full pipeline (§4.2).
"""

from .checks import (
    call_reachability_violations,
    CheckViolation,
    completeness_violations,
    create_no_destroy_violations,
    describe_readonly_violations,
    error_code_violations,
    run_checks,
)
from .dependency import (
    build_dependency_graph,
    extraction_order,
    graph_metrics,
    resource_references,
    transitive_dependencies,
)
from .incremental import (
    extract_incrementally,
    ExtractionState,
    regenerate_resource,
)
from .linking import link_module, LinkResult
from .pipeline import ExtractionOutcome, run_extraction

__all__ = [
    "build_dependency_graph",
    "call_reachability_violations",
    "CheckViolation",
    "completeness_violations",
    "create_no_destroy_violations",
    "describe_readonly_violations",
    "error_code_violations",
    "extract_incrementally",
    "extraction_order",
    "ExtractionOutcome",
    "ExtractionState",
    "graph_metrics",
    "link_module",
    "LinkResult",
    "regenerate_resource",
    "resource_references",
    "run_checks",
    "run_extraction",
    "transitive_dependencies",
]
