"""Consistency checks on extracted specifications (§4.2).

Two families, as the paper defines them:

- **Completeness** over resource-type coverage: if resource A depends
  on resource B, both must be present in the specification — computed
  as a transitive closure over the dependency graph.
- **Soundness** against semantically-invalid generation, via template
  checks against the documentation's behavioural requirements:
  a ``describe()`` must not modify state; ``call()`` targets must be
  reachable in the SM's dependency hierarchy; assert error codes must
  come from the documented error list; every documented error code
  must be enforceable by some assert; a ``create()`` must not trigger
  destroy transitions.

The checks are deliberately template-based and *partial* (the paper
manually captures "a limited set"); behaviours they cannot see — e.g.
a dropped check whose error code another assert still carries — are
exactly what the alignment phase exists to find.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..docs.model import ServiceDoc
from ..spec import ast
from .dependency import resource_references


@dataclass(frozen=True)
class CheckViolation:
    """One consistency-check failure, attributable to a resource/API."""

    resource: str
    api: str
    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        location = f"{self.resource}.{self.api}" if self.api else self.resource
        return f"[{self.check}] {location}: {self.detail}"


def completeness_violations(
    module: ast.SpecModule, service_doc: ServiceDoc
) -> list[CheckViolation]:
    """Every documented resource, and every dependency, must have an SM."""
    violations: list[CheckViolation] = []
    documented = {res.name for res in service_doc.resources}
    generated = set(module.machines)
    for missing in sorted(documented - generated):
        violations.append(
            CheckViolation(missing, "", "completeness",
                           "documented resource has no state machine")
        )
    for res in service_doc.resources:
        for ref in sorted(resource_references(res)):
            if ref in documented and ref not in generated:
                violations.append(
                    CheckViolation(
                        res.name, "", "completeness",
                        f"dependency {ref!r} has no state machine",
                    )
                )
    return violations


def _writes_and_calls(transition: ast.Transition) -> tuple[int, int]:
    writes = calls = 0
    for stmt in transition.statements():
        if isinstance(stmt, ast.Write):
            writes += 1
        elif isinstance(stmt, ast.Call):
            calls += 1
    return writes, calls


def describe_readonly_violations(
    module: ast.SpecModule,
) -> list[CheckViolation]:
    """A describe() API must not modify state (§4.2's example check)."""
    violations: list[CheckViolation] = []
    for sm_name, spec in module.machines.items():
        for transition in spec.transitions.values():
            if transition.category != "describe" or transition.is_stub:
                continue
            writes, calls = _writes_and_calls(transition)
            if writes or calls:
                violations.append(
                    CheckViolation(
                        sm_name, transition.name, "describe_readonly",
                        f"describe() performs {writes} write(s) and "
                        f"{calls} call(s)",
                    )
                )
    return violations


def call_reachability_violations(
    module: ast.SpecModule,
) -> list[CheckViolation]:
    """call() may only target SMs reachable in the dependency hierarchy."""
    violations: list[CheckViolation] = []
    for sm_name, spec in module.machines.items():
        reachable = spec.referenced_sms() | {sm_name}
        for transition in spec.transitions.values():
            for stmt in transition.statements():
                if not isinstance(stmt, ast.Call):
                    continue
                target_type = _static_target_type(spec, transition, stmt)
                if target_type and target_type not in reachable:
                    violations.append(
                        CheckViolation(
                            sm_name, transition.name, "call_reachability",
                            f"call targets {target_type!r}, which is not in "
                            "this SM's dependency hierarchy",
                        )
                    )
    return violations


def _static_target_type(
    spec: ast.SMSpec, transition: ast.Transition, stmt: ast.Call
) -> str:
    if isinstance(stmt.target, ast.SelfRef):
        return spec.name
    if isinstance(stmt.target, ast.Name):
        for param in transition.params:
            if param.name == stmt.target.ident and param.type.kind == "sm":
                return param.type.sm_name
        declared = spec.state_type(stmt.target.ident)
        if declared is not None and declared.kind == "sm":
            return declared.sm_name
    return ""


def error_code_violations(
    module: ast.SpecModule, service_doc: ServiceDoc
) -> list[CheckViolation]:
    """Assert codes must be documented; documented codes must be asserted.

    The first direction catches wrong-code hallucinations ("failure to
    return the specific error codes required by client-side tooling",
    §5); the second catches dropped checks whose code no other assert
    in the same API carries.
    """
    violations: list[CheckViolation] = []
    for res in service_doc.resources:
        spec = module.get(res.name)
        if spec is None:
            continue
        for api in res.apis:
            transition = spec.transitions.get(api.name)
            if transition is None or transition.is_stub:
                violations.append(
                    CheckViolation(res.name, api.name, "api_coverage",
                                   "documented API has no transition")
                )
                continue
            documented = set(api.error_codes())
            asserted = {
                stmt.error_code
                for stmt in transition.statements()
                if isinstance(stmt, ast.Assert)
            }
            for code in sorted(asserted - documented):
                violations.append(
                    CheckViolation(
                        res.name, api.name, "undocumented_error_code",
                        f"assert raises {code!r}, which the documentation "
                        "never mentions for this API",
                    )
                )
            for code in sorted(documented - asserted):
                violations.append(
                    CheckViolation(
                        res.name, api.name, "missing_error_code",
                        f"documentation promises {code!r}, but no assert "
                        "raises it",
                    )
                )
    return violations


def create_no_destroy_violations(
    module: ast.SpecModule,
) -> list[CheckViolation]:
    """Resource creation must not trigger destroy transitions (§1's
    example: creation APIs should not be allowed to delete parents)."""
    violations: list[CheckViolation] = []
    for sm_name, spec in module.machines.items():
        for transition in spec.transitions.values():
            if transition.category != "create":
                continue
            for stmt in transition.statements():
                if not isinstance(stmt, ast.Call):
                    continue
                target_type = _static_target_type(spec, transition, stmt)
                callee_spec = module.get(target_type) if target_type else None
                if callee_spec is None:
                    continue
                callee = callee_spec.transitions.get(stmt.transition)
                if callee is not None and callee.category == "destroy":
                    violations.append(
                        CheckViolation(
                            sm_name, transition.name, "create_destroys",
                            f"create() calls destroy transition "
                            f"{target_type}.{stmt.transition}",
                        )
                    )
    return violations


def run_checks(
    module: ast.SpecModule, service_doc: ServiceDoc
) -> list[CheckViolation]:
    """All consistency checks, in the order the pipeline applies them."""
    violations: list[CheckViolation] = []
    violations.extend(completeness_violations(module, service_doc))
    violations.extend(describe_readonly_violations(module))
    violations.extend(call_reachability_violations(module))
    violations.extend(error_code_violations(module, service_doc))
    violations.extend(create_no_destroy_violations(module))
    return violations
