"""Incremental, multi-pass spec extraction (§4.2).

The LLM iterates over resources in dependency order, generating one SM
at a time.  Cross-SM effects (list maintenance on a parent, association
callbacks) compile to calls into helper transitions that may not exist
yet; those are recorded as :class:`HelperRequirement` stubs for the
linking pass to patch.

Extraction is scheduled in dependency *waves* (see
:func:`~repro.extraction.dependency.extraction_waves`): resources in
the same wave do not depend on each other, so a wave can fan out onto
a thread pool.  Results are merged back in the wave's sorted order, so
the produced :class:`ExtractionState` is identical whether a wave runs
on one thread or eight.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..docs.model import ResourceDoc, ServiceDoc
from ..llm.cache import report_from_json, report_to_json
from ..llm.client import SimulatedLLM
from ..llm.prompting import (
    spec_parser,
    synthesize_with_reprompt,
    SynthesisResult,
)
from ..llm.synthesis import (
    attribute_state_type,
    GenerationReport,
    HelperRequirement,
)
from ..resilience.chaos import kill_point
from ..resilience.errors import ResilienceError
from ..resilience.stats import ResilienceStats
from ..spec import ast
from ..spec.errors import SpecSyntaxError
from ..spec.serializer import serialize_sm
from ..telemetry import ensure_telemetry
from .dependency import extraction_waves


@dataclass
class ExtractionState:
    """Everything the per-resource passes produced, pre-linking."""

    service: str
    provider: str
    specs: dict[str, ast.SMSpec] = field(default_factory=dict)
    helper_requirements: list[HelperRequirement] = field(default_factory=list)
    results: dict[str, SynthesisResult] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    #: Resources whose generation failed persistently; their specs are
    #: stubs (state only, no transitions) so the rest of the service
    #: stays usable — graceful degradation instead of a crashed run.
    quarantined: list[str] = field(default_factory=list)

    @property
    def total_attempts(self) -> int:
        return sum(result.attempts for result in self.results.values())

    @property
    def reprompted_resources(self) -> list[str]:
        return [
            name for name, result in self.results.items()
            if result.attempts > 1
        ]


def stub_spec(resource: ResourceDoc) -> ast.SMSpec:
    """A degraded stand-in SM for a resource generation gave up on.

    Carries the documented state variables (so helper patching and
    linking still work when other SMs reference it) but no
    transitions: the emulator answers ``InvalidAction`` for its APIs
    instead of the whole service build crashing.
    """
    states = [
        ast.StateDecl(attr.name, attribute_state_type(attr), None)
        for attr in resource.attributes
    ]
    return ast.SMSpec(
        name=resource.name,
        states=states,
        transitions={},
        parent=resource.parent,
        doc=f"quarantined stub for {resource.name}",
    )


def quarantine_resource(
    state: ExtractionState,
    resource: ResourceDoc,
    attempts: int,
    stats: ResilienceStats | None = None,
) -> None:
    """Record a persistently failing resource and install its stub."""
    if resource.name not in state.quarantined:
        state.quarantined.append(resource.name)
    if stats is not None:
        stats.quarantined += 1
    spec = stub_spec(resource)
    report = GenerationReport(resource=resource.name, quarantined=True)
    state.specs[resource.name] = spec
    state.results[resource.name] = SynthesisResult(
        spec=spec, report=report, attempts=attempts
    )


def install_journaled_resource(
    state: ExtractionState,
    record: dict,
    resource: ResourceDoc,
    parse,
    stats: ResilienceStats | None = None,
) -> None:
    """Re-install one journaled extraction result without the LLM.

    The journal stores the serialized *pre-linking* spec text; the
    serializer guarantees ``parse(serialize(spec))`` round-trips, so
    re-parsing reproduces the exact state the crashed run merged.
    """
    name = record["name"]
    if record.get("quarantined"):
        quarantine_resource(state, resource, record["attempts"], stats)
        return
    spec = parse(record["spec"])
    report = report_from_json(record["report"])
    state.specs[name] = spec
    state.results[name] = SynthesisResult(
        spec=spec, report=report, attempts=record["attempts"]
    )
    state.helper_requirements.extend(report.helpers_needed)


def extract_incrementally(
    llm: SimulatedLLM,
    service_doc: ServiceDoc,
    max_attempts: int = 4,
    quarantine: bool = False,
    stats: ResilienceStats | None = None,
    telemetry=None,
    parallel: int = 1,
    llm_for=None,
    journal=None,
    replay: dict | None = None,
    journal_extra=None,
    on_replay=None,
) -> ExtractionState:
    """Generate one SM per documented resource, dependencies first.

    With ``quarantine`` enabled, a resource whose generation fails
    persistently (syntax budget exhausted, retries exhausted, breaker
    open) is stubbed out and listed in ``state.quarantined`` instead
    of aborting the whole service.

    ``parallel`` sets the thread-pool width for each dependency wave;
    ``llm_for`` optionally maps a resource name to the client that
    should generate it (the pipeline uses per-resource chaos lanes so
    fault injection stays deterministic regardless of thread timing).
    Results merge back in wave order, so the returned state does not
    depend on ``parallel``.

    ``journal`` (a :class:`~repro.durability.BuildJournal`) makes each
    merged resource durable before the next one starts; ``replay``
    maps resource names to journaled records from an interrupted run,
    which are re-installed instead of re-generated.  ``journal_extra``
    supplies per-resource journal fields the pipeline owns (usage
    delta, chaos-lane call count); ``on_replay`` lets it fast-forward
    that state when a record is replayed.
    """
    tele = ensure_telemetry(telemetry)
    state = ExtractionState(
        service=service_doc.name, provider=service_doc.provider
    )
    waves = extraction_waves(service_doc)
    state.order = [name for wave in waves for name in wave]
    by_name = {res.name: res for res in service_doc.resources}
    client_for = llm_for if llm_for is not None else (lambda name: llm)
    replay = replay or {}
    parse = spec_parser(llm)

    def generate(name: str):
        """One resource's synthesis: (name, result | None, error | None)."""
        resource = by_name[name]
        client = client_for(name)
        with tele.span(
            "extraction.resource", kind="resource", resource=name
        ) as span:
            try:
                result = synthesize_with_reprompt(
                    client, resource, max_attempts
                )
            except (SpecSyntaxError, ResilienceError) as error:
                if not quarantine:
                    raise
                span.set("quarantined", True)
                tele.event("quarantined", resource=name,
                           reason=type(error).__name__)
                return name, None, error
            span.set("attempts", result.attempts)
        return name, result, None

    workers = max(1, int(parallel))
    for wave in waves:
        pending = [name for name in wave if name not in replay]
        if workers == 1 or len(pending) <= 1:
            outcomes = {name: generate(name) for name in pending}
        else:
            with tele.anchored():
                with ThreadPoolExecutor(
                    max_workers=min(workers, len(pending))
                ) as pool:
                    outcomes = {
                        out[0]: out for out in pool.map(generate, pending)
                    }
        # Merge strictly in the wave's sorted order — replayed and
        # fresh results interleaved — so spec insertion order (and
        # therefore every downstream artifact) is identical whether
        # the run was interrupted zero times or many.
        for name in wave:
            record = replay.get(name)
            if record is not None:
                install_journaled_resource(
                    state, record, by_name[name], parse, stats
                )
                if on_replay is not None:
                    on_replay(record)
                if journal is not None:
                    journal.replayed()
                continue
            __, result, _error = outcomes[name]
            if result is None:
                quarantine_resource(state, by_name[name], max_attempts, stats)
            else:
                state.specs[name] = result.spec
                state.results[name] = result
                state.helper_requirements.extend(result.report.helpers_needed)
            if journal is not None:
                extra = journal_extra(name) if journal_extra else {}
                if result is None:
                    journal.append(
                        "resource", name=name, quarantined=True,
                        attempts=max_attempts, **extra,
                    )
                else:
                    journal.append(
                        "resource", name=name, quarantined=False,
                        attempts=result.attempts,
                        spec=serialize_sm(result.spec),
                        report=report_to_json(result.report),
                        **extra,
                    )
            kill_point("post-extraction-of-resource")
    return state


def regenerate_resource(
    llm: SimulatedLLM,
    service_doc: ServiceDoc,
    state: ExtractionState,
    resource_name: str,
) -> None:
    """Targeted correction: regenerate one resource cleanly (§4.2).

    Used by the pipeline when consistency checks flag a resource; the
    regenerated SM replaces the faulty one in place, and its helper
    requirements are re-recorded.
    """
    resource = service_doc.resource(resource_name)
    from ..llm.prompting import build_prompt

    prompt = build_prompt(resource, feedback="consistency check failed")
    text, report = llm.regenerate_clean(resource, prompt)
    spec = spec_parser(llm)(text)
    state.specs[resource_name] = spec
    state.results[resource_name] = SynthesisResult(
        spec=spec, report=report, attempts=1
    )
    # Helper requirements are value objects; duplicates from the first
    # pass are deduplicated by the linking pass.
    state.helper_requirements.extend(report.helpers_needed)
