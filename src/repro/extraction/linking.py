"""Specification linking (§4.2).

The incrementally generated "modules" are spliced together: helper
transitions required by cross-SM calls are patched into their target
machines, per-resource not-found error codes are collected from the
documentation, and the result is one executable
:class:`~repro.spec.ast.SpecModule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..docs.model import ServiceDoc
from ..spec import ast
from ..spec.types import StateType
from .incremental import ExtractionState


@dataclass
class LinkResult:
    """The linked module plus metadata extraction needs downstream."""

    module: ast.SpecModule
    notfound_codes: dict[str, str] = field(default_factory=dict)
    patched_helpers: list[str] = field(default_factory=list)
    unresolved: list[str] = field(default_factory=list)


def link_module(state: ExtractionState, service_doc: ServiceDoc) -> LinkResult:
    """Splice the per-resource SMs into one executable module."""
    module = ast.SpecModule(service=state.service, provider=state.provider)
    for name in state.order:
        module.add(state.specs[name])

    result = LinkResult(module=module)

    seen: set[tuple[str, str]] = set()
    for helper in state.helper_requirements:
        key = (helper.target, helper.name)
        if key in seen:
            continue
        seen.add(key)
        target = module.get(helper.target)
        if target is None:
            result.unresolved.append(
                f"helper {helper.name} requires unknown SM {helper.target!r}"
            )
            continue
        if helper.name not in target.transitions:
            target.transitions[helper.name] = helper.build()
            result.patched_helpers.append(f"{helper.target}.{helper.name}")
        # The helper mutates a list attribute; if generation dropped it,
        # restore the state variable so the spliced module is executable.
        if target.state_type(helper.list_attr) is None:
            target.states.append(
                ast.StateDecl(helper.list_attr, StateType("list"), None)
            )

    for res in service_doc.resources:
        if res.notfound_code:
            result.notfound_codes[res.name] = res.notfound_code

    # Any transition still marked as a stub after splicing is an
    # unpatched forward declaration — linking must surface it.
    for sm_name, spec in module.machines.items():
        for transition in spec.transitions.values():
            if transition.is_stub:
                result.unresolved.append(
                    f"unlinked stub {sm_name}.{transition.name}"
                )
    return result
