"""Deadline propagation and retry marking for the serve path.

A production request carries two pieces of client intent the serving
layers must honor end to end:

- its **remaining deadline** — past which any work done is wasted
  work, so an overloaded system sheds it *before* dispatch (queue
  time, RTT and shard hops all eat the budget on the shared virtual
  clock);
- whether it is a **retry** — so retry storms can be drawn from a
  capped side-budget instead of amplifying the overload that caused
  the first shed.

Both travel in a :class:`RequestMeta` on a context variable, the same
propagation channel the obs plane's :class:`RequestContext` uses: the
front door parses the envelope's ``DeadlineSeconds`` / ``Retry``
fields once, installs the meta, and admission, the region gate and
the shard RPC stub all read it without any signature threading.

A request whose deadline cannot be met any more is answered with
``RequestTimeout`` carrying the ``ExpiredBeforeDispatch`` marker and
the stage that shed it (``admission`` / ``netem`` / ``shard``) — the
honest wire shape for "we did not even try, your budget was gone".
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from ..interpreter.errors import ApiResponse

#: The error code a blown deadline sheds with (transient: the caller's
#: budget, not the service, decides whether a retry makes sense).
EXPIRED_CODE = "RequestTimeout"

#: The response-data marker proving no work was attempted.
EXPIRED_MARKER = "ExpiredBeforeDispatch"


class DeadlineError(ValueError):
    """An envelope ``DeadlineSeconds`` that cannot be interpreted."""


class RequestMeta:
    """Client intent riding alongside one in-flight request."""

    __slots__ = ("deadline", "retry")

    def __init__(self, deadline: float | None = None,
                 retry: bool = False):
        #: Absolute virtual-clock instant the client stops caring.
        self.deadline = deadline
        #: True when the client marked this request as a retry.
        self.retry = retry

    def remaining(self, now: float) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline - now

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


#: The in-flight request's meta on the current logical thread.
CURRENT_META: ContextVar[RequestMeta | None] = ContextVar(
    "repro_serve_meta", default=None
)


def current_meta() -> RequestMeta | None:
    """The propagated meta of the in-flight request, if any."""
    return CURRENT_META.get()


@contextmanager
def request_meta(deadline: float | None = None, retry: bool = False):
    """Install a :class:`RequestMeta` for the enclosed dispatch."""
    token = CURRENT_META.set(RequestMeta(deadline, retry))
    try:
        yield
    finally:
        CURRENT_META.reset(token)


def envelope_meta(request: dict, clock) -> tuple[float | None, bool]:
    """Parse ``DeadlineSeconds`` / ``Retry`` out of one envelope.

    ``DeadlineSeconds`` is relative (what a wire client can state
    without sharing a clock); the absolute virtual deadline is minted
    here, at arrival — queue time already counts against it.  A
    non-positive budget is honest shorthand for "already expired"; a
    value that is not a number raises :class:`DeadlineError` so the
    front door can answer with a validation error instead of silently
    dropping the client's intent.
    """
    seconds = request.get("DeadlineSeconds")
    deadline = None
    if seconds is not None:
        if isinstance(seconds, bool) or not isinstance(
            seconds, (int, float)
        ):
            raise DeadlineError(
                "DeadlineSeconds must be a number of seconds of "
                "remaining client budget"
            )
        now = clock.now()
        deadline = now + float(seconds) if seconds > 0 else now
    return deadline, request.get("Retry") is True


def expired_response(stage: str, remaining: float = 0.0) -> ApiResponse:
    """The shed answer for a request whose deadline cannot be met."""
    return ApiResponse(
        success=False,
        data={EXPIRED_MARKER: True, "Stage": stage},
        error_code=EXPIRED_CODE,
        error_message=(
            f"The request deadline expired before dispatch "
            f"(shed at {stage}); no work was attempted."
        ),
    )
