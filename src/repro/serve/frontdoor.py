"""The production-shaped front door over any backend.

``FrontDoor`` composes the serving layers in the order a real cloud
edge does::

    JSON envelope  (per-tenant JsonEndpoint: request ids, error shape)
      -> authentication       (TenantRouter: per-key namespaces)
      -> request validation   (RequestValidator: spec-derived types)
      -> admission control    (AdmissionController: buckets, queue,
                               degraded mode)
      -> [network routing, if a NetEm is configured: the request
          crosses the (client-region -> resource-region) link and can
          pay RTT, get lost, or bounce off a partition]
      -> [chaos / resilience proxies, if configured]
      -> concurrent dispatch  (ConcurrentEmulator: RW lock, admitted
                               log)
      -> the emulator

Every layer speaks :class:`~repro.interpreter.errors.ApiResponse`, so
a shed, a validation reject and an interpreter error all come back
through the same wire envelope a success does — clients cannot tell
the front door from the cloud's except by behaviour, which is the
paper's bar for the emulator itself (§2).
"""

from __future__ import annotations

from ..interpreter.endpoint import RequestIdSequence
from ..interpreter.errors import ApiResponse
from ..obs.tracectx import current_request
from ..resilience.policy import VirtualClock
from ..spec import ast
from .admission import AdmissionController
from .deadline import DeadlineError, envelope_meta, request_meta
from .tenancy import AuthError, Tenant, TenantRouter
from .validation import RequestValidator


class ConfigError(ValueError):
    """A front-door composition the serving layer cannot honor.

    Raised at construction time — never mid-request — when two
    features are configured together that do not compose yet, with a
    message naming the gap and the roadmap item tracking it.  The
    canonical case today: :class:`~repro.serve.shard.ShardedFrontDoor`
    with ``network=`` (shard × region placement, ROADMAP item 1).
    """


class _GuardedBackend:
    """Validation + admission in front of one tenant's backend stack."""

    __slots__ = ("frontdoor", "tenant_name", "inner", "_emulator")

    def __init__(self, frontdoor: "FrontDoor", tenant_name: str, inner):
        self.frontdoor = frontdoor
        self.tenant_name = tenant_name
        self.inner = inner
        self._emulator = None

    def _concurrent(self):
        """This tenant's concurrency-layer emulator (for the region
        gate: placement lookups and post-write snapshot publishes)."""
        if self._emulator is None:
            tenant = self.frontdoor.router.get(self.tenant_name)
            if tenant is not None:
                self._emulator = tenant.emulator
        return self._emulator

    # -- delegated surface -------------------------------------------------

    def api_names(self) -> list[str]:
        return self.inner.api_names()

    def supports(self, api: str) -> bool:
        return self.inner.supports(api)

    def reset(self) -> None:
        self.inner.reset()

    def read_only(self, api: str) -> bool:
        return self.inner.read_only(api)

    # -- guarded dispatch --------------------------------------------------

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        front = self.frontdoor
        params = params or {}
        if front.telemetry is not None:
            front.telemetry.metrics.counter(
                "serve.requests", tenant=self.tenant_name
            ).inc()
        rejected = front.validator.validate(api, params)
        if rejected is not None:
            return rejected
        read_only = self.inner.read_only(api)
        decision = front.admission.admit(
            self.tenant_name, api, read_only=read_only
        )
        if not decision.admitted:
            return decision.response
        try:
            gate = front.region_gate
            emulator = self._concurrent() if gate is not None else None
            if gate is not None and emulator is not None:
                response = gate.route(
                    self.tenant_name, emulator, api, params, read_only,
                    lambda: self.inner.invoke(api, params),
                )
            else:
                response = self.inner.invoke(api, params)
            if read_only:
                self._maybe_drift(api, params)
            return response
        finally:
            front.admission.release(self.tenant_name)

    def _maybe_drift(self, api: str, params: dict) -> None:
        """Offer this read to the drift monitor, when one is attached.

        The probe runs against the tenant's concurrency-wrapped
        emulator directly — *inside* any chaos proxies — so injected
        faults can never masquerade as compiled/evaluator divergence.
        """
        obs = getattr(self.frontdoor.telemetry, "obs", None)
        if obs is None or obs.drift is None:
            return
        ctx = current_request()
        if ctx is None:
            return
        emulator = self._concurrent()
        if emulator is not None:
            obs.drift.maybe_check(ctx, emulator, api, params)


class FrontDoor:
    """A hardened, multi-tenant serving layer over learned emulators.

    Parameters
    ----------
    module:
        The spec module every tenant serves (validation derives from
        it).
    emulator_factory:
        Zero-argument callable building one fresh base emulator per
        tenant; also used by the linearizability check to build clean
        replicas for serial replay.
    wrap:
        Optional proxy stack (e.g. a chaos wrapper) interposed between
        admission and the concurrency layer, per tenant.
    rate / burst / max_concurrent / queue_depth / degrade_after /
    recover_after:
        Admission-control knobs (see :class:`AdmissionController`).
    allocation:
        Optional :class:`~repro.serve.allocation.AllocationConfig`.
        When given, admission switches from independent per-tenant
        buckets to the holistic weighted max-min allocator: one shared
        pool of rate/slot/queue budget, work-conserving redistribution
        of unused grant, per-tenant retry side-budgets, and (under the
        sharded front door) shard-health-aware rebalancing.  ``rate``/
        ``burst`` are ignored in this mode — the pool is the config's
        ``total_rate``/``total_burst``.
    network:
        Optional :class:`~repro.netem.NetEm`.  When given, every
        admitted request is routed over the (client-region ->
        resource-region) path by a
        :class:`~repro.netem.routing.RegionGate`: latency is charged
        on the shared clock, lossy links time requests out,
        partitioned links reject writes with ``ServiceUnavailable``
        and (when ``stale_reads``) fail reads over to the client
        region's trailing replica, ``replication_lag`` virtual seconds
        behind the authority.  The network's clock should be the front
        door's clock — pass the same instance to both.
    """

    def __init__(
        self,
        module: ast.SpecModule,
        emulator_factory,
        clock: VirtualClock | None = None,
        telemetry=None,
        wrap=None,
        network=None,
        home_region: str | None = None,
        client_regions: dict[str, str] | None = None,
        stale_reads: bool = True,
        replication_lag: float = 0.25,
        placer=None,
        rate: float = 50.0,
        burst: float = 20.0,
        max_concurrent: int = 16,
        queue_depth: int = 64,
        degrade_after: int = 8,
        recover_after: int = 1,
        allocation=None,
        max_tenants: int = 32,
        require_key: bool = False,
        seed: int = 1,
    ):
        self.module = module
        self.telemetry = telemetry
        if clock is not None:
            self.clock = clock
        elif telemetry is not None:
            self.clock = telemetry.clock
        elif network is not None:
            self.clock = network.clock
        else:
            self.clock = VirtualClock()
        self.validator = RequestValidator(module, telemetry=telemetry)
        allocator = None
        if allocation is not None:
            from .allocation import AllocationConfig, HolisticAllocator

            if allocation is True:
                allocation = AllocationConfig()
            allocator = HolisticAllocator(
                clock=self.clock, config=allocation,
                telemetry=telemetry,
            )
            # The pool's totals *are* the building's global bounds.
            max_concurrent = allocation.total_slots
            queue_depth = allocation.total_queue
        self.allocator = allocator
        self.admission = AdmissionController(
            clock=self.clock, rate=rate, burst=burst,
            max_concurrent=max_concurrent, queue_depth=queue_depth,
            degrade_after=degrade_after, recover_after=recover_after,
            allocator=allocator, telemetry=telemetry,
        )
        self.router = TenantRouter(
            emulator_factory, max_tenants=max_tenants,
            require_key=require_key, wrap=wrap,
            guard=lambda name, backend: _GuardedBackend(
                self, name, backend
            ),
            telemetry=telemetry, seed=seed,
        )
        self.emulator_factory = emulator_factory
        self.network = network
        self.region_gate = None
        if network is not None:
            from ..netem.routing import RegionGate

            self.region_gate = RegionGate(
                network, emulator_factory,
                home_region=home_region,
                placer=placer,
                client_regions=client_regions,
                stale_reads=stale_reads,
                replication_lag=replication_lag,
                telemetry=telemetry,
            )
        #: Request ids for envelopes minted before tenant resolution
        #: (authentication failures).
        self._auth_ids = RequestIdSequence(seed)

    # -- wire surface --------------------------------------------------------

    @property
    def admitted(self):
        """The commit-ordered admitted-request log (all tenants)."""
        return self.router.admitted

    def tenant(self, api_key: str | None = None) -> Tenant:
        """Resolve (or create) the tenant for an API key."""
        return self.router.resolve(api_key)

    def dispatch(self, request: dict, api_key: str | None = None) -> dict:
        """Handle one decoded request envelope for one tenant.

        The envelope may carry ``DeadlineSeconds`` (the client's
        remaining budget, minted into an absolute virtual deadline at
        arrival) and ``Retry: true`` (the request is a retry, drawn
        from the tenant's capped retry side-budget under the holistic
        allocator); both propagate through every serving layer on the
        request-meta context.
        """
        try:
            tenant = self.router.resolve(api_key)
        except AuthError as error:
            return self._auth_envelope(error)
        try:
            deadline, retry = (
                envelope_meta(request, self.clock)
                if isinstance(request, dict) else (None, False)
            )
        except DeadlineError as error:
            return {
                "ResponseMetadata": {
                    "RequestId": self._auth_ids.next()
                },
                "Error": {
                    "Code": "InvalidParameterValue",
                    "Message": str(error),
                },
            }
        obs = getattr(self.telemetry, "obs", None)
        if obs is None:
            if deadline is None and not retry:
                return tenant.endpoint.dispatch(request)
            with request_meta(deadline, retry):
                return tenant.endpoint.dispatch(request)
        api = ""
        if isinstance(request, dict):
            api = str(request.get("Action", ""))
        with obs.request(tenant.name, api) as ctx:
            if deadline is None and not retry:
                body = tenant.endpoint.dispatch(request)
            else:
                with request_meta(deadline, retry):
                    body = tenant.endpoint.dispatch(request)
            error_body = body.get("Error") if isinstance(body, dict) else None
            obs.classify(ctx, (error_body or {}).get("Code", ""))
        return body

    def handle(self, payload: "str | bytes",
               api_key: str | None = None) -> str:
        """Handle one JSON-encoded request; always returns valid JSON."""
        import json

        try:
            tenant = self.router.resolve(api_key)
        except AuthError as error:
            return json.dumps(self._auth_envelope(error))
        return tenant.endpoint.handle(payload)

    def invoke(self, api: str, params: dict | None = None,
               api_key: str | None = None,
               deadline: float | None = None,
               retry: bool = False) -> ApiResponse:
        """The response-typed path (no JSON envelope), still guarded.

        ``deadline`` is relative seconds of remaining client budget
        (minted absolute here, at arrival); ``retry`` marks the call
        as drawing from the tenant's retry side-budget.
        """
        try:
            tenant = self.router.resolve(api_key)
        except AuthError as error:
            return error.to_response()
        absolute = None
        if deadline is not None:
            # A non-positive budget is an already-expired deadline,
            # not the absence of one — admission sheds it honestly.
            now = self.clock.now()
            absolute = now + deadline if deadline > 0 else now
        obs = getattr(self.telemetry, "obs", None)
        if obs is None:
            if absolute is None and not retry:
                return tenant.backend.invoke(api, params)
            with request_meta(absolute, retry):
                return tenant.backend.invoke(api, params)
        with obs.request(tenant.name, api) as ctx:
            if absolute is None and not retry:
                response = tenant.backend.invoke(api, params)
            else:
                with request_meta(absolute, retry):
                    response = tenant.backend.invoke(api, params)
            obs.classify(
                ctx, "" if response.success else response.error_code
            )
        return response

    def _auth_envelope(self, error: AuthError) -> dict:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "serve.auth_rejects", code=error.code
            ).inc()
        return {
            "ResponseMetadata": {"RequestId": self._auth_ids.next()},
            "Error": {"Code": error.code, "Message": error.message},
        }
