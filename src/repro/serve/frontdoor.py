"""The production-shaped front door over any backend.

``FrontDoor`` composes the serving layers in the order a real cloud
edge does::

    JSON envelope  (per-tenant JsonEndpoint: request ids, error shape)
      -> authentication       (TenantRouter: per-key namespaces)
      -> request validation   (RequestValidator: spec-derived types)
      -> admission control    (AdmissionController: buckets, queue,
                               degraded mode)
      -> [chaos / resilience proxies, if configured]
      -> concurrent dispatch  (ConcurrentEmulator: RW lock, admitted
                               log)
      -> the emulator

Every layer speaks :class:`~repro.interpreter.errors.ApiResponse`, so
a shed, a validation reject and an interpreter error all come back
through the same wire envelope a success does — clients cannot tell
the front door from the cloud's except by behaviour, which is the
paper's bar for the emulator itself (§2).
"""

from __future__ import annotations

from ..interpreter.endpoint import RequestIdSequence
from ..interpreter.errors import ApiResponse
from ..resilience.policy import VirtualClock
from ..spec import ast
from .admission import AdmissionController
from .tenancy import AuthError, Tenant, TenantRouter
from .validation import RequestValidator


class _GuardedBackend:
    """Validation + admission in front of one tenant's backend stack."""

    __slots__ = ("frontdoor", "tenant_name", "inner")

    def __init__(self, frontdoor: "FrontDoor", tenant_name: str, inner):
        self.frontdoor = frontdoor
        self.tenant_name = tenant_name
        self.inner = inner

    # -- delegated surface -------------------------------------------------

    def api_names(self) -> list[str]:
        return self.inner.api_names()

    def supports(self, api: str) -> bool:
        return self.inner.supports(api)

    def reset(self) -> None:
        self.inner.reset()

    def read_only(self, api: str) -> bool:
        return self.inner.read_only(api)

    # -- guarded dispatch --------------------------------------------------

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        front = self.frontdoor
        params = params or {}
        if front.telemetry is not None:
            front.telemetry.metrics.counter(
                "serve.requests", tenant=self.tenant_name
            ).inc()
        rejected = front.validator.validate(api, params)
        if rejected is not None:
            return rejected
        read_only = self.inner.read_only(api)
        decision = front.admission.admit(
            self.tenant_name, api, read_only=read_only
        )
        if not decision.admitted:
            return decision.response
        try:
            return self.inner.invoke(api, params)
        finally:
            front.admission.release()


class FrontDoor:
    """A hardened, multi-tenant serving layer over learned emulators.

    Parameters
    ----------
    module:
        The spec module every tenant serves (validation derives from
        it).
    emulator_factory:
        Zero-argument callable building one fresh base emulator per
        tenant; also used by the linearizability check to build clean
        replicas for serial replay.
    wrap:
        Optional proxy stack (e.g. a chaos wrapper) interposed between
        admission and the concurrency layer, per tenant.
    rate / burst / max_concurrent / queue_depth / degrade_after:
        Admission-control knobs (see :class:`AdmissionController`).
    """

    def __init__(
        self,
        module: ast.SpecModule,
        emulator_factory,
        clock: VirtualClock | None = None,
        telemetry=None,
        wrap=None,
        rate: float = 50.0,
        burst: float = 20.0,
        max_concurrent: int = 16,
        queue_depth: int = 64,
        degrade_after: int = 8,
        max_tenants: int = 32,
        require_key: bool = False,
        seed: int = 1,
    ):
        self.module = module
        self.telemetry = telemetry
        self.clock = clock or (
            telemetry.clock if telemetry is not None else VirtualClock()
        )
        self.validator = RequestValidator(module, telemetry=telemetry)
        self.admission = AdmissionController(
            clock=self.clock, rate=rate, burst=burst,
            max_concurrent=max_concurrent, queue_depth=queue_depth,
            degrade_after=degrade_after, telemetry=telemetry,
        )
        self.router = TenantRouter(
            emulator_factory, max_tenants=max_tenants,
            require_key=require_key, wrap=wrap,
            guard=lambda name, backend: _GuardedBackend(
                self, name, backend
            ),
            telemetry=telemetry, seed=seed,
        )
        self.emulator_factory = emulator_factory
        #: Request ids for envelopes minted before tenant resolution
        #: (authentication failures).
        self._auth_ids = RequestIdSequence(seed)

    # -- wire surface --------------------------------------------------------

    @property
    def admitted(self):
        """The commit-ordered admitted-request log (all tenants)."""
        return self.router.admitted

    def tenant(self, api_key: str | None = None) -> Tenant:
        """Resolve (or create) the tenant for an API key."""
        return self.router.resolve(api_key)

    def dispatch(self, request: dict, api_key: str | None = None) -> dict:
        """Handle one decoded request envelope for one tenant."""
        try:
            tenant = self.router.resolve(api_key)
        except AuthError as error:
            return self._auth_envelope(error)
        return tenant.endpoint.dispatch(request)

    def handle(self, payload: "str | bytes",
               api_key: str | None = None) -> str:
        """Handle one JSON-encoded request; always returns valid JSON."""
        import json

        try:
            tenant = self.router.resolve(api_key)
        except AuthError as error:
            return json.dumps(self._auth_envelope(error))
        return tenant.endpoint.handle(payload)

    def invoke(self, api: str, params: dict | None = None,
               api_key: str | None = None) -> ApiResponse:
        """The response-typed path (no JSON envelope), still guarded."""
        try:
            tenant = self.router.resolve(api_key)
        except AuthError as error:
            return error.to_response()
        return tenant.backend.invoke(api, params)

    def _auth_envelope(self, error: AuthError) -> dict:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "serve.auth_rejects", code=error.code
            ).inc()
        return {
            "ResponseMetadata": {"RequestId": self._auth_ids.next()},
            "Error": {"Code": error.code, "Message": error.message},
        }
