"""The hardened concurrent serving layer.

``repro.serve`` turns a single-threaded learned emulator into a
production-shaped, multi-tenant service front end:

- :mod:`locks` — a writer-preferring reader/writer lock;
- :mod:`concurrency` — thread-safe dispatch and the commit-ordered
  admitted-request log;
- :mod:`validation` — spec-derived request validation;
- :mod:`admission` — per-tenant token buckets, the bounded admission
  queue and degraded-mode overload shedding;
- :mod:`tenancy` — per-API-key registry namespaces;
- :mod:`frontdoor` — the composed stack;
- :mod:`loadgen` — the deterministic seeded load generator and the
  serial-replay linearizability check behind ``repro serve-bench``;
- :mod:`shard` — crash-tolerant multi-process sharding: the worker
  supervisor, heartbeat failure detection, WAL-replay shard recovery
  and the sharded front door behind ``serve-bench --shards``;
- :mod:`allocation` — holistic weighted max-min fair allocation of
  rate/slot/queue budgets across tenants and shards, with per-tenant
  retry side-budgets (``serve-bench --fair``);
- :mod:`deadline` — request-meta deadline propagation and the
  ``ExpiredBeforeDispatch`` shed shape.
"""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    OVERLOADED,
    THROTTLED,
    TenantMeter,
)
from .allocation import (
    AllocationConfig,
    HolisticAllocator,
    TenantAllocation,
)
from .concurrency import AdmittedLog, ConcurrentEmulator
from .deadline import (
    DeadlineError,
    EXPIRED_CODE,
    EXPIRED_MARKER,
    RequestMeta,
    current_meta,
    request_meta,
)
from .frontdoor import ConfigError, FrontDoor
from .loadgen import LoadGenerator, LoadReport, verify_linearizable
from .locks import RWLock
from .shard import (
    ShardConfig,
    ShardedFrontDoor,
    ShardLog,
    ShardSupervisor,
    ShardTenantRouter,
    parse_kill_schedule,
    shard_for,
)
from .tenancy import (
    AuthError,
    DEFAULT_TENANT,
    MISSING_TOKEN,
    Tenant,
    TenantRouter,
    UNRECOGNIZED_CLIENT,
)
from .validation import RequestValidator, VALIDATION_ERROR

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmittedLog",
    "AllocationConfig",
    "AuthError",
    "ConcurrentEmulator",
    "ConfigError",
    "DeadlineError",
    "DEFAULT_TENANT",
    "EXPIRED_CODE",
    "EXPIRED_MARKER",
    "FrontDoor",
    "HolisticAllocator",
    "LoadGenerator",
    "LoadReport",
    "MISSING_TOKEN",
    "OVERLOADED",
    "RWLock",
    "RequestValidator",
    "ShardConfig",
    "ShardLog",
    "ShardSupervisor",
    "ShardTenantRouter",
    "ShardedFrontDoor",
    "THROTTLED",
    "Tenant",
    "TenantAllocation",
    "TenantMeter",
    "TenantRouter",
    "RequestMeta",
    "UNRECOGNIZED_CLIENT",
    "VALIDATION_ERROR",
    "current_meta",
    "parse_kill_schedule",
    "request_meta",
    "shard_for",
    "verify_linearizable",
]
