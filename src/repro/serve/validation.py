"""Spec-derived request validation for the serve path.

The emulator core deliberately does *not* type-check scalar
parameters: documented semantic checks are part of cloud behaviour,
framework-level type errors are not, and alignment must compare only
what the documentation promises.  A production front door is the
opposite: garbage envelopes must be rejected with cloud-style
``ValidationError`` / ``MissingParameter`` codes *before* the
interpreter runs, rather than surfacing as interpreter internals.

:class:`RequestValidator` compiles each SM transition's typed
parameter list (the same :class:`~repro.spec.types.StateType` machinery
the spec language itself uses) into a per-API plan, resolved once at
construction:

- a parameter whose value fails its declared type (wrong JSON scalar,
  enum symbol outside the documented set, non-string resource
  reference, mistyped list/map) → ``ValidationError``;
- a non-create call that carries no subject identifier at all →
  ``MissingParameter`` (the same code and message the interpreter
  would eventually produce, issued before any dispatch work);
- undeclared parameters pass through untouched — real cloud front
  doors tolerate unknown keys, and rejecting them would diverge from
  behaviour the documentation never promises.

Unknown actions are *not* handled here: the emulator's own
``InvalidAction`` answer is already wire-shaped.
"""

from __future__ import annotations

from ..interpreter.emulator import normalize_key
from ..interpreter.errors import ApiResponse, MISSING_PARAMETER
from ..spec import ast
from ..spec.types import StateType

#: The front-door rejection code for a type-invalid parameter value.
VALIDATION_ERROR = "ValidationError"


def _describe(type_: StateType) -> str:
    """A human-facing name for a declared parameter type."""
    return type_.render()


class _ParamCheck:
    """One declared parameter's compiled validation plan."""

    __slots__ = ("name", "norm", "type", "is_sm")

    def __init__(self, param):
        self.name = param.name
        self.norm = normalize_key(param.name)
        self.type = param.type
        self.is_sm = param.type.kind == "sm"

    def problem(self, value: object) -> str | None:
        """An error message if ``value`` is type-invalid, else None."""
        if value is None:
            return None
        if self.is_sm:
            # Over the wire an SM reference is a resource identifier.
            if not isinstance(value, str):
                return (
                    f"Value ({value!r}) for parameter {self.name} is "
                    f"invalid. Expected a resource identifier."
                )
            return None
        if not self.type.accepts(value):
            return (
                f"Value ({value!r}) for parameter {self.name} is "
                f"invalid. Expected type {_describe(self.type)}."
            )
        return None


class _ApiPlan:
    """Everything validation needs about one API, resolved once."""

    __slots__ = ("api", "checks", "subject_keys", "subject_param")

    def __init__(self, api: str, sm_name: str, spec: ast.SMSpec,
                 transition: ast.Transition):
        self.api = api
        self.checks = {
            check.norm: check
            for check in (_ParamCheck(p) for p in transition.params)
        }
        # Non-create, non-list calls must name their subject somehow:
        # a declared <sm>_id parameter, a declared SM<own-type>
        # parameter, or the raw <sm>_id key (the interpreter's own
        # resolution order).  Validation only checks *presence*; an
        # unknown id is still the interpreter's NotFound to give.
        self.subject_keys: tuple[str, ...] = ()
        self.subject_param = f"{spec.name}_id"
        bare_describe = (
            transition.category == "describe" and not transition.params
        )
        if transition.category != "create" and not bare_describe:
            keys = {normalize_key(self.subject_param)}
            for param in transition.params:
                if (
                    param.type.kind == "sm"
                    and param.type.sm_name == spec.name
                ):
                    keys.add(normalize_key(param.name))
            self.subject_keys = tuple(keys)


class RequestValidator:
    """Validates request parameter envelopes against the spec module."""

    def __init__(self, module: ast.SpecModule, telemetry=None):
        self.telemetry = telemetry
        self._plans: dict[str, _ApiPlan] = {}
        for api, (sm_name, transition) in module.transition_index().items():
            if api.startswith("_"):
                continue
            self._plans[api] = _ApiPlan(
                api, sm_name, module.machines[sm_name], transition
            )

    def validate(self, api: str, params: dict) -> ApiResponse | None:
        """A failure response for a malformed request, or ``None``."""
        plan = self._plans.get(api)
        if plan is None:
            return None  # unknown action: the emulator answers itself
        request = {
            normalize_key(key): value for key, value in params.items()
        }
        for norm, value in request.items():
            check = plan.checks.get(norm)
            if check is None:
                continue
            message = check.problem(value)
            if message is not None:
                return self._reject(api, VALIDATION_ERROR, message)
        if plan.subject_keys and not any(
            request.get(key) is not None for key in plan.subject_keys
        ):
            return self._reject(
                api, MISSING_PARAMETER,
                "The request must contain the parameter "
                f"{plan.subject_param}",
            )
        return None

    def _reject(self, api: str, code: str, message: str) -> ApiResponse:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "serve.validation_rejects", code=code
            ).inc()
            self.telemetry.event("validation_reject", api=api, code=code)
        return ApiResponse.fail(code, message)
