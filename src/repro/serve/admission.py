"""Admission control and overload shedding for the serve path.

A production front door defends itself in layers, all deterministic
on the virtual clock so overload scenarios are testable without wall
time:

- **per-tenant token buckets** (the resilience layer's
  :class:`~repro.resilience.ratelimit.TokenBucket`) meter sustained
  rate with a burst allowance; an empty bucket sheds with
  ``RequestLimitExceeded`` and a ``RetryAfterSeconds`` hint computed
  from the refill rate;
- a **bounded admission queue**: requests beyond the concurrency
  target wait their turn implicitly (on the emulator's RW lock), but
  only ``queue_depth`` of them may be in the building at once — the
  excess sheds with ``ServiceUnavailable`` instead of growing an
  unbounded backlog;
- **degraded mode**: a tenant that keeps hammering an empty bucket
  flips to degraded — writes shed immediately with
  ``ServiceUnavailable`` while reads bypass the bucket and stay
  alive (reads ride the lock-free pure route and are cheap; keeping
  them up is what lets operators *see* an overloaded system).  The
  tenant recovers after ``recover_after`` consecutive token grants
  (1 by default: the moment its bucket has tokens again; a higher
  value adds hysteresis so a tenant flapping around the degrade
  threshold does not oscillate admission decisions every request).

When a :class:`~repro.serve.allocation.HolisticAllocator` is
attached, the independent per-tenant buckets become *allocator-owned*
buckets whose rates are re-granted every interval by weighted max-min
fairness over the shared pool, each tenant's in-flight count is
bounded by its granted slot/queue budget, retries draw from a capped
per-tenant side-budget, and a request whose propagated deadline
already expired is shed before any other layer spends work on it
(``RequestTimeout`` + ``ExpiredBeforeDispatch``).

Shed responses are :class:`~repro.interpreter.errors.ApiResponse`
failures carrying the hint in ``data``; the JSON endpoint folds that
into the error envelope (``Error.RetryAfterSeconds``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..interpreter.errors import ApiResponse
from ..obs.tracectx import current_request
from ..resilience.policy import VirtualClock
from ..resilience.ratelimit import TokenBucket
from .deadline import current_meta, expired_response

#: Shed codes (both are transient: well-behaved clients back off).
THROTTLED = "RequestLimitExceeded"
OVERLOADED = "ServiceUnavailable"


def _shed(code: str, message: str, retry_after: float,
          **extra: object) -> ApiResponse:
    data: dict = dict(extra)
    if retry_after > 0:
        # Every serving-layer shed promises a *positive* hint — a
        # sub-microsecond deficit must not round down to 0.0, which
        # clients could not tell apart from a fault with no hint.
        data["RetryAfterSeconds"] = max(round(retry_after, 6), 1e-6)
    return ApiResponse(
        success=False, data=data, error_code=code, error_message=message
    )


@dataclass
class AdmissionDecision:
    """What the controller decided for one request."""

    admitted: bool
    response: ApiResponse | None = None  # the shed answer, if any


class TenantMeter:
    """One tenant's bucket plus its degraded-mode bookkeeping."""

    __slots__ = ("bucket", "alloc", "degraded", "_consecutive_sheds",
                 "_consecutive_tokens", "_lock")

    def __init__(self, bucket: TokenBucket, alloc=None):
        self.bucket = bucket
        #: The allocator grant backing this meter (fair mode only).
        self.alloc = alloc
        self.degraded = False
        self._consecutive_sheds = 0
        self._consecutive_tokens = 0
        self._lock = threading.Lock()

    def note_shed(self, degrade_after: int) -> bool:
        """Count a shed; returns True if the tenant just degraded."""
        with self._lock:
            self._consecutive_sheds += 1
            self._consecutive_tokens = 0
            if not self.degraded and (
                self._consecutive_sheds >= degrade_after
            ):
                self.degraded = True
                return True
            return False

    def note_token(self, recover_after: int = 1) -> bool:
        """A token was available; returns True if tenant recovered.

        Recovery requires ``recover_after`` *consecutive* token grants
        — the hysteresis guard: with the default of 1 a tenant
        recovers on its first token (the original behavior), while a
        higher value keeps a tenant that flaps around the degrade
        threshold from toggling its admission mode on every request.
        """
        with self._lock:
            self._consecutive_sheds = 0
            self._consecutive_tokens += 1
            if not self.degraded:
                return False
            if self._consecutive_tokens >= max(1, recover_after):
                self.degraded = False
                self._consecutive_tokens = 0
                return True
            return False


class AdmissionController:
    """Meters, bounds and sheds the traffic of every tenant.

    ``max_concurrent`` is the in-service target; ``queue_depth`` bounds
    how many further requests may wait.  ``degrade_after`` consecutive
    bucket misses flip a tenant into degraded mode.
    """

    def __init__(
        self,
        clock: VirtualClock | None = None,
        rate: float = 50.0,
        burst: float = 20.0,
        max_concurrent: int = 16,
        queue_depth: int = 64,
        degrade_after: int = 8,
        recover_after: int = 1,
        allocator=None,
        telemetry=None,
    ):
        self.clock = clock or VirtualClock()
        self.rate = rate
        self.burst = burst
        self.max_concurrent = max_concurrent
        self.queue_depth = queue_depth
        self.degrade_after = degrade_after
        self.recover_after = max(1, recover_after)
        #: Optional :class:`~repro.serve.allocation.HolisticAllocator`:
        #: when attached, buckets and slot budgets are allocator grants
        #: instead of independent per-tenant config.
        self.allocator = allocator
        self.telemetry = telemetry
        self._meters: dict[str, TenantMeter] = {}
        self._in_flight = 0
        self._lock = threading.Lock()

    # -- tenant meters -------------------------------------------------------

    def meter(self, tenant: str) -> TenantMeter:
        with self._lock:
            meter = self._meters.get(tenant)
            if meter is None:
                if self.allocator is not None:
                    alloc = self.allocator.tenant(tenant)
                    meter = TenantMeter(alloc.bucket, alloc=alloc)
                else:
                    meter = TenantMeter(TokenBucket(
                        rate=self.rate, burst=self.burst,
                        clock=self.clock,
                    ))
                self._meters[tenant] = meter
        return meter

    def degraded(self, tenant: str) -> bool:
        return self.meter(tenant).degraded

    # -- admission -----------------------------------------------------------

    def admit(self, tenant: str, api: str,
              read_only: bool) -> AdmissionDecision:
        """Decide one request; pair every admit with :meth:`release`."""
        meta = current_meta()
        # Layer 0: a request whose deadline already expired is wasted
        # work by definition — shed it before spending any budget.
        if meta is not None and meta.expired(self.clock.now()):
            return self._expire(tenant, api, "admission")
        alloc = None
        if self.allocator is not None:
            alloc = self.allocator.observe(tenant)
            # Layer 0b: retries draw from the capped side-budget, so a
            # retry storm is bounded instead of amplifying overload.
            if meta is not None and meta.retry:
                if not alloc.retry_bucket.try_take():
                    alloc.retry_exhausted += 1
                    self._count(
                        tenant, "allocation.retry_budget_exhausted"
                    )
                    self._count_shed(tenant, OVERLOADED, api)
                    return AdmissionDecision(False, _shed(
                        OVERLOADED,
                        "Your retry budget is exhausted; wait out the "
                        "Retry-After before retrying.",
                        retry_after=alloc.retry_bucket.retry_after(),
                        RetryBudgetExhausted=True,
                    ))

        # Layer 1: the building is full — shed before any queueing.
        with self._lock:
            capacity = self.max_concurrent + self.queue_depth
            if self._in_flight >= capacity:
                self._count_shed(tenant, OVERLOADED, api)
                return AdmissionDecision(False, _shed(
                    OVERLOADED,
                    "The admission queue is full; reduce your request "
                    "rate and retry.",
                    retry_after=1.0 / max(self.rate, 1e-9),
                ))
            self._in_flight += 1
            waiting = max(0, self._in_flight - self.max_concurrent)
        self._observe_queue(waiting)

        # Layer 1b: the tenant's *granted* slot/queue budget — an
        # aggressor fills its own allocation, never the whole building.
        if alloc is not None and not self.allocator.enter(alloc):
            self._release_slot()
            self._count_shed(tenant, OVERLOADED, api)
            return AdmissionDecision(False, _shed(
                OVERLOADED,
                "Your granted concurrency budget is full; reduce your "
                "in-flight requests and retry.",
                retry_after=1.0 / max(alloc.granted_rate, 1e-9),
            ))

        meter = self.meter(tenant)
        # Layer 2: degraded mode — reads ride free, writes shed flat.
        if meter.degraded:
            if read_only:
                self._count(tenant, "serve.degraded_reads")
                return self._admitted(alloc)
            retry_after = meter.bucket.retry_after()
            if not meter.bucket.try_take():
                self._backout(alloc)
                self._count_shed(tenant, OVERLOADED, api)
                return AdmissionDecision(False, _shed(
                    OVERLOADED,
                    "The service is in degraded mode; writes are "
                    "temporarily shed.",
                    retry_after=retry_after,
                ))
            self._note_recovery(tenant, meter)
            return self._admitted(alloc)

        # Layer 3: the token bucket.
        if meter.bucket.try_take():
            meter.note_token(self.recover_after)
            return self._admitted(alloc)
        retry_after = meter.bucket.retry_after()
        if meter.note_shed(self.degrade_after):
            self._count(tenant, "serve.degraded_entries")
            if self.telemetry is not None:
                self.telemetry.event("tenant_degraded", tenant=tenant)
        if read_only and self.meter(tenant).degraded:
            # The shed that tipped the tenant over still answers reads.
            self._count(tenant, "serve.degraded_reads")
            return self._admitted(alloc)
        self._backout(alloc)
        self._count_shed(tenant, THROTTLED, api)
        return AdmissionDecision(False, _shed(
            THROTTLED,
            "Request limit exceeded.",
            retry_after=retry_after,
        ))

    def release(self, tenant: str | None = None) -> None:
        """A previously admitted request finished."""
        self._release_slot()
        if self.allocator is not None and tenant is not None:
            meter = self._meters.get(tenant)
            if meter is not None and meter.alloc is not None:
                self.allocator.leave(meter.alloc)

    # -- internals -----------------------------------------------------------

    def _admitted(self, alloc) -> AdmissionDecision:
        if alloc is not None:
            self.allocator.note_admitted(alloc)
        return AdmissionDecision(True)

    def _backout(self, alloc) -> None:
        """Undo the slot claims of a request shed after layer 1."""
        self._release_slot()
        if alloc is not None:
            self.allocator.leave(alloc)

    def _expire(self, tenant: str, api: str,
                stage: str) -> AdmissionDecision:
        ctx = current_request()
        if ctx is not None:
            ctx.shed = True
        if self.allocator is not None:
            self.allocator.tenant(tenant).deadline_sheds += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "allocation.deadline_expired", tenant=tenant,
                stage=stage,
            ).inc()
            self.telemetry.event(
                "deadline_expired", tenant=tenant, api=api, stage=stage,
            )
        return AdmissionDecision(False, expired_response(stage))

    def _note_recovery(self, tenant: str, meter: TenantMeter) -> None:
        if meter.note_token(self.recover_after) and (
            self.telemetry is not None
        ):
            self.telemetry.event("tenant_recovered", tenant=tenant)

    def _release_slot(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def _observe_queue(self, waiting: int) -> None:
        ctx = current_request()
        if ctx is not None:
            ctx.queue_depth = waiting
        if self.telemetry is None:
            return
        self.telemetry.metrics.gauge("serve.queue_depth").set(waiting)
        self.telemetry.metrics.histogram(
            "serve.queue_depth_samples"
        ).observe(float(waiting))

    def _count(self, tenant: str, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name, tenant=tenant).inc()

    def _count_shed(self, tenant: str, code: str, api: str) -> None:
        ctx = current_request()
        if ctx is not None:
            ctx.shed = True
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "serve.shed", code=code, tenant=tenant
            ).inc()
            self.telemetry.event(
                "request_shed", tenant=tenant, code=code, api=api
            )
