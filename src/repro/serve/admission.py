"""Admission control and overload shedding for the serve path.

A production front door defends itself in layers, all deterministic
on the virtual clock so overload scenarios are testable without wall
time:

- **per-tenant token buckets** (the resilience layer's
  :class:`~repro.resilience.ratelimit.TokenBucket`) meter sustained
  rate with a burst allowance; an empty bucket sheds with
  ``RequestLimitExceeded`` and a ``RetryAfterSeconds`` hint computed
  from the refill rate;
- a **bounded admission queue**: requests beyond the concurrency
  target wait their turn implicitly (on the emulator's RW lock), but
  only ``queue_depth`` of them may be in the building at once — the
  excess sheds with ``ServiceUnavailable`` instead of growing an
  unbounded backlog;
- **degraded mode**: a tenant that keeps hammering an empty bucket
  flips to degraded — writes shed immediately with
  ``ServiceUnavailable`` while reads bypass the bucket and stay
  alive (reads ride the lock-free pure route and are cheap; keeping
  them up is what lets operators *see* an overloaded system).  The
  tenant recovers the moment its bucket has tokens again.

Shed responses are :class:`~repro.interpreter.errors.ApiResponse`
failures carrying the hint in ``data``; the JSON endpoint folds that
into the error envelope (``Error.RetryAfterSeconds``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..interpreter.errors import ApiResponse
from ..obs.tracectx import current_request
from ..resilience.policy import VirtualClock
from ..resilience.ratelimit import TokenBucket

#: Shed codes (both are transient: well-behaved clients back off).
THROTTLED = "RequestLimitExceeded"
OVERLOADED = "ServiceUnavailable"


def _shed(code: str, message: str, retry_after: float) -> ApiResponse:
    data = {}
    if retry_after > 0:
        data["RetryAfterSeconds"] = round(retry_after, 6)
    return ApiResponse(
        success=False, data=data, error_code=code, error_message=message
    )


@dataclass
class AdmissionDecision:
    """What the controller decided for one request."""

    admitted: bool
    response: ApiResponse | None = None  # the shed answer, if any


class TenantMeter:
    """One tenant's bucket plus its degraded-mode bookkeeping."""

    __slots__ = ("bucket", "degraded", "_consecutive_sheds", "_lock")

    def __init__(self, bucket: TokenBucket):
        self.bucket = bucket
        self.degraded = False
        self._consecutive_sheds = 0
        self._lock = threading.Lock()

    def note_shed(self, degrade_after: int) -> bool:
        """Count a shed; returns True if the tenant just degraded."""
        with self._lock:
            self._consecutive_sheds += 1
            if not self.degraded and (
                self._consecutive_sheds >= degrade_after
            ):
                self.degraded = True
                return True
            return False

    def note_token(self) -> bool:
        """A token was available; returns True if tenant recovered."""
        with self._lock:
            recovered = self.degraded
            self.degraded = False
            self._consecutive_sheds = 0
            return recovered


class AdmissionController:
    """Meters, bounds and sheds the traffic of every tenant.

    ``max_concurrent`` is the in-service target; ``queue_depth`` bounds
    how many further requests may wait.  ``degrade_after`` consecutive
    bucket misses flip a tenant into degraded mode.
    """

    def __init__(
        self,
        clock: VirtualClock | None = None,
        rate: float = 50.0,
        burst: float = 20.0,
        max_concurrent: int = 16,
        queue_depth: int = 64,
        degrade_after: int = 8,
        telemetry=None,
    ):
        self.clock = clock or VirtualClock()
        self.rate = rate
        self.burst = burst
        self.max_concurrent = max_concurrent
        self.queue_depth = queue_depth
        self.degrade_after = degrade_after
        self.telemetry = telemetry
        self._meters: dict[str, TenantMeter] = {}
        self._in_flight = 0
        self._lock = threading.Lock()

    # -- tenant meters -------------------------------------------------------

    def meter(self, tenant: str) -> TenantMeter:
        with self._lock:
            meter = self._meters.get(tenant)
            if meter is None:
                meter = TenantMeter(TokenBucket(
                    rate=self.rate, burst=self.burst, clock=self.clock
                ))
                self._meters[tenant] = meter
        return meter

    def degraded(self, tenant: str) -> bool:
        return self.meter(tenant).degraded

    # -- admission -----------------------------------------------------------

    def admit(self, tenant: str, api: str,
              read_only: bool) -> AdmissionDecision:
        """Decide one request; pair every admit with :meth:`release`."""
        # Layer 1: the building is full — shed before any queueing.
        with self._lock:
            capacity = self.max_concurrent + self.queue_depth
            if self._in_flight >= capacity:
                self._count_shed(tenant, OVERLOADED, api)
                return AdmissionDecision(False, _shed(
                    OVERLOADED,
                    "The admission queue is full; reduce your request "
                    "rate and retry.",
                    retry_after=1.0 / max(self.rate, 1e-9),
                ))
            self._in_flight += 1
            waiting = max(0, self._in_flight - self.max_concurrent)
        self._observe_queue(waiting)

        meter = self.meter(tenant)
        # Layer 2: degraded mode — reads ride free, writes shed flat.
        if meter.degraded:
            if read_only:
                self._count(tenant, "serve.degraded_reads")
                return AdmissionDecision(True)
            retry_after = meter.bucket.retry_after()
            if not meter.bucket.try_take():
                self._release_slot()
                self._count_shed(tenant, OVERLOADED, api)
                return AdmissionDecision(False, _shed(
                    OVERLOADED,
                    "The service is in degraded mode; writes are "
                    "temporarily shed.",
                    retry_after=retry_after,
                ))
            self._note_recovery(tenant, meter)
            return AdmissionDecision(True)

        # Layer 3: the token bucket.
        if meter.bucket.try_take():
            meter.note_token()
            return AdmissionDecision(True)
        retry_after = meter.bucket.retry_after()
        if meter.note_shed(self.degrade_after):
            self._count(tenant, "serve.degraded_entries")
            if self.telemetry is not None:
                self.telemetry.event("tenant_degraded", tenant=tenant)
        if read_only and self.meter(tenant).degraded:
            # The shed that tipped the tenant over still answers reads.
            self._count(tenant, "serve.degraded_reads")
            return AdmissionDecision(True)
        self._release_slot()
        self._count_shed(tenant, THROTTLED, api)
        return AdmissionDecision(False, _shed(
            THROTTLED,
            "Request limit exceeded.",
            retry_after=retry_after,
        ))

    def release(self) -> None:
        """A previously admitted request finished."""
        self._release_slot()

    # -- internals -----------------------------------------------------------

    def _note_recovery(self, tenant: str, meter: TenantMeter) -> None:
        if meter.note_token() and self.telemetry is not None:
            self.telemetry.event("tenant_recovered", tenant=tenant)

    def _release_slot(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def _observe_queue(self, waiting: int) -> None:
        ctx = current_request()
        if ctx is not None:
            ctx.queue_depth = waiting
        if self.telemetry is None:
            return
        self.telemetry.metrics.gauge("serve.queue_depth").set(waiting)
        self.telemetry.metrics.histogram(
            "serve.queue_depth_samples"
        ).observe(float(waiting))

    def _count(self, tenant: str, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name, tenant=tenant).inc()

    def _count_shed(self, tenant: str, code: str, api: str) -> None:
        ctx = current_request()
        if ctx is not None:
            ctx.shed = True
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "serve.shed", code=code, tenant=tenant
            ).inc()
            self.telemetry.event(
                "request_shed", tenant=tenant, code=code, api=api
            )
