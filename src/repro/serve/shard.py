"""Crash-tolerant multi-process sharded serving.

One serving process, one GIL, one failure domain — that is where the
serve stack stopped.  This module splits the registry space across N
**worker processes** (one shard per process, placed by a stable
tenant -> shard hash) and puts a supervising parent in front:

- :class:`ShardSupervisor` spawns the workers (``multiprocessing``
  spawn context — restart-safe while request threads are live), speaks
  a correlation-id RPC over duplex pipes, heartbeats every shard on a
  virtual-clock-compatible loop, and restarts dead workers
  automatically with the next entry of a seeded per-shard kill-schedule
  queue (so injected restart storms converge: the queue drains and the
  shard comes back clean).
- Each :class:`_ShardWorker` owns a private durability directory: a
  CRC-framed tenant-tagged **write-attempt log** (:class:`ShardLog`,
  the ``mid-serve-wal-append`` kill site — a crash there leaves a
  deliberately torn half-line) plus per-tenant snapshot files written
  atomically every ``snapshot_interval`` writes.  Recovery is snapshot
  restore + attempt-log tail replay, then a self-check: a full
  from-scratch replay of every tenant's attempts must be
  **byte-identical** to the recovered registry, and any divergence is
  reported to the supervisor and folded into the linearizability
  verdict.
- :class:`ShardedFrontDoor` keeps the whole single-process serving
  stack (envelope, auth, validation, admission) and swaps only the
  bottom: each tenant's backend is an RPC stub to its owning shard.
  Requests to a dead shard shed with ``ServiceUnavailable`` + a
  Retry-After hint and a ``ShardUnavailable`` marker (so well-behaved
  clients back off for the failover, not forever), while surviving
  shards keep serving untouched.

Why an *attempt* log and not the emulator's WAL: the interpreter burns
a deterministic ID even when a create fails (no counter rollback), and
the WAL records only successful commits — so snapshot+WAL replay
cannot reproduce allocator state after failed attempts.  Logging every
attempt *before* dispatch makes one file serve as both the redo log
(replay re-fails exactly, burning the same IDs) and the per-shard
admitted log the extended linearizability check replays serially.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..durability.journal import JournalWriter, scan_records
from ..durability.snapshot import (
    decode_value,
    encode_value,
    registry_diff,
    write_snapshot,
)
from ..interpreter.emulator import Emulator
from ..interpreter.endpoint import JsonEndpoint
from ..interpreter.errors import ApiResponse
from ..resilience.chaos import (
    KILL_SITES,
    SimulatedCrash,
    install_kill_switch,
)
from ..resilience.policy import VirtualClock
from ..spec import parse_module, serialize_module
from .concurrency import ConcurrentEmulator
from .deadline import current_meta, expired_response
from .frontdoor import ConfigError, FrontDoor, _GuardedBackend
from .loadgen import _canonical
from .tenancy import Tenant, TenantRouter

SHARD_WAL_NAME = "shard.wal"

#: Worker exit status for an injected :class:`SimulatedCrash` — the
#: process dies with no cleanup, no reply and no flushes, the way
#: ``kill -9`` would.
CRASH_EXIT_CODE = 23

#: The kill sites a worker process can die at (all of them reachable
#: from the serve path; the build-side sites never fire in a worker).
WORKER_KILL_SITES = (
    "mid-transition-commit",   # write committed? no — logged, not applied
    "mid-publish",             # write applied, version not yet published
    "mid-serve-wal-append",    # attempt half-written, never dispatched
)


def shard_for(tenant: str, shards: int) -> int:
    """The stable tenant -> shard placement (crc32 hash, mod N)."""
    return zlib.crc32(tenant.encode("utf-8")) % max(1, shards)


def _safe_name(tenant: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in tenant
    )


# ---------------------------------------------------------------------------
# The per-shard write-attempt log
# ---------------------------------------------------------------------------


class ShardLog:
    """Tenant-tagged log of every write *attempt* one shard admitted.

    Shares the build journal's CRC framing and torn-tail scan.  The
    append is the ``mid-serve-wal-append`` kill site: an injected
    worker death there leaves half a line, flushed but not fsync'd,
    which the recovery scan drops — correctly, because the attempt it
    described never reached the interpreter.
    """

    def __init__(self, path: "str | Path", fsync: bool = True):
        target = Path(path)
        if target.is_dir():
            target = target / SHARD_WAL_NAME
        self.path = target
        self._writer = JournalWriter(
            self.path, fsync=fsync, kill_site="mid-serve-wal-append"
        )
        scan = scan_records(self.path)
        self.dropped = scan.dropped
        self._records = scan.records
        self._writer.open(truncate_to=scan.valid_bytes)
        self._seq = self._records[-1]["seq"] if self._records else 0

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def records(self) -> list[dict]:
        return list(self._records)

    def append(self, tenant: str, api: str, params: dict | None) -> int:
        """Log one attempt about to dispatch; returns its shard seq."""
        self._seq += 1
        record = {
            "type": "attempt",
            "seq": self._seq,
            "tenant": tenant,
            "api": api,
            "params": encode_value(dict(params or {})),
        }
        self._writer.append(record)
        self._records.append(record)
        return self._seq

    def append_reset(self, tenant: str) -> int:
        """A tenant reset is an attempt too (replay must repeat it)."""
        self._seq += 1
        record = {"type": "reset", "seq": self._seq, "tenant": tenant}
        self._writer.append(record)
        self._records.append(record)
        return self._seq

    def close(self) -> None:
        self._writer.close()


# ---------------------------------------------------------------------------
# Worker side (runs in the child process)
# ---------------------------------------------------------------------------


@dataclass
class ShardConfig:
    """Everything one worker needs, picklable across ``spawn``."""

    index: int
    module_text: str
    service: str
    provider: str
    notfound_codes: dict
    data_dir: str
    seed: int = 1
    snapshot_interval: int = 16
    fsync: bool = False
    #: Armed *after* recovery completes, so injected deaths always
    #: target serving, never the recovery replay itself.
    kill_schedule: dict | None = None


class _ShardWorker:
    """One shard's serving state inside its worker process.

    The serve loop is single-threaded (the supervisor serializes RPC
    per shard), so per-request work needs no locking here; the
    :class:`ConcurrentEmulator` wrap is still used for its MVCC
    publish/pin surface (torn-free snapshots, version accounting, and
    the ``mid-publish`` kill site).
    """

    def __init__(self, config: ShardConfig):
        self.config = config
        self.module = parse_module(
            config.module_text, service=config.service,
            provider=config.provider,
        )
        self.data_dir = Path(config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.log = ShardLog(self.data_dir / SHARD_WAL_NAME,
                            fsync=config.fsync)
        self._emulators: dict[str, ConcurrentEmulator] = {}
        self._writes_since_snapshot: dict[str, int] = {}
        self.requests = 0
        self.writes = 0
        self.recovery = self._recover()

    # -- construction ------------------------------------------------------

    def _fresh(self) -> Emulator:
        return Emulator(
            self.module, notfound_codes=self.config.notfound_codes,
            mvcc=True,
        )

    def _tenant(self, name: str) -> ConcurrentEmulator:
        concurrent = self._emulators.get(name)
        if concurrent is None:
            concurrent = ConcurrentEmulator(
                self._fresh(), tenant=name, log=None
            )
            self._emulators[name] = concurrent
        return concurrent

    # -- recovery ----------------------------------------------------------

    def _snapshot_path(self, tenant: str) -> Path:
        return self.data_dir / f"tenant-{_safe_name(tenant)}.snapshot.json"

    def _apply(self, concurrent: ConcurrentEmulator, record: dict) -> None:
        if record.get("type") == "reset":
            concurrent.reset()
        else:
            concurrent.invoke(record["api"], decode_value(record["params"]))

    def _recover(self) -> list[dict]:
        """Snapshot restore + attempt-log tail replay, then prove it.

        For every tenant seen in a snapshot file or the attempt log:
        restore the newest snapshot, replay attempts with
        ``seq > snapshot.shard_seq`` through the normal dispatch path
        (failures re-fail identically, burning the same IDs), then run
        the self-check — a full from-scratch replay of the tenant's
        attempts must produce a byte-identical registry.  The report
        rides to the supervisor in the hello message; a non-identical
        recovery is a linearizability failure.
        """
        records = self.log.records
        snapshots: dict[str, dict] = {}
        for path in sorted(self.data_dir.glob("tenant-*.snapshot.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            tenant = payload.get("tenant")
            if isinstance(tenant, str):
                snapshots[tenant] = payload
        tenants = sorted(
            set(snapshots) | {r["tenant"] for r in records}
        )
        reports = []
        for tenant in tenants:
            concurrent = self._tenant(tenant)
            payload = snapshots.get(tenant)
            snap_seq = 0
            if payload is not None:
                concurrent.restore(payload["snapshot"])
                snap_seq = int(payload.get("shard_seq", 0))
            replayed = 0
            for record in records:
                if record["tenant"] != tenant or record["seq"] <= snap_seq:
                    continue
                self._apply(concurrent, record)
                replayed += 1
            control = ConcurrentEmulator(
                self._fresh(), tenant=tenant, log=None
            )
            for record in records:
                if record["tenant"] == tenant:
                    self._apply(control, record)
            want = control.snapshot()
            got = concurrent.snapshot()
            identical = _canonical(want) == _canonical(got)
            reports.append({
                "tenant": tenant,
                "snapshot_seq": snap_seq,
                "replayed": replayed,
                "torn_dropped": self.log.dropped,
                "identical": identical,
                "diff": registry_diff(
                    {**want, "wal_seq": 0}, {**got, "wal_seq": 0}
                )[:5],
            })
        return reports

    # -- serving -----------------------------------------------------------

    def invoke(self, tenant: str, api: str, params: dict) -> ApiResponse:
        concurrent = self._tenant(tenant)
        self.requests += 1
        if concurrent.read_only(api):
            return concurrent.invoke(api, params)
        self.writes += 1
        self.log.append(tenant, api, params)
        response = concurrent.invoke(api, params)
        self._maybe_snapshot(tenant, concurrent)
        return response

    def reset(self, tenant: str) -> None:
        concurrent = self._tenant(tenant)
        self.log.append_reset(tenant)
        concurrent.reset()
        self._maybe_snapshot(tenant, concurrent)

    def _maybe_snapshot(self, tenant: str,
                        concurrent: ConcurrentEmulator,
                        force: bool = False) -> None:
        count = self._writes_since_snapshot.get(tenant, 0) + 1
        if not force and count < self.config.snapshot_interval:
            self._writes_since_snapshot[tenant] = count
            return
        self._writes_since_snapshot[tenant] = 0
        write_snapshot(self._snapshot_path(tenant), {
            "tenant": tenant,
            "shard": self.config.index,
            "shard_seq": self.log.seq,
            "snapshot": concurrent.snapshot(),
        })

    # -- introspection ops --------------------------------------------------

    def snapshot(self, tenant: str) -> dict:
        return self._tenant(tenant).snapshot()

    def admitted(self) -> list[dict]:
        return [
            {
                "type": record.get("type", "attempt"),
                "seq": record["seq"],
                "shard": self.config.index,
                "tenant": record["tenant"],
                "api": record.get("api", "_Reset"),
                "params": decode_value(record.get("params", {})),
            }
            for record in self.log.records
        ]

    def stats(self) -> dict:
        version_stats = [
            emulator.version_stats()
            for emulator in self._emulators.values()
        ]
        return {
            "shard": self.config.index,
            "pid": os.getpid(),
            "requests": self.requests,
            "writes": self.writes,
            "admitted": self.log.seq,
            "tenants": sorted(self._emulators),
            "version_stats": version_stats,
        }

    def shutdown(self) -> None:
        """Final snapshots for every tenant, then close the log."""
        for tenant, concurrent in self._emulators.items():
            self._maybe_snapshot(tenant, concurrent, force=True)
        self.log.close()


def _worker_main(config: ShardConfig, conn) -> None:
    """Child-process entry: recover, say hello, serve until told not to.

    An injected :class:`SimulatedCrash` anywhere in request handling
    exits immediately via ``os._exit`` — no reply, no flush, no
    cleanup — which is exactly the failure the supervisor must detect
    and repair.
    """
    try:
        worker = _ShardWorker(config)
    except Exception as error:  # startup is the one place we report
        try:
            conn.send({
                "type": "hello", "shard": config.index, "ok": False,
                "error": f"{type(error).__name__}: {error}",
            })
        except OSError:
            pass
        os._exit(1)
    conn.send({
        "type": "hello", "shard": config.index, "ok": True,
        "pid": os.getpid(), "recovery": worker.recovery,
        "torn_dropped": worker.log.dropped,
    })
    if config.kill_schedule:
        install_kill_switch(dict(config.kill_schedule))
    running = True
    while running:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; die quietly
        mid = message.get("id")
        op = message.get("op")
        try:
            if op == "invoke":
                remaining = message.get("deadline_remaining")
                if remaining is not None and remaining <= 0:
                    # The budget died in transit: answer honestly
                    # before the WAL or the emulator spend any work.
                    expired = expired_response("shard")
                    reply = {
                        "id": mid, "ok": True, "success": False,
                        "data": encode_value(expired.data),
                        "error_code": expired.error_code,
                        "error_message": expired.error_message,
                    }
                else:
                    response = worker.invoke(
                        message["tenant"], message["api"],
                        dict(message.get("params") or {}),
                    )
                    reply = {
                        "id": mid, "ok": True,
                        "success": response.success,
                        "data": encode_value(response.data),
                        "error_code": response.error_code,
                        "error_message": response.error_message,
                    }
            elif op == "ping":
                reply = {"id": mid, "ok": True, "pid": os.getpid()}
            elif op == "snapshot":
                reply = {
                    "id": mid, "ok": True,
                    "snapshot": worker.snapshot(message["tenant"]),
                }
            elif op == "admitted":
                reply = {
                    "id": mid, "ok": True, "records": worker.admitted()
                }
            elif op == "stats":
                reply = {"id": mid, "ok": True, **worker.stats()}
            elif op == "recovery":
                reply = {
                    "id": mid, "ok": True, "recovery": worker.recovery
                }
            elif op == "reset":
                worker.reset(message["tenant"])
                reply = {"id": mid, "ok": True}
            elif op == "stall":
                # Test/ops aid: a slow-but-alive worker (heartbeats
                # must not false-positive kill it).
                time.sleep(float(message.get("seconds", 0.0)))
                reply = {"id": mid, "ok": True}
            elif op == "shutdown":
                worker.shutdown()
                reply = {"id": mid, "ok": True}
                running = False
            else:
                reply = {"id": mid, "ok": False,
                         "error": f"unknown op {op!r}"}
        except SimulatedCrash:
            os._exit(CRASH_EXIT_CODE)
        except Exception as error:  # app-level: worker survives
            reply = {
                "id": mid, "ok": False,
                "error": f"{type(error).__name__}: {error}",
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    os._exit(0)


# ---------------------------------------------------------------------------
# Supervisor side (runs in the parent process)
# ---------------------------------------------------------------------------


class _ShardHandle:
    """The parent's view of one shard worker."""

    __slots__ = (
        "index", "process", "conn", "lock", "generation", "next_id",
        "misses", "restarts", "restarting", "recovery",
        "last_restart_seconds",
    )

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        #: Serializes RPC per shard *and* doubles as the liveness
        #: signal the heartbeat reads: held == a request is in flight,
        #: so the worker is busy, not dead.
        self.lock = threading.Lock()
        self.generation = 0
        self.next_id = 0
        self.misses = 0
        self.restarts = 0
        self.restarting = False
        self.recovery: list[dict] = []
        self.last_restart_seconds = 0.0


class ShardSupervisor:
    """Spawns, heartbeats, restarts and fronts N shard workers.

    The heartbeat loop is virtual-clock compatible: :meth:`tick` is a
    plain method tests drive deterministically (stamping events on the
    shared :class:`VirtualClock`), and ``heartbeat=True`` additionally
    runs it from a small wall-clock thread for live serving.  A shard
    whose RPC lock is busy is *alive by definition* (a request is in
    flight) — slow-but-alive workers are never false-positive killed;
    only a free-lock ping timeout counts as a miss, and only
    ``max_misses`` consecutive misses trigger a restart.

    ``kill_schedules`` maps shard index -> an ordered queue of
    kill-switch schedules; each (re)spawn of that shard arms the next
    entry, and an exhausted queue arms nothing — so a restart storm
    (the same shard killed k times in a row) converges to a clean
    worker.
    """

    def __init__(
        self,
        module,
        notfound_codes: dict | None = None,
        shards: int = 4,
        data_dir: "str | Path | None" = None,
        clock: VirtualClock | None = None,
        telemetry=None,
        seed: int = 1,
        snapshot_interval: int = 16,
        fsync: bool = False,
        kill_schedules: dict | None = None,
        retry_after: float = 0.25,
        rpc_timeout: float = 30.0,
        spawn_timeout: float = 60.0,
        heartbeat: bool = False,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: float = 1.0,
        max_misses: int = 3,
        auto_restart: bool = True,
    ):
        self.module_text = serialize_module(module)
        self.service = getattr(module, "service", "") or ""
        self.provider = getattr(module, "provider", "aws") or "aws"
        self.notfound_codes = dict(notfound_codes or {})
        self.clock = clock if clock is not None else VirtualClock()
        self.telemetry = telemetry
        self.seed = seed
        self.snapshot_interval = snapshot_interval
        self.fsync = fsync
        self.retry_after = retry_after
        self.rpc_timeout = rpc_timeout
        self.spawn_timeout = spawn_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_misses = max_misses
        self.auto_restart = auto_restart
        self._ctx = multiprocessing.get_context("spawn")
        if data_dir is None:
            data_dir = tempfile.mkdtemp(prefix="repro-shards-")
        self.data_dir = Path(data_dir)
        self._schedules: dict[int, list[dict]] = {
            int(index): list(queue)
            for index, queue in (kill_schedules or {}).items()
        }
        self._closed = False
        self._restart_threads: list[threading.Thread] = []
        self.restart_log: list[dict] = []
        #: Callables ``(shard_index, alive)`` notified on health flips
        #: — the holistic allocator subscribes here so a dead shard's
        #: budget is redistributed to survivors the moment the parent
        #: detects the death (and restored when the shard returns).
        self.health_listeners: list = []
        #: Recovery self-checks that failed byte-identity, across every
        #: generation of every shard (folded into linearizability).
        self.recovery_failures: list[str] = []
        self._handles = []
        for index in range(max(1, shards)):
            handle = _ShardHandle(index)
            process, conn, hello = self._launch(index, generation=0)
            handle.process = process
            handle.conn = conn
            self._adopt_hello(handle, hello)
            self._handles.append(handle)
        self._hb_stop: threading.Event | None = None
        self._hb_thread: threading.Thread | None = None
        if heartbeat:
            self.start_heartbeat()

    # -- spawning ----------------------------------------------------------

    @property
    def shards(self) -> int:
        return len(self._handles)

    def shard_for(self, tenant: str) -> int:
        return shard_for(tenant, self.shards)

    def _next_schedule(self, index: int) -> dict | None:
        queue = self._schedules.get(index)
        if queue:
            return queue.pop(0)
        return None

    def _launch(self, index: int, generation: int):
        config = ShardConfig(
            index=index,
            module_text=self.module_text,
            service=self.service,
            provider=self.provider,
            notfound_codes=self.notfound_codes,
            data_dir=str(self.data_dir / f"shard-{index}"),
            seed=self.seed + index,
            snapshot_interval=self.snapshot_interval,
            fsync=self.fsync,
            kill_schedule=self._next_schedule(index),
        )
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(config, child_conn),
            name=f"repro-shard-{index}-g{generation}", daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + self.spawn_timeout
        while not parent_conn.poll(0.05):
            if time.monotonic() > deadline or not process.is_alive():
                process.terminate()
                raise RuntimeError(
                    f"shard {index} failed to start "
                    f"(generation {generation})"
                )
        hello = parent_conn.recv()
        if not hello.get("ok", False):
            process.join(timeout=5)
            raise RuntimeError(
                f"shard {index} failed during recovery: "
                f"{hello.get('error', 'unknown error')}"
            )
        return process, parent_conn, hello

    def _adopt_hello(self, handle: _ShardHandle, hello: dict) -> None:
        handle.recovery = list(hello.get("recovery", []))
        for report in handle.recovery:
            if not report.get("identical", True):
                detail = "; ".join(report.get("diff", [])[:3])
                self.recovery_failures.append(
                    f"shard {handle.index} generation "
                    f"{handle.generation} tenant {report['tenant']}: "
                    f"recovered registry diverges from full replay"
                    + (f" ({detail})" if detail else "")
                )

    # -- RPC ---------------------------------------------------------------

    def request(self, index: int, payload: dict,
                timeout: float | None = None) -> dict | None:
        """One correlation-id RPC to a shard; ``None`` == unavailable.

        Fails fast when the worker process is dead (a final drain poll
        catches a reply that was already in the pipe) and discards
        stale replies left over from a previously timed-out request.
        """
        handle = self._handles[index]
        timeout = self.rpc_timeout if timeout is None else timeout
        with handle.lock:
            if not handle.process.is_alive():
                self._note_down(handle)
                return None
            handle.next_id += 1
            mid = handle.next_id
            try:
                handle.conn.send({**payload, "id": mid})
            except (BrokenPipeError, OSError):
                self._note_down(handle)
                return None
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None  # stuck worker: heartbeats decide
                try:
                    ready = handle.conn.poll(min(0.05, remaining))
                except (BrokenPipeError, OSError):
                    self._note_down(handle)
                    return None
                if ready:
                    try:
                        reply = handle.conn.recv()
                    except (EOFError, OSError):
                        self._note_down(handle)
                        return None
                    if reply.get("id") == mid:
                        return reply
                    continue  # stale reply: drop, keep waiting
                if not handle.process.is_alive():
                    # One last drain: the reply may have raced death.
                    if handle.conn.poll(0):
                        continue
                    self._note_down(handle)
                    return None

    def _note_down(self, handle: _ShardHandle) -> None:
        """Record a dead shard; kick an async restart (caller holds
        the handle lock, so the restart thread proceeds only after the
        failed request returns)."""
        if self.telemetry is not None:
            self.telemetry.event(
                "shard.down", shard=handle.index,
                generation=handle.generation,
                at=round(self.clock.now(), 9),
            )
        self._notify_health(handle.index, alive=False)
        if self._closed or not self.auto_restart or handle.restarting:
            return
        handle.restarting = True
        thread = threading.Thread(
            target=self._restart, args=(handle, handle.generation),
            name=f"repro-shard-restart-{handle.index}", daemon=True,
        )
        self._restart_threads.append(thread)
        thread.start()

    # -- restart -----------------------------------------------------------

    def _restart(self, handle: _ShardHandle,
                 expected_generation: int) -> bool:
        """Replace a dead (or stuck) worker with a freshly recovered one.

        Generation-checked so racing detectors (request threads, the
        heartbeat loop) restart a shard exactly once.
        """
        try:
            with handle.lock:
                if self._closed:
                    return False
                if handle.generation != expected_generation:
                    return False  # someone else already restarted it
                started = time.perf_counter()
                if handle.process.is_alive():
                    handle.process.terminate()
                handle.process.join(timeout=10)
                try:
                    handle.conn.close()
                except OSError:
                    pass
                generation = handle.generation + 1
                process, conn, hello = self._launch(
                    handle.index, generation
                )
                handle.process = process
                handle.conn = conn
                handle.generation = generation
                handle.misses = 0
                handle.restarts += 1
                self._adopt_hello(handle, hello)
                seconds = time.perf_counter() - started
                handle.last_restart_seconds = seconds
                replayed = sum(
                    report.get("replayed", 0)
                    for report in handle.recovery
                )
        finally:
            handle.restarting = False
        self.restart_log.append({
            "shard": handle.index,
            "generation": handle.generation,
            "recovery_seconds": round(seconds, 6),
            "replayed": replayed,
            "at": round(self.clock.now(), 9),
        })
        self._export_restart(handle, seconds, replayed)
        self._notify_health(handle.index, alive=True)
        return True

    def _notify_health(self, index: int, alive: bool) -> None:
        for listener in list(self.health_listeners):
            try:
                listener(index, alive)
            except Exception:
                pass  # a broken listener must never sink the parent

    def _export_restart(self, handle: _ShardHandle, seconds: float,
                        replayed: int) -> None:
        telemetry = self.telemetry
        if telemetry is None:
            return
        now = self.clock.now()
        shard = str(handle.index)
        telemetry.metrics.counter("shard.restarts", shard=shard).inc()
        telemetry.event(
            "shard.restart", shard=handle.index,
            generation=handle.generation,
            recovery_seconds=round(seconds, 6), replayed=replayed,
            at=round(now, 9),
        )
        with telemetry.span(
            "shard.restart", kind="shard", shard=shard
        ) as span:
            span.set("generation", handle.generation)
            span.set("recovery_seconds", round(seconds, 6))
            span.set("replayed", replayed)
        obs = getattr(telemetry, "obs", None)
        if obs is not None:
            obs.store.histogram(
                "shard.restart_seconds", shard=shard
            ).record(now, seconds)

    def kill(self, index: int) -> None:
        """Hard-kill one worker (SIGKILL) — the bench/test fault lever.

        Deliberately does *not* restart: detection and repair are the
        supervisor loop's job, which is what's under test.
        """
        handle = self._handles[index]
        process = handle.process
        if process.is_alive():
            process.kill()
        process.join(timeout=10)

    def restart(self, index: int) -> bool:
        """Explicitly restart one shard (even a healthy one)."""
        handle = self._handles[index]
        return self._restart(handle, handle.generation)

    # -- heartbeat ---------------------------------------------------------

    def tick(self) -> dict:
        """One heartbeat pass over every shard; returns what it saw.

        Deterministically drivable from tests (no background thread
        required); all event timestamps come from the shared clock, so
        virtual-clock runs stay reproducible.
        """
        seen = {"alive": 0, "busy": 0, "missed": 0, "restarted": 0}
        for handle in self._handles:
            if not handle.process.is_alive():
                if self.auto_restart and not handle.restarting:
                    if self._restart(handle, handle.generation):
                        seen["restarted"] += 1
                continue
            if not handle.lock.acquire(blocking=False):
                # A request is in flight: the worker is busy, therefore
                # alive.  Never count a miss against a working shard.
                handle.misses = 0
                seen["busy"] += 1
                continue
            try:
                ok = self._ping_locked(handle)
            finally:
                handle.lock.release()
            if ok:
                handle.misses = 0
                seen["alive"] += 1
                continue
            handle.misses += 1
            seen["missed"] += 1
            self._export_miss(handle)
            if handle.misses >= self.max_misses:
                # Stuck-but-running worker: treat as dead.
                handle.process.terminate()
                if self.auto_restart:
                    if self._restart(handle, handle.generation):
                        seen["restarted"] += 1
        return seen

    def _ping_locked(self, handle: _ShardHandle) -> bool:
        handle.next_id += 1
        mid = handle.next_id
        try:
            handle.conn.send({"op": "ping", "id": mid})
        except (BrokenPipeError, OSError):
            return False
        deadline = time.monotonic() + self.heartbeat_timeout
        while time.monotonic() < deadline:
            try:
                if not handle.conn.poll(0.02):
                    if not handle.process.is_alive():
                        return False
                    continue
                reply = handle.conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                return False
            if reply.get("id") == mid:
                return True
        return False

    def _export_miss(self, handle: _ShardHandle) -> None:
        telemetry = self.telemetry
        if telemetry is None:
            return
        now = self.clock.now()
        shard = str(handle.index)
        telemetry.metrics.counter(
            "shard.heartbeat_misses", shard=shard
        ).inc()
        telemetry.event(
            "shard.heartbeat_miss", shard=handle.index,
            misses=handle.misses, at=round(now, 9),
        )
        obs = getattr(telemetry, "obs", None)
        if obs is not None:
            obs.store.histogram(
                "shard.heartbeat_miss", shard=shard
            ).record(now, float(handle.misses))

    def start_heartbeat(self) -> None:
        """Run :meth:`tick` from a small wall-clock thread."""
        if self._hb_thread is not None:
            return
        self._hb_stop = threading.Event()

        def _loop():
            while not self._hb_stop.wait(self.heartbeat_interval):
                try:
                    self.tick()
                except Exception:
                    if self._closed:
                        return

        self._hb_thread = threading.Thread(
            target=_loop, name="repro-shard-heartbeat", daemon=True
        )
        self._hb_thread.start()

    # -- merged views ------------------------------------------------------

    def admitted_records(self) -> list[dict]:
        """Every shard's attempt log, merged (ordered by shard, seq).

        Per-tenant order is total — a tenant lives on exactly one
        shard — which is what the linearizability replay needs.
        Unreachable shards contribute nothing (their verifier check
        fails separately on the snapshot fetch).
        """
        merged: list[dict] = []
        for handle in self._handles:
            reply = self.request(handle.index, {"op": "admitted"})
            if reply is not None and reply.get("ok"):
                merged.extend(reply["records"])
        return merged

    def shard_stats(self) -> list[dict]:
        stats = []
        for handle in self._handles:
            reply = self.request(handle.index, {"op": "stats"})
            if reply is not None and reply.get("ok"):
                stats.append(reply)
        return stats

    def snapshot(self, index: int, tenant: str) -> dict | None:
        reply = self.request(
            index, {"op": "snapshot", "tenant": tenant}
        )
        if reply is None or not reply.get("ok"):
            return None
        return reply["snapshot"]

    def recovery_reports(self) -> dict[int, list[dict]]:
        """Current-generation recovery self-checks, per shard."""
        return {
            handle.index: list(handle.recovery)
            for handle in self._handles
        }

    @property
    def restarts(self) -> int:
        return sum(handle.restarts for handle in self._handles)

    def generation(self, index: int) -> int:
        return self._handles[index].generation

    def alive(self, index: int) -> bool:
        return self._handles[index].process.is_alive()

    def merge_metrics(self) -> None:
        """Fold worker-side counters into the parent's metric registry
        as shard-labelled series (``repro report`` / ``repro top``)."""
        telemetry = self.telemetry
        if telemetry is None:
            return
        for stats in self.shard_stats():
            shard = str(stats["shard"])
            telemetry.metrics.gauge(
                "shard.requests", shard=shard
            ).set(stats["requests"])
            telemetry.metrics.gauge(
                "shard.admitted", shard=shard
            ).set(stats["admitted"])
            publishes = sum(
                vs.get("publishes", 0)
                for vs in stats["version_stats"]
            )
            telemetry.metrics.gauge(
                "serve.version_publishes", shard=shard
            ).set(publishes)

    # -- shutdown ----------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: stop restarts, drain in-flight requests
        (the per-shard lock serializes behind them), flush final
        snapshots, and reap every worker."""
        self._closed = True
        if self._hb_stop is not None:
            self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5)
            self._hb_thread = None
        for thread in self._restart_threads:
            thread.join(timeout=10)
        for handle in self._handles:
            with handle.lock:  # waits for the in-flight request
                if handle.process.is_alive():
                    handle.next_id += 1
                    mid = handle.next_id
                    try:
                        handle.conn.send({"op": "shutdown", "id": mid})
                        deadline = time.monotonic() + self.rpc_timeout
                        while time.monotonic() < deadline:
                            if handle.conn.poll(0.05):
                                reply = handle.conn.recv()
                                if reply.get("id") == mid:
                                    break
                            elif not handle.process.is_alive():
                                break
                    except (BrokenPipeError, EOFError, OSError):
                        pass
                try:
                    handle.conn.close()
                except OSError:
                    pass
            handle.process.join(timeout=10)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5)

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Front-door integration
# ---------------------------------------------------------------------------


class _ShardBackend:
    """One tenant's RPC stub to its owning shard worker.

    Looks like a :class:`ConcurrentEmulator` to the serving stack
    (classification, reset, snapshot) but dispatches over the
    supervisor's pipe RPC.  When the shard is down, every call sheds
    with ``ServiceUnavailable`` + a Retry-After hint and a
    ``ShardUnavailable`` marker, which rides inside the error envelope
    the way admission throttle metadata does — clients back off for
    the failover window, then succeed against the restarted worker.
    """

    def __init__(self, supervisor: ShardSupervisor, tenant: str, probe):
        self.supervisor = supervisor
        self.tenant = tenant
        self.shard = supervisor.shard_for(tenant)
        self._probe = probe  # local emulator, classification only
        self.mvcc = False    # versions live worker-side
        self.log = None

    # -- classification (local, no RPC) ------------------------------------

    def api_names(self) -> list[str]:
        return self._probe.api_names()

    def supports(self, api: str) -> bool:
        return self._probe.supports(api)

    def read_only(self, api: str) -> bool:
        return self._probe.read_only(api)

    # -- remote dispatch ----------------------------------------------------

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        payload = {
            "op": "invoke", "tenant": self.tenant, "api": api,
            "params": dict(params or {}),
        }
        meta = current_meta()
        if meta is not None and meta.deadline is not None:
            # The deadline crosses the RPC hop as *remaining budget* —
            # the worker has no shared clock, only what the parent
            # measures at send time.
            remaining = meta.remaining(self.supervisor.clock.now())
            if remaining is not None and remaining <= 0:
                telemetry = self.supervisor.telemetry
                if telemetry is not None:
                    telemetry.metrics.counter(
                        "allocation.deadline_expired",
                        tenant=self.tenant, stage="shard",
                    ).inc()
                return expired_response("shard")
            payload["deadline_remaining"] = remaining
        reply = self.supervisor.request(self.shard, payload)
        if reply is None:
            return self._unavailable()
        if not reply.get("ok"):
            return ApiResponse.fail(
                "InternalError", reply.get("error", "shard worker error")
            )
        return ApiResponse(
            success=reply["success"],
            data=decode_value(reply["data"]),
            error_code=reply.get("error_code", ""),
            error_message=reply.get("error_message", ""),
        )

    def _unavailable(self) -> ApiResponse:
        retry_after = self.supervisor.retry_after
        return ApiResponse(
            success=False,
            data={
                "RetryAfterSeconds": retry_after,
                "ShardUnavailable": True,
                "Shard": self.shard,
            },
            error_code="ServiceUnavailable",
            error_message=(
                f"shard {self.shard} is restarting; "
                f"retry in {retry_after}s"
            ),
        )

    def reset(self) -> None:
        self.supervisor.request(
            self.shard, {"op": "reset", "tenant": self.tenant}
        )

    def snapshot(self) -> dict:
        snapshot = self.supervisor.snapshot(self.shard, self.tenant)
        if snapshot is None:
            raise RuntimeError(
                f"shard {self.shard} unavailable for snapshot of "
                f"tenant {self.tenant!r}"
            )
        return snapshot


class ShardTenantRouter(TenantRouter):
    """A :class:`TenantRouter` whose tenants dispatch to shard workers.

    Keeps the resolution/auth/guard surface of the base router; only
    ``_make_tenant`` changes — the backend is an RPC stub placed by
    the stable tenant -> shard hash instead of an in-process
    :class:`ConcurrentEmulator`.
    """

    def __init__(self, supervisor: ShardSupervisor, probe, **kwargs):
        super().__init__(emulator_factory=None, **kwargs)
        self.supervisor = supervisor
        self.probe = probe

    def _make_tenant(self, name: str) -> Tenant:
        backend = _ShardBackend(self.supervisor, name, self.probe)
        guarded = (
            backend if self.guard is None else self.guard(name, backend)
        )
        endpoint = JsonEndpoint(
            backend=guarded,
            seed=self.seed + len(self._tenants),
            telemetry=self.telemetry,
        )
        return Tenant(
            name=name, emulator=backend, backend=guarded,
            endpoint=endpoint,
        )


class ShardedFrontDoor(FrontDoor):
    """The front door, fanned out over shard worker processes.

    The envelope/auth/validation/admission layers are unchanged; the
    per-tenant backend routes to the owning shard over RPC.  Supplies
    its own :meth:`verify_linearizable` (merged per-shard attempt logs,
    replayed serially, compared byte-for-byte against RPC-fetched
    shard snapshots — with recovery self-check failures folded in) and
    :meth:`mvcc_stats` (worker version accounting, merged);
    :class:`~repro.serve.loadgen.LoadGenerator` picks both up
    automatically.
    """

    def __init__(
        self,
        module,
        emulator_factory,
        shards: int = 4,
        data_dir: "str | Path | None" = None,
        kill_schedules: dict | None = None,
        notfound_codes: dict | None = None,
        snapshot_interval: int = 16,
        fsync: bool = False,
        retry_after: float = 0.25,
        rpc_timeout: float = 30.0,
        heartbeat: bool = False,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: float = 1.0,
        max_misses: int = 3,
        auto_restart: bool = True,
        **kwargs,
    ):
        if kwargs.get("network") is not None:
            raise ConfigError(
                "ShardedFrontDoor does not compose with netem region "
                "routing (network=) yet: shard placement (tenant -> "
                "worker process) and region placement (resource -> "
                "region replica) are separate maps with no "
                "cross-product routing — a request would need a "
                "(shard, region) pair the RPC layer cannot address.  "
                "Track ROADMAP item 1 (shard x region placement); "
                "until then run the network on a single-process "
                "FrontDoor."
            )
        super().__init__(module, emulator_factory, **kwargs)
        probe = emulator_factory()
        if notfound_codes is None:
            notfound_codes = dict(getattr(probe, "notfound_codes", {}))
        base = self.router
        self.supervisor = ShardSupervisor(
            module,
            notfound_codes=notfound_codes,
            shards=shards,
            data_dir=data_dir,
            clock=self.clock,
            telemetry=self.telemetry,
            seed=base.seed,
            snapshot_interval=snapshot_interval,
            fsync=fsync,
            kill_schedules=kill_schedules,
            retry_after=retry_after,
            rpc_timeout=rpc_timeout,
            heartbeat=heartbeat,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            max_misses=max_misses,
            auto_restart=auto_restart,
        )
        self.router = ShardTenantRouter(
            supervisor=self.supervisor,
            probe=probe,
            max_tenants=base.max_tenants,
            require_key=base.require_key,
            guard=lambda name, backend: _GuardedBackend(
                self, name, backend
            ),
            telemetry=self.telemetry,
            seed=base.seed,
        )
        if self.allocator is not None:
            # Shard-health-aware fairness: the allocator learns the
            # placement map and follows every health flip, so a dead
            # shard's budget flows to tenants on surviving shards.
            self.allocator.bind_shards(
                self.supervisor.shard_for, self.supervisor.shards
            )
            self.supervisor.health_listeners.append(
                self.allocator.set_shard_health
            )

    # -- merged wire surface -----------------------------------------------

    @property
    def admitted(self) -> "_MergedAdmitted":
        return _MergedAdmitted(self.supervisor)

    def verify_linearizable(self) -> tuple[bool, list[str]]:
        """The extended check: merged per-shard attempt logs, replayed
        serially per tenant, must reproduce each shard's live registry
        byte-for-byte — and every worker recovery (every generation)
        must have passed its byte-identity self-check."""
        mismatches = list(self.supervisor.recovery_failures)
        records = self.supervisor.admitted_records()
        by_tenant: dict[str, list[dict]] = {}
        for record in records:
            by_tenant.setdefault(record["tenant"], []).append(record)
        for tenant in sorted(by_tenant):
            replica = self.emulator_factory()
            for record in sorted(
                by_tenant[tenant], key=lambda r: r["seq"]
            ):
                if record["type"] == "reset":
                    replica.reset()
                else:
                    replica.invoke(record["api"], record["params"])
            shard = self.supervisor.shard_for(tenant)
            live = self.supervisor.snapshot(shard, tenant)
            if live is None:
                mismatches.append(
                    f"tenant {tenant}: shard {shard} unavailable for "
                    "the linearizability snapshot"
                )
                continue
            if _canonical(replica.snapshot()) != _canonical(live):
                mismatches.append(
                    f"tenant {tenant}: serial replay of the merged "
                    f"shard-{shard} attempt log diverges from the "
                    "worker's live registry"
                )
        self.supervisor.merge_metrics()
        return (not mismatches), mismatches

    def mvcc_stats(self) -> dict:
        """Worker-side version accounting, merged across shards.

        Counts cover the *current* generation of each worker (a
        restarted shard's chain starts fresh — its durable state is
        what recovery proves, not its version counters).
        """
        merged = {
            "tenants": 0,
            "mvcc_tenants": 0,
            "publishes": 0,
            "reclaimed": 0,
            "versions_live": 0,
            "pinned_reads": 0,
            "read_lock_acquisitions": 0,
            "write_lock_acquisitions": 0,
            "shards": self.supervisor.shards,
            "restarts": self.supervisor.restarts,
        }
        for stats in self.supervisor.shard_stats():
            for per_tenant in stats["version_stats"]:
                merged["tenants"] += 1
                if per_tenant.get("mvcc"):
                    merged["mvcc_tenants"] += 1
                    for key in ("publishes", "reclaimed",
                                "versions_live", "pinned_reads"):
                        merged[key] += per_tenant.get(key, 0)
                for key in ("read_lock_acquisitions",
                            "write_lock_acquisitions"):
                    merged[key] += per_tenant.get(key, 0)
        return merged

    def close(self) -> None:
        self.supervisor.close()

    def __enter__(self) -> "ShardedFrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _MergedAdmitted:
    """A read-only merged view over every shard's attempt log, shaped
    like :class:`~repro.serve.concurrency.AdmittedLog` where the CLI
    and load generator need it (length, records, JSONL dump)."""

    def __init__(self, supervisor: ShardSupervisor):
        self.supervisor = supervisor

    @property
    def records(self) -> list[dict]:
        return self.supervisor.admitted_records()

    def per_tenant(self, tenant: str) -> list[dict]:
        return [r for r in self.records if r["tenant"] == tenant]

    def __len__(self) -> int:
        return len(self.records)

    def dump_jsonl(self, path: "str | Path") -> Path:
        target = Path(path)
        with open(target, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return target


# ---------------------------------------------------------------------------
# Kill-schedule parsing (CLI / CI)
# ---------------------------------------------------------------------------


def parse_kill_schedule(text: str) -> dict[int, list[dict]]:
    """Parse ``shard:site:hit[,shard:site:hit...]`` into per-shard
    schedule queues.

    Repeated entries for the same shard queue up in order: each
    (re)spawn of that shard arms the next one, so
    ``"0:mid-publish:3,0:mid-serve-wal-append:2"`` kills shard 0's
    first generation at its 3rd publish and its second generation at
    its 2nd WAL append — and the third generation runs clean.
    """
    schedules: dict[int, list[dict]] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"bad kill-schedule entry {chunk!r}; "
                "expected shard:site:hit"
            )
        shard_text, site, hit_text = parts
        try:
            shard = int(shard_text)
            hit = int(hit_text)
        except ValueError:
            raise ValueError(
                f"bad kill-schedule entry {chunk!r}; shard and hit "
                "must be integers"
            ) from None
        if site not in KILL_SITES:
            raise ValueError(
                f"unknown kill site {site!r}; "
                f"expected one of {list(KILL_SITES)}"
            )
        if shard < 0 or hit < 1:
            raise ValueError(
                f"bad kill-schedule entry {chunk!r}; shard must be "
                ">= 0 and hit >= 1"
            )
        schedules.setdefault(shard, []).append({site: hit})
    return schedules
