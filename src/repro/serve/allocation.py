"""Holistic fair allocation across tenants and shards (HARE-style).

The admission layer's original design gave every tenant an independent
token bucket: simple, but an aggressor can monopolize the shared
queue/compute slots, idle tenants' budget evaporates instead of
serving anyone, and a dead shard's budget dies with it.  This module
replaces that with one *holistic* allocator in the spirit of
HopperKV's HARE: a single resource pool — request-rate tokens,
compute slots and queue depth — jointly divided across all tenants
(and, under :class:`~repro.serve.shard.ShardedFrontDoor`, across
shards) by **weighted max-min fairness with work conservation**:

- every live tenant is *guaranteed* at least
  ``min(demand, weight-proportional fair share)`` of the pool — the
  isolation bound an aggressor can never push a victim below;
- budget a tenant does not demand is redistributed to tenants that
  do (water-filling), so total throughput is never worse than the
  independent-bucket baseline;
- reallocation is periodic on the virtual clock, driven by the
  *observed* per-tenant demand (an EWMA of arrival rate), so the
  split tracks the workload instead of a static config;
- shard health folds in: tenants homed on a dead shard are pinned to
  a floor rate (their requests can only shed at the RPC layer
  anyway) and the freed budget flows to survivors for the duration
  of the failover — a dying neighbor *raises* everyone else's
  budget instead of wasting it.

Each tenant also gets a capped **retry side-budget** (a small token
bucket refilled as a fraction of its granted rate).  Retries draw
from it before normal admission; an exhausted budget converts the
retry into an immediate ``ServiceUnavailable`` with an honest
``Retry-After`` — a retry storm is bounded by construction instead of
amplifying the overload that caused it.

Everything here is deterministic on the shared
:class:`~repro.resilience.policy.VirtualClock`; the noisy-neighbor
bench (``benchmarks/bench_fairness.py``) asserts the fairness and
work-conservation claims as numbers, not prose.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..resilience.policy import VirtualClock
from ..resilience.ratelimit import TokenBucket


@dataclass
class AllocationConfig:
    """The shared pool and the fairness knobs.

    ``total_rate`` / ``total_burst`` are the pool's request tokens per
    virtual second and its burst allowance; ``total_slots`` and
    ``total_queue`` bound in-service and queued requests.  ``weights``
    maps tenant name -> weight (missing tenants get
    ``default_weight``); grants are max-min fair in proportion to
    weight.  ``demand_headroom`` lets a satisfied tenant keep a margin
    above its observed demand before donating the rest.  ``min_rate``
    is the floor every tenant keeps so it can re-establish demand
    after an idle or throttled spell.
    """

    total_rate: float = 200.0
    total_burst: float = 80.0
    total_slots: int = 16
    total_queue: int = 64
    weights: dict = field(default_factory=dict)
    default_weight: float = 1.0
    realloc_interval: float = 1.0
    demand_alpha: float = 0.5
    demand_headroom: float = 1.25
    retry_rate_fraction: float = 0.1
    retry_burst: float = 5.0
    min_rate: float = 0.5


class TenantAllocation:
    """One tenant's live grant: buckets, budgets and bookkeeping."""

    __slots__ = (
        "name", "weight", "bucket", "retry_bucket",
        "granted_rate", "granted_burst", "fair_share",
        "granted_slots", "granted_queue",
        "demand", "arrivals", "in_flight",
        "admitted", "retry_exhausted", "deadline_sheds",
    )

    def __init__(self, name: str, weight: float, bucket: TokenBucket,
                 retry_bucket: TokenBucket):
        self.name = name
        self.weight = weight
        self.bucket = bucket
        self.retry_bucket = retry_bucket
        self.granted_rate = bucket.rate
        self.granted_burst = bucket.burst
        self.fair_share = bucket.rate
        self.granted_slots = 1
        self.granted_queue = 1
        #: EWMA of observed arrival rate (requests / virtual second).
        self.demand = 0.0
        #: Arrivals since the last reallocation window closed.
        self.arrivals = 0
        self.in_flight = 0
        self.admitted = 0
        self.retry_exhausted = 0
        self.deadline_sheds = 0

    def as_dict(self) -> dict:
        return {
            "weight": self.weight,
            "demand": round(self.demand, 3),
            "fair_share": round(self.fair_share, 3),
            "granted_rate": round(self.granted_rate, 3),
            "granted_slots": self.granted_slots,
            "granted_queue": self.granted_queue,
            "admitted": self.admitted,
            "retry_exhausted": self.retry_exhausted,
            "deadline_sheds": self.deadline_sheds,
        }


class HolisticAllocator:
    """Weighted max-min, work-conserving budget split on the clock.

    The admission controller calls :meth:`observe` once per offered
    request (demand accounting + the periodic reallocation check) and
    uses the returned :class:`TenantAllocation`'s buckets and slot
    budgets as its shed thresholds.  A sharded front door binds the
    tenant -> shard map with :meth:`bind_shards` and feeds worker
    liveness through :meth:`set_shard_health`; grants re-balance at
    the next reallocation boundary (or immediately on a health flip).
    """

    def __init__(self, clock: VirtualClock | None = None,
                 config: AllocationConfig | None = None,
                 telemetry=None):
        self.clock = clock or VirtualClock()
        self.config = config or AllocationConfig()
        self.telemetry = telemetry
        self._tenants: dict[str, TenantAllocation] = {}
        self._lock = threading.RLock()
        self._last_realloc = self.clock.now()
        self.reallocations = 0
        #: tenant -> shard placement (bound by the sharded front door).
        self._shard_of = None
        self._shard_alive: dict[int, bool] = {}
        #: Bounded reallocation history — the allocation trace CI
        #: uploads when a fairness gate fails.
        self.history: list[dict] = []

    # -- shard binding -------------------------------------------------------

    def bind_shards(self, shard_of, shards: int) -> None:
        """Attach the tenant -> shard map; all shards start alive."""
        with self._lock:
            self._shard_of = shard_of
            self._shard_alive = {
                index: True for index in range(max(1, shards))
            }

    def set_shard_health(self, index: int, alive: bool) -> None:
        """A shard died or recovered: re-split the pool *now*."""
        with self._lock:
            if self._shard_alive.get(index) == alive:
                return
            self._shard_alive[index] = alive
            if self.telemetry is not None:
                self.telemetry.event(
                    "allocation.shard_health", shard=index, alive=alive,
                    at=round(self.clock.now(), 9),
                )
            self._realloc_locked(self.clock.now())

    def shard_alive(self, tenant: str) -> bool:
        if self._shard_of is None:
            return True
        return self._shard_alive.get(self._shard_of(tenant), True)

    # -- tenant lifecycle ----------------------------------------------------

    def tenant(self, name: str) -> TenantAllocation:
        """Get or create one tenant's allocation (creation re-splits)."""
        alloc = self._tenants.get(name)
        if alloc is not None:
            return alloc
        with self._lock:
            alloc = self._tenants.get(name)
            if alloc is None:
                config = self.config
                weight = float(config.weights.get(
                    name, config.default_weight
                ))
                bucket = TokenBucket(
                    rate=max(config.min_rate, config.total_rate),
                    burst=config.total_burst, clock=self.clock,
                )
                retry_bucket = TokenBucket(
                    rate=max(
                        0.1,
                        config.retry_rate_fraction * config.total_rate,
                    ),
                    burst=config.retry_burst, clock=self.clock,
                )
                alloc = TenantAllocation(name, weight, bucket,
                                         retry_bucket)
                self._tenants[name] = alloc
                # Optimistic first grant: a brand-new tenant starts at
                # its weighted fair share (demand EWMA takes over at
                # the next boundary) so cold starts are not throttled.
                alloc.demand = self._fair_share_locked(alloc)
                self._realloc_locked(self.clock.now())
        return alloc

    def observe(self, name: str) -> TenantAllocation:
        """Count one offered request; reallocate when the window ends."""
        alloc = self.tenant(name)
        with self._lock:
            alloc.arrivals += 1
            now = self.clock.now()
            if now - self._last_realloc >= self.config.realloc_interval:
                self._realloc_locked(now)
        return alloc

    # -- per-request budget enforcement --------------------------------------

    def enter(self, alloc: TenantAllocation) -> bool:
        """Claim one of the tenant's slot/queue budget; False == full."""
        with self._lock:
            budget = alloc.granted_slots + alloc.granted_queue
            if alloc.in_flight >= budget:
                return False
            alloc.in_flight += 1
            return True

    def leave(self, alloc: TenantAllocation) -> None:
        with self._lock:
            alloc.in_flight = max(0, alloc.in_flight - 1)

    def note_admitted(self, alloc: TenantAllocation) -> None:
        alloc.admitted += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "allocation.used", tenant=alloc.name
            ).inc()

    # -- the split -----------------------------------------------------------

    def _fair_share_locked(self, alloc: TenantAllocation) -> float:
        live_weight = sum(
            other.weight for other in self._tenants.values()
            if self.shard_alive(other.name)
        ) or alloc.weight
        if not self.shard_alive(alloc.name):
            return self.config.min_rate
        return self.config.total_rate * alloc.weight / live_weight

    def maybe_realloc(self, force: bool = False) -> None:
        with self._lock:
            now = self.clock.now()
            if force or (
                now - self._last_realloc >= self.config.realloc_interval
            ):
                self._realloc_locked(now)

    def _realloc_locked(self, now: float) -> None:
        """Demand-driven weighted max-min water-fill over the pool."""
        config = self.config
        elapsed = now - self._last_realloc
        tenants = list(self._tenants.values())
        if not tenants:
            return
        # 1. Fold the window's arrivals into each tenant's demand EWMA
        #    — but only over a window wide enough to estimate a rate.
        #    A re-split triggered an instant after the last one (tenant
        #    creation, shard health flip) would divide arrivals by a
        #    near-zero elapsed and blow the EWMA up by orders of
        #    magnitude, so those re-splits reuse the standing demand
        #    and leave the window accruing.
        if elapsed >= 1e-3:
            self._last_realloc = now
            alpha = config.demand_alpha
            for alloc in tenants:
                observed = alloc.arrivals / elapsed
                alloc.demand = (
                    alpha * observed + (1 - alpha) * alloc.demand
                )
                alloc.arrivals = 0

        live = [a for a in tenants if self.shard_alive(a.name)]
        dead = [a for a in tenants if not self.shard_alive(a.name)]
        # 2. Dead-shard tenants keep only the floor: their requests
        #    can do nothing but shed at the RPC layer, so their budget
        #    flows to survivors until the worker recovers.
        grants: dict[str, float] = {
            a.name: config.min_rate for a in dead
        }
        capacity = max(0.0, config.total_rate
                       - config.min_rate * len(dead))
        # 3. Water-fill the live tenants: repeatedly offer the
        #    remaining capacity in proportion to weight; tenants whose
        #    demand target is below their offer take only the target
        #    and donate the rest to the still-hungry.
        active = {
            a.name: max(config.min_rate,
                        a.demand * config.demand_headroom)
            for a in live
        }
        weights = {a.name: a.weight for a in live}
        remaining = capacity
        while active and remaining > 1e-9:
            total_weight = sum(weights[name] for name in active)
            offers = {
                name: remaining * weights[name] / total_weight
                for name in active
            }
            capped = [
                name for name in active
                if active[name] <= offers[name] + 1e-9
            ]
            if not capped:
                # Everyone wants more than their share: the offer *is*
                # the weighted max-min grant.
                grants.update(offers)
                remaining = 0.0
                active = {}
                break
            for name in capped:
                grants[name] = active.pop(name)
                remaining -= grants[name]
        for name in active:  # capacity ran dry under the floors
            grants.setdefault(name, config.min_rate)
        # 4. Work conservation above demand: spread any leftover over
        #    the live tenants by weight, so bursts beyond the measured
        #    demand still find budget instead of idle capacity.
        if remaining > 1e-9 and live:
            total_weight = sum(a.weight for a in live)
            for alloc in live:
                grants[alloc.name] += (
                    remaining * alloc.weight / total_weight
                )
        # 5. Apply: rate/burst onto the buckets, integer slot/queue
        #    budgets proportional to the rate split (1 minimum each so
        #    every tenant can always make *some* progress).
        total_granted = sum(grants.values()) or 1.0
        for alloc in tenants:
            rate = max(config.min_rate, grants[alloc.name])
            fraction = rate / total_granted
            alloc.granted_rate = rate
            alloc.fair_share = self._fair_share_locked(alloc)
            alloc.granted_burst = max(
                1.0, config.total_burst * fraction
            )
            alloc.bucket.configure(rate, alloc.granted_burst)
            alloc.retry_bucket.configure(
                max(0.1, config.retry_rate_fraction * rate),
                config.retry_burst,
            )
            alloc.granted_slots = max(
                1, int(round(config.total_slots * fraction))
            )
            alloc.granted_queue = max(
                1, int(round(config.total_queue * fraction))
            )
        self.reallocations += 1
        self._export_locked(now)

    # -- observability -------------------------------------------------------

    def _export_locked(self, now: float) -> None:
        entry = {
            "at": round(now, 6),
            "reallocation": self.reallocations,
            "shards_down": sorted(
                index for index, alive in self._shard_alive.items()
                if not alive
            ),
            "grants": {
                name: round(alloc.granted_rate, 3)
                for name, alloc in sorted(self._tenants.items())
            },
        }
        self.history.append(entry)
        if len(self.history) > 256:
            del self.history[:-256]
        telemetry = self.telemetry
        if telemetry is None:
            return
        telemetry.metrics.counter("allocation.reallocations").inc()
        obs = getattr(telemetry, "obs", None)
        for name, alloc in self._tenants.items():
            telemetry.metrics.gauge(
                "allocation.granted_rate", tenant=name
            ).set(alloc.granted_rate)
            telemetry.metrics.gauge(
                "allocation.fair_share", tenant=name
            ).set(alloc.fair_share)
            telemetry.metrics.gauge(
                "allocation.demand", tenant=name
            ).set(alloc.demand)
            if obs is not None:
                obs.store.histogram(
                    "allocation.granted_rate", tenant=name
                ).record(now, alloc.granted_rate)
                obs.store.histogram(
                    "allocation.demand", tenant=name
                ).record(now, alloc.demand)

    def snapshot(self) -> dict:
        """The live allocation table (CLI/scenario/artifact surface)."""
        with self._lock:
            return {
                "total_rate": self.config.total_rate,
                "total_slots": self.config.total_slots,
                "total_queue": self.config.total_queue,
                "reallocations": self.reallocations,
                "shards_down": sorted(
                    index for index, alive in self._shard_alive.items()
                    if not alive
                ),
                "tenants": {
                    name: alloc.as_dict()
                    for name, alloc in sorted(self._tenants.items())
                },
            }
