"""Tenant isolation: one registry namespace per API key.

Real cloud front doors scope every request to the calling account;
one tenant's resources, faults and throttles must never be visible to
another.  :class:`TenantRouter` maps each API key to its own backend
instance — a fresh emulator over the *shared* compiled module (the
compiler's closures are stateless, so N tenants cost N registries,
not N compilations) — plus the per-tenant serving state: the RW lock,
the chaos wrapper (each tenant gets its own fault schedule lane, so
one tenant's bad weather stays theirs) and the JSON endpoint with its
deterministic request-id stream.

Authentication is deliberately minimal (this is an emulator, not an
IAM): a key either resolves or fails with the cloud's own codes —
``MissingAuthenticationToken`` for no key where one is required,
``UnrecognizedClientException`` when the tenant table is full and the
key is new.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..interpreter.endpoint import JsonEndpoint
from ..interpreter.errors import ApiResponse
from .concurrency import AdmittedLog, ConcurrentEmulator

#: Cloud-style authentication failure codes.
MISSING_TOKEN = "MissingAuthenticationToken"
UNRECOGNIZED_CLIENT = "UnrecognizedClientException"

DEFAULT_TENANT = "default"


class AuthError(Exception):
    """A request failed tenant resolution."""

    def __init__(self, code: str, message: str):
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}")

    def to_response(self) -> ApiResponse:
        return ApiResponse.fail(self.code, self.message)


@dataclass
class Tenant:
    """One tenant's isolated serving state."""

    name: str
    emulator: ConcurrentEmulator
    backend: object           # the full stack the endpoint dispatches to
    endpoint: JsonEndpoint

    @property
    def log(self) -> AdmittedLog | None:
        return self.emulator.log


class TenantRouter:
    """Resolves API keys to isolated per-tenant backends.

    ``emulator_factory`` builds one fresh base
    :class:`~repro.interpreter.Emulator` per tenant (typically
    ``build.make_backend`` with a shared compiled module);
    ``wrap`` optionally interposes a proxy stack (chaos, resilience)
    *outside* the concurrency layer.  ``guard`` is installed by the
    front door: it wraps the outermost backend with validation and
    admission control before the endpoint sees it.
    """

    def __init__(
        self,
        emulator_factory,
        max_tenants: int = 32,
        require_key: bool = False,
        wrap=None,
        guard=None,
        telemetry=None,
        seed: int = 1,
    ):
        self.emulator_factory = emulator_factory
        self.max_tenants = max_tenants
        self.require_key = require_key
        self.wrap = wrap
        self.guard = guard
        self.telemetry = telemetry
        self.seed = seed
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()
        #: One commit-ordered log shared by every tenant (records are
        #: tenant-tagged; per-tenant order is what linearizability
        #: replays).
        self.admitted = AdmittedLog()

    # -- resolution ----------------------------------------------------------

    def resolve(self, api_key: str | None) -> Tenant:
        """The tenant for ``api_key``, created on first use."""
        if not api_key:
            if self.require_key:
                raise AuthError(
                    MISSING_TOKEN,
                    "Request is missing an authentication token.",
                )
            api_key = DEFAULT_TENANT
        tenant = self._tenants.get(api_key)
        if tenant is not None:
            return tenant
        with self._lock:
            tenant = self._tenants.get(api_key)
            if tenant is not None:
                return tenant
            if len(self._tenants) >= self.max_tenants:
                raise AuthError(
                    UNRECOGNIZED_CLIENT,
                    "The security token included in the request is "
                    "invalid (tenant table is full).",
                )
            tenant = self._make_tenant(api_key)
            self._tenants[api_key] = tenant
            if self.telemetry is not None:
                self.telemetry.metrics.counter("serve.tenants").inc()
            return tenant

    def _make_tenant(self, name: str) -> Tenant:
        concurrent = ConcurrentEmulator(
            self.emulator_factory(), tenant=name, log=self.admitted,
            telemetry=self.telemetry,
        )
        backend = concurrent if self.wrap is None else self.wrap(concurrent)
        guarded = (
            backend if self.guard is None else self.guard(name, backend)
        )
        endpoint = JsonEndpoint(
            backend=guarded,
            seed=self.seed + len(self._tenants),
            telemetry=self.telemetry,
        )
        return Tenant(
            name=name, emulator=concurrent, backend=guarded,
            endpoint=endpoint,
        )

    # -- introspection -------------------------------------------------------

    def tenants(self) -> list[Tenant]:
        with self._lock:
            return list(self._tenants.values())

    def get(self, name: str) -> Tenant | None:
        return self._tenants.get(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)
