"""Thread-safe concurrent dispatch over one emulator.

:class:`ConcurrentEmulator` lets N worker threads issue mixed
read/write traffic against a single :class:`~repro.interpreter.Emulator`
without corrupting the registry, the WAL ordering or the ID allocator:

- read-only APIs (bare describes and the compiler's pure route, as
  classified by :meth:`Emulator.read_only`) dispatch under a *shared*
  lock, so reads run concurrently with each other;
- mutating APIs take the *exclusive* side, serializing transaction
  build, WAL append and commit — the write history of the emulator is
  therefore a total order;
- every write *attempt* that reaches the interpreter is appended to
  the :class:`AdmittedLog` while the exclusive lock is still held, so
  the log's per-tenant order is exactly the commit order.  Failed
  attempts are logged too: a failed create still burns a deterministic
  ID, so serial replay must repeat the failure to reproduce the
  allocator state byte-for-byte.

The wrapper sits at the *bottom* of the backend stack, directly around
the emulator.  Chaos and resilience proxies belong outside it: their
injected faults fire before the lock is taken and are therefore never
logged as admitted work — which is exactly right, because an injected
throttle mutates nothing.

Linearizability falls out: replaying one tenant's admitted log
serially against a fresh emulator of the same module reproduces the
concurrent run's final registry exactly (see
:func:`repro.serve.loadgen.verify_linearizable`).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from time import perf_counter

from ..interpreter.errors import ApiResponse
from ..obs.tracectx import current_request
from .locks import RWLock


class AdmittedLog:
    """The serially-ordered record of write attempts the serve path
    admitted — one entry per attempt, in commit order per tenant."""

    def __init__(self):
        self._records: list[dict] = []
        self._lock = threading.Lock()

    def append(self, tenant: str, api: str, params: dict,
               success: bool) -> int:
        with self._lock:
            seq = len(self._records) + 1
            self._records.append({
                "seq": seq,
                "tenant": tenant,
                "api": api,
                "params": dict(params or {}),
                "success": success,
            })
        return seq

    @property
    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    def per_tenant(self, tenant: str) -> list[dict]:
        return [r for r in self.records if r["tenant"] == tenant]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def dump_jsonl(self, path: "str | Path") -> Path:
        """Write the log as JSONL (the CI stress job's artifact)."""
        target = Path(path)
        with open(target, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return target


class ConcurrentEmulator:
    """An emulator wrapper that makes ``invoke`` thread-safe.

    ``inner`` must expose the emulator classification surface
    (``read_only``); in practice it is an
    :class:`~repro.interpreter.Emulator`.
    """

    def __init__(self, inner, tenant: str = "default",
                 log: AdmittedLog | None = None,
                 lock: RWLock | None = None):
        if not hasattr(inner, "read_only"):
            raise TypeError(
                "ConcurrentEmulator wraps the emulator itself "
                f"(chaos/resilience proxies go outside it), got "
                f"{type(inner).__name__}"
            )
        self.inner = inner
        self.tenant = tenant
        self.log = log
        self.lock = lock or RWLock()

    # -- delegated surface ---------------------------------------------------

    def api_names(self) -> list[str]:
        return self.inner.api_names()

    def supports(self, api: str) -> bool:
        return self.inner.supports(api)

    def read_only(self, api: str) -> bool:
        return self.inner.read_only(api)

    @property
    def registry(self):
        return self.inner.registry

    def reset(self) -> None:
        with self.lock.write():
            self.inner.reset()
            if self.log is not None:
                self.log.append(self.tenant, "_Reset", {}, True)

    def snapshot(self) -> dict:
        """A registry snapshot taken under the shared lock (readers
        may run concurrently; writers are excluded, so the snapshot is
        never torn)."""
        with self.lock.read():
            return self.inner.snapshot()

    # -- dispatch --------------------------------------------------------------

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        ctx = current_request()
        waited = perf_counter() if ctx is not None else 0.0
        if self.inner.read_only(api):
            with self.lock.read():
                if ctx is not None:
                    ctx.lock_wait_s += perf_counter() - waited
                return self.inner.invoke(api, params)
        with self.lock.write():
            if ctx is not None:
                ctx.lock_wait_s += perf_counter() - waited
            response = self.inner.invoke(api, params)
            if self.log is not None:
                self.log.append(
                    self.tenant, api, params or {}, response.success
                )
            return response

    def drift_check(self, api: str,
                    params: dict | None = None) -> tuple[bool, str]:
        """Compiled-vs-evaluator agreement for one read, atomically.

        Runs the live (compiled) dispatch and the reference
        tree-walking evaluation under a *single* shared-lock hold, so
        no concurrent writer can slip between the two and fake a
        divergence.  Returns ``(match, detail)``; ``detail`` names the
        first disagreement found.
        """
        with self.lock.read():
            live = self.inner.invoke(api, params)
            reference = self.inner.reference_invoke(api, params)
        if live.success != reference.success:
            return False, (
                f"compiled success={live.success} "
                f"evaluator success={reference.success}"
            )
        if not live.success:
            if live.error_code == reference.error_code:
                return True, ""
            return False, (
                f"compiled error {live.error_code!r} != "
                f"evaluator error {reference.error_code!r}"
            )
        if live.data == reference.data:
            return True, ""
        return False, "payload mismatch between compiled and evaluator"
