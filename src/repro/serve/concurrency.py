"""Thread-safe concurrent dispatch over one emulator.

:class:`ConcurrentEmulator` lets N worker threads issue mixed
read/write traffic against a single :class:`~repro.interpreter.Emulator`
without corrupting the registry, the WAL ordering or the ID allocator.
It runs in one of two modes, chosen at construction:

**MVCC (default).**  When the inner emulator supports versioned reads
(``Emulator(mvcc=True)``, which is the default), reads never take a
lock at all: each read pins the newest published
:class:`~repro.interpreter.machine.RegistryVersion` — an immutable,
structurally shared snapshot of the registry — and dispatches against
it via :meth:`Emulator.invoke_at`, including through the compiled pure
route.  Writes serialize under a small writer mutex: dispatch, WAL
append, admitted-log append, then an atomic publish of the new version
into the :class:`~repro.serve.mvcc.VersionChain`, which also runs
epoch-based reclamation of superseded versions (a retired version is
dropped once no reader pins it or anything older).  A writer therefore
never stalls a reader and a reader never delays a writer; read
throughput scales with cores until the GIL, not until the lock.

**RW-lock fallback.**  With ``Emulator(mvcc=False)`` — or an inner
backend that lacks the versioned-read surface — reads share a
:class:`~repro.serve.locks.RWLock` and writes take its exclusive side,
exactly the pre-MVCC behaviour.

In both modes:

- mutating APIs are a total order (writer mutex or exclusive lock);
- every write *attempt* that reaches the interpreter is appended to
  the :class:`AdmittedLog` while writers are still excluded, so the
  log's per-tenant order is exactly the commit order.  Failed
  attempts are logged too: a failed create still burns a deterministic
  ID, so serial replay must repeat the failure to reproduce the
  allocator state byte-for-byte.

The wrapper sits at the *bottom* of the backend stack, directly around
the emulator.  Chaos and resilience proxies belong outside it: their
injected faults fire before any pin or lock and are therefore never
logged as admitted work — which is exactly right, because an injected
throttle mutates nothing.

Linearizability falls out: replaying one tenant's admitted log
serially against a fresh emulator of the same module reproduces the
concurrent run's final registry exactly (see
:func:`repro.serve.loadgen.verify_linearizable`) — and under MVCC each
read additionally observed exactly one published version, recorded on
its trace as ``registry.version``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from time import perf_counter

from ..durability.snapshot import snapshot_version
from ..interpreter.errors import ApiResponse
from ..obs.tracectx import current_request
from ..resilience.chaos import kill_point
from .locks import RWLock
from .mvcc import ReaderSlots, VersionChain


class AdmittedLog:
    """The serially-ordered record of write attempts the serve path
    admitted — one entry per attempt, in commit order per tenant."""

    def __init__(self):
        self._records: list[dict] = []
        self._lock = threading.Lock()

    def append(self, tenant: str, api: str, params: dict,
               success: bool) -> int:
        with self._lock:
            seq = len(self._records) + 1
            self._records.append({
                "seq": seq,
                "tenant": tenant,
                "api": api,
                "params": dict(params or {}),
                "success": success,
            })
        return seq

    @property
    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    def per_tenant(self, tenant: str) -> list[dict]:
        return [r for r in self.records if r["tenant"] == tenant]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def dump_jsonl(self, path: "str | Path") -> Path:
        """Write the log as JSONL (the CI stress job's artifact)."""
        target = Path(path)
        with open(target, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return target


class ConcurrentEmulator:
    """An emulator wrapper that makes ``invoke`` thread-safe.

    ``inner`` must expose the emulator classification surface
    (``read_only``); in practice it is an
    :class:`~repro.interpreter.Emulator`.

    ``mvcc`` defaults to auto-detection: lock-free versioned reads are
    used exactly when the inner backend opts in (``inner.mvcc``) *and*
    exposes the versioned dispatch surface (``invoke_at`` /
    ``publish_version``); anything else — including modeled-latency
    bench wrappers that only forward ``invoke`` — falls back to the
    RW lock.  Pass ``mvcc=False`` to force the fallback.
    """

    def __init__(self, inner, tenant: str = "default",
                 log: AdmittedLog | None = None,
                 lock: RWLock | None = None,
                 mvcc: bool | None = None,
                 telemetry=None):
        if not hasattr(inner, "read_only"):
            raise TypeError(
                "ConcurrentEmulator wraps the emulator itself "
                f"(chaos/resilience proxies go outside it), got "
                f"{type(inner).__name__}"
            )
        self.inner = inner
        self.tenant = tenant
        self.log = log
        self.lock = lock or RWLock()
        self.telemetry = telemetry
        if mvcc is None:
            mvcc = bool(getattr(inner, "mvcc", False)) and hasattr(
                inner, "invoke_at"
            )
        elif mvcc and not hasattr(inner, "invoke_at"):
            raise TypeError(
                f"mvcc=True requires a versioned-read backend; "
                f"{type(inner).__name__} has no invoke_at"
            )
        self.mvcc = bool(mvcc)
        if self.mvcc:
            #: Serializes mutating dispatch and version publish.  Much
            #: smaller than the RW lock: readers never touch it, so it
            #: is only ever contended writer-vs-writer.
            self._writer = threading.Lock()
            self._slots = ReaderSlots()
            self._chain = VersionChain(inner.publish_version(),
                                       self._slots)
        else:
            self._writer = None
            self._slots = None
            self._chain = None

    # -- delegated surface ---------------------------------------------------

    def api_names(self) -> list[str]:
        return self.inner.api_names()

    def supports(self, api: str) -> bool:
        return self.inner.supports(api)

    def read_only(self, api: str) -> bool:
        return self.inner.read_only(api)

    @property
    def registry(self):
        return self.inner.registry

    def reset(self) -> None:
        if self.mvcc:
            with self._writer:
                self.inner.reset()
                if self.log is not None:
                    self.log.append(self.tenant, "_Reset", {}, True)
                self._publish()
            return
        with self.lock.write():
            self.inner.reset()
            if self.log is not None:
                self.log.append(self.tenant, "_Reset", {}, True)

    def snapshot(self) -> dict:
        """A registry snapshot that is never torn.

        Under MVCC this pins the newest published version and dumps it
        without any locking — writers keep publishing while the dump
        runs, and the result is byte-identical to what a stop-the-world
        snapshot at publish time would have produced.  The fallback
        takes the shared lock (readers run concurrently, writers are
        excluded)."""
        if self.mvcc:
            slot = self._slots.slot()
            version = self._chain.pin(slot)
            try:
                return snapshot_version(version)
            finally:
                slot.pinned = None
                slot.reads += 1
        with self.lock.read():
            return self.inner.snapshot()

    def restore(self, snapshot: dict) -> None:
        """Restore a snapshot as a *new* published version.

        Readers pinned to older versions keep reading them untouched
        (the emulator swaps the registry wholesale; see
        :meth:`Emulator.restore`), and every read started after this
        returns observes the restored state."""
        if self.mvcc:
            with self._writer:
                self.inner.restore(snapshot)
                self._publish()
            return
        with self.lock.write():
            self.inner.restore(snapshot)

    def recover(self, snapshot: dict,
                records: list[dict] | None = None) -> int:
        """Snapshot restore + WAL tail replay, published atomically:
        readers observe either the pre-recovery version or the fully
        recovered one, never a mid-replay state."""
        if self.mvcc:
            with self._writer:
                replayed = self.inner.recover(snapshot, records)
                self._publish()
            return replayed
        with self.lock.write():
            return self.inner.recover(snapshot, records)

    def place(self, instance_id: str, region: str) -> None:
        """Record a region placement and republish, so replica
        snapshots taken right after a regional write already carry the
        placement (the netem front door calls this instead of poking
        ``registry.place`` directly)."""
        if self.mvcc:
            with self._writer:
                self.inner.registry.place(instance_id, region)
                self._publish()
            return
        with self.lock.write():
            self.inner.registry.place(instance_id, region)

    # -- dispatch --------------------------------------------------------------

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        ctx = current_request()
        if self.inner.read_only(api):
            if self.mvcc:
                # Lock-free read: pin the newest published version
                # (two atomic attribute operations) and dispatch
                # against it.  No mutex, no condition variable, no
                # contention with writers — and zero lock_wait_s.
                slot = self._slots.slot()
                version = self._chain.pin(slot)
                try:
                    response = self.inner.invoke_at(version, api, params)
                finally:
                    slot.pinned = None
                    slot.reads += 1
                if ctx is not None:
                    ctx.registry_version = version.version
                return response
            waited = perf_counter() if ctx is not None else 0.0
            with self.lock.read():
                if ctx is not None:
                    ctx.lock_wait_s += perf_counter() - waited
                return self.inner.invoke(api, params)
        waited = perf_counter() if ctx is not None else 0.0
        if self.mvcc:
            with self._writer:
                if ctx is not None:
                    ctx.lock_wait_s += perf_counter() - waited
                response = self.inner.invoke(api, params)
                if self.log is not None:
                    self.log.append(
                        self.tenant, api, params or {}, response.success
                    )
                version = self._publish()
            if ctx is not None:
                ctx.registry_version = version.version
            return response
        with self.lock.write():
            if ctx is not None:
                ctx.lock_wait_s += perf_counter() - waited
            response = self.inner.invoke(api, params)
            if self.log is not None:
                self.log.append(
                    self.tenant, api, params or {}, response.success
                )
            return response

    def _publish(self):
        """Publish the post-write registry state into the version
        chain.  Caller holds the writer mutex.

        ``mid-publish`` is a kill site: a shard worker dying here has
        committed the write but never published its version — recovery
        must replay the logged attempt and converge on the same
        registry anyway."""
        kill_point("mid-publish")
        version = self.inner.publish_version()
        swung = version is not self._chain.current
        freed = self._chain.publish(version)
        telemetry = self.telemetry
        if telemetry is not None:
            if freed:
                telemetry.metrics.counter("serve.reclaimed").inc(freed)
            # A failed write leaves the registry untouched: the cached
            # publish returns the same version object and the chain
            # no-ops — don't count (or trace) a publish that didn't
            # happen.
            if swung:
                telemetry.metrics.counter("serve.version_publishes").inc()
                telemetry.metrics.gauge("serve.versions_live").set(
                    self._chain.live
                )
                with telemetry.span(
                    "serve.publish", kind="serve", tenant=self.tenant
                ) as span:
                    span.set("registry.version", version.version)
                    span.set("reclaimed", freed)
                    span.set("versions_live", self._chain.live)
        return version

    def version_stats(self) -> dict:
        """Version-churn and lock accounting for this tenant.

        ``read_lock_acquisitions`` is the lock-free proof: under MVCC
        it must stay exactly zero (reads never touch the RW lock), and
        the benches and CI assert it does."""
        stats = {
            "mvcc": self.mvcc,
            "read_lock_acquisitions": self.lock.read_acquisitions,
            "write_lock_acquisitions": self.lock.write_acquisitions,
        }
        if self.mvcc:
            stats.update(
                publishes=self._chain.publishes,
                reclaimed=self._chain.reclaimed,
                versions_live=self._chain.live,
                pinned_reads=self._slots.reads(),
                reader_threads=len(self._slots),
            )
        return stats

    def drift_check(self, api: str,
                    params: dict | None = None) -> tuple[bool, str]:
        """Compiled-vs-evaluator agreement for one read, atomically.

        Under MVCC both evaluations run against a *single* pinned
        version, so consistency is structural — no locking needed and
        no concurrent writer can fake a divergence.  The fallback gets
        the same guarantee by holding one shared-lock acquisition
        across both runs.  Returns ``(match, detail)``; ``detail``
        names the first disagreement found.
        """
        if self.mvcc:
            slot = self._slots.slot()
            version = self._chain.pin(slot)
            try:
                live = self.inner.invoke_at(version, api, params)
                reference = self.inner.reference_invoke(
                    api, params, at=version
                )
            finally:
                slot.pinned = None
                slot.reads += 1
        else:
            with self.lock.read():
                live = self.inner.invoke(api, params)
                reference = self.inner.reference_invoke(api, params)
        if live.success != reference.success:
            return False, (
                f"compiled success={live.success} "
                f"evaluator success={reference.success}"
            )
        if not live.success:
            if live.error_code == reference.error_code:
                return True, ""
            return False, (
                f"compiled error {live.error_code!r} != "
                f"evaluator error {reference.error_code!r}"
            )
        if live.data == reference.data:
            return True, ""
        return False, "payload mismatch between compiled and evaluator"
