"""A reader-writer lock for the concurrent serve path.

The emulator's read traffic (describes, the compiler's pure route)
never mutates the registry, so readers may run concurrently; mutating
transitions must serialize — the registry, the WAL and the ID
allocator all assume one writer at a time.  This lock gives shared
read access and exclusive write access, with writer preference so a
read-heavy mix cannot starve writes indefinitely.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Shared-read / exclusive-write lock (writer-preferring)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
