"""A reader-writer lock for the concurrent serve path.

The emulator's read traffic (describes, the compiler's pure route)
never mutates the registry, so readers may run concurrently; mutating
transitions must serialize — the registry, the WAL and the ID
allocator all assume one writer at a time.  This lock gives shared
read access and exclusive write access, with writer preference so a
read-heavy mix cannot starve writes indefinitely.

Since the MVCC refactor this class is the *fallback* path: the serve
layer only routes through it when the inner emulator opted out of
versioned reads (``Emulator(mvcc=False)``) or does not expose them.
It also keeps the acquisition counters the benches and CI use to
prove the MVCC read path is lock-free (``read_acquisitions`` must
stay zero there).

Writer-preference alone has a starvation edge: a continuous read
stream (the mix degraded-mode shedding admits) keeps the condition's
monitor lock churning, and a queued writer may not even get to
*register* ``_writers_waiting`` — the gate readers check — for an
unbounded time.  The fairness bound closes it: after ``fairness_bound``
consecutive read admissions with no intervening write, the next
reader briefly yields the monitor (a timed wait) before admitting
itself, guaranteeing a blocked writer a window to register and flip
the gate.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Shared-read / exclusive-write lock (writer-preferring).

    ``fairness_bound`` caps how many reads may be admitted back-to-back
    before the lock forces a yield window for queued writers; the
    ``fairness_yields`` counter records how often the bound fired.
    """

    def __init__(self, fairness_bound: int = 64,
                 yield_s: float = 0.0005):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._read_streak = 0
        self.fairness_bound = fairness_bound
        self.yield_s = yield_s
        #: Accounting (written under the monitor, so exact).
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        self.fairness_yields = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            if (
                self._read_streak >= self.fairness_bound
                and self._readers
            ):
                # Long unbroken read streak with readers still inside:
                # a writer may be stuck outside the monitor.  Release
                # it briefly so the writer can register its intent,
                # then re-check the admission gate.
                self.fairness_yields += 1
                self._read_streak = 0
                self._cond.wait(self.yield_s)
                while self._writer or self._writers_waiting:
                    self._cond.wait()
            self._readers += 1
            self._read_streak += 1
            self.read_acquisitions += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
            self.write_acquisitions += 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._read_streak = 0
            self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
