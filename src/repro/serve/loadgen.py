"""Deterministic seeded load generation and the linearizability check.

``serve-bench`` drives open-loop traffic at configurable concurrency
and read/write mix through a :class:`~repro.serve.frontdoor.FrontDoor`
— optionally under a chaos profile — then *proves* the concurrent run
was linearizable: the admitted-request log, replayed serially against
a fresh emulator, must produce a registry byte-identical to the
concurrent run's final snapshot.  Zero lost, duplicated or torn
mutations, by construction checked rather than asserted.

Traffic is deterministic per ``(seed, worker)``: each worker derives
its own RNG stream, so the *offered* request sequence never depends on
thread scheduling (the interleaving does, which is the point — the
check must hold for every interleaving).  Virtual time advances
``1/offered_rate`` clock-seconds per request, so the token buckets see
a load expressed as a rate, not as wall time.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

from ..interpreter.emulator import normalize_key
from ..spec import ast


@dataclass
class LoadReport:
    """What one load run offered, received and proved."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    by_code: dict = field(default_factory=dict)  # "" = success
    shed: int = 0
    admitted_writes: int = 0
    workers: int = 0
    tenants: int = 0
    wall_seconds: float = 0.0
    linearizable: bool | None = None
    mismatches: list = field(default_factory=list)
    #: Reads answered from a trailing replica (netem stale serving).
    stale_reads: int = 0
    #: Retry-After honoring: how many shed responses carried a hint
    #: the generator slept on, the virtual seconds slept, and a
    #: bounded sample of the honored request records.
    retry_after_honored: int = 0
    retry_after_seconds: float = 0.0
    retry_after_log: list = field(default_factory=list)
    #: Shard-failover backoff, accounted separately from admission
    #: sheds: responses carrying the ``ShardUnavailable`` marker whose
    #: Retry-After the generator slept on, the virtual seconds waited,
    #: and a bounded per-request log of the failover waits.
    failover_honored: int = 0
    failover_seconds: float = 0.0
    failover_log: list = field(default_factory=list)
    #: Per-tenant outcome splits — the raw material of fairness
    #: claims: ``{tenant: {"requests", "ok", "shed"}}``.
    by_tenant: dict = field(default_factory=dict)
    #: Requests shed with ``ExpiredBeforeDispatch`` (the propagated
    #: deadline died before any layer did work).
    deadline_expired: int = 0
    #: Retries the generator re-offered (``Retry: true``) after
    #: honoring a shed's Retry-After, and how many of those bounced
    #: off an exhausted retry side-budget.
    retries_sent: int = 0
    retry_budget_exhausted: int = 0
    #: The observability plane's summary (SLO budgets, burn alerts,
    #: sampling, drift) when one was attached to the front door.
    obs: dict | None = None
    #: Aggregated MVCC version accounting across tenants (publishes,
    #: reclaimed, pinned reads, lock acquisitions) — ``None`` until a
    #: verifying run collects it.  ``read_lock_acquisitions`` must be
    #: 0 when every tenant ran the lock-free path.
    mvcc: dict | None = None

    @property
    def throughput_rps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "reads": self.reads,
            "writes": self.writes,
            "by_code": dict(sorted(self.by_code.items())),
            "shed": self.shed,
            "admitted_writes": self.admitted_writes,
            "workers": self.workers,
            "tenants": self.tenants,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "linearizable": self.linearizable,
            "mismatches": list(self.mismatches),
            "stale_reads": self.stale_reads,
            "retry_after_honored": self.retry_after_honored,
            "retry_after_seconds": round(self.retry_after_seconds, 6),
            "retry_after_log": list(self.retry_after_log),
            "failover_honored": self.failover_honored,
            "failover_seconds": round(self.failover_seconds, 6),
            "failover_log": list(self.failover_log),
            "by_tenant": {
                tenant: dict(split)
                for tenant, split in sorted(self.by_tenant.items())
            },
            "deadline_expired": self.deadline_expired,
            "retries_sent": self.retries_sent,
            "retry_budget_exhausted": self.retry_budget_exhausted,
            "obs": self.obs,
            "mvcc": self.mvcc,
        }


#: Shed codes the admission layer produces.
SHED_CODES = frozenset({"RequestLimitExceeded", "ServiceUnavailable"})


class _TrafficModel:
    """Seeded request synthesis over one module's API surface."""

    def __init__(self, module: ast.SpecModule, classifier):
        self.module = module
        self._index = {
            api: (sm_name, transition)
            for api, (sm_name, transition)
            in module.transition_index().items()
            if not api.startswith("_")
        }
        self.reads = sorted(
            api for api in self._index if classifier(api)
        )
        self.creates = sorted(
            api for api, (__, t) in self._index.items()
            if t.category == "create"
        )
        self.other_writes = sorted(
            api for api in self._index
            if api not in self.reads and api not in self.creates
        )

    def owning_sm(self, api: str) -> str:
        return self._index[api][0]

    def _value(self, rng, param, ids_by_sm: dict) -> object:
        type_ = param.type
        norm = normalize_key(param.name)
        if type_.kind == "sm" or norm.endswith("id"):
            pool = ids_by_sm.get(type_.sm_name) if type_.sm_name else None
            if not pool:
                pool = [
                    value
                    for values in ids_by_sm.values() for value in values
                ]
            if pool and rng.random() < 0.9:
                return rng.choice(pool[-8:])
            return f"missing-{norm}"
        if "cidr" in norm:
            return rng.choice((
                "10.0.0.0/16", "10.1.0.0/16", "10.0.1.0/24",
                "10.0.2.0/24", "192.168.0.0/20",
            ))
        if type_.kind == "bool":
            return rng.random() < 0.5
        if type_.kind == "int":
            return rng.randrange(1, 8)
        if type_.kind == "enum" and type_.enum_values:
            return rng.choice(type_.enum_values)
        if type_.kind == "list":
            return []
        if type_.kind == "map":
            return {"Name": f"lg-{rng.randrange(100)}"}
        return rng.choice(("name", "default", "standard", "primary"))

    def request(self, rng, read_ratio: float,
                ids_by_sm: dict) -> tuple[str, dict, bool]:
        """One deterministic request: (api, params, is_read)."""
        if self.reads and rng.random() < read_ratio:
            api = rng.choice(self.reads)
            is_read = True
        elif self.creates and (not ids_by_sm or rng.random() < 0.6):
            api = rng.choice(self.creates)
            is_read = False
        elif self.other_writes:
            api = rng.choice(self.other_writes)
            is_read = False
        else:
            api = rng.choice(self.creates or self.reads)
            is_read = not self.creates
        __, transition = self._index[api]
        params = {
            param.name: self._value(rng, param, ids_by_sm)
            for param in transition.params
            if rng.random() >= 0.05  # occasionally omit one
        }
        return api, params, is_read


class LoadGenerator:
    """Drives deterministic concurrent traffic through a front door."""

    def __init__(
        self,
        frontdoor,
        seed: int = 11,
        workers: int = 8,
        requests_per_worker: int = 250,
        read_ratio: float = 0.7,
        tenants: int = 1,
        offered_rate: float | None = None,
        latency: float = 0.0,
        honor_retry_after: bool = True,
        max_retry_after: float = 5.0,
        aggressor: str | None = None,
        aggressor_weight: float = 10.0,
        deadline: float | None = None,
        retry_shed: bool = False,
    ):
        self.frontdoor = frontdoor
        self.seed = seed
        self.workers = workers
        self.requests_per_worker = requests_per_worker
        self.read_ratio = read_ratio
        self.tenant_names = [
            f"tenant-{index}" for index in range(max(1, tenants))
        ]
        #: Requests per virtual clock-second offered to the buckets
        #: (None: advance the clock generously so rate never sheds).
        self.offered_rate = offered_rate
        self.latency = latency
        #: Back off by the admission layer's own Retry-After hint —
        #: *full-jittered*: the actual wait is uniform in
        #: ``[0, min(hint, max_retry_after)]``, so a cohort of shed
        #: clients desynchronizes instead of returning as one
        #: thundering herd when the hint elapses.
        self.honor_retry_after = honor_retry_after
        self.max_retry_after = max_retry_after
        #: The noisy neighbor: this tenant is offered
        #: ``aggressor_weight`` times more traffic than each victim.
        self.aggressor = aggressor
        self.aggressor_weight = aggressor_weight
        #: When set, every envelope carries ``DeadlineSeconds`` — the
        #: propagated budget the serving layers shed against.
        self.deadline = deadline
        #: Re-offer each shed request once, marked ``Retry: true``, so
        #: runs exercise the capped retry side-budget.
        self.retry_shed = retry_shed
        probe = frontdoor.emulator_factory()
        self.model = _TrafficModel(frontdoor.module, probe.read_only)

    def _pick_tenant(self, rng) -> str:
        if self.aggressor and self.aggressor in self.tenant_names:
            weights = [
                self.aggressor_weight if name == self.aggressor else 1.0
                for name in self.tenant_names
            ]
            return rng.choices(self.tenant_names, weights=weights)[0]
        return rng.choice(self.tenant_names)

    # -- drive ---------------------------------------------------------------

    def _worker(self, worker_index: int, report: LoadReport,
                lock: threading.Lock) -> None:
        import random

        rng = random.Random(self.seed * 1_000_003 + worker_index)
        clock = self.frontdoor.clock
        pace = (
            1.0 / self.offered_rate if self.offered_rate else None
        )
        ids_by_sm: dict[str, list[str]] = {}
        local_codes: dict[str, int] = {}
        local_tenants: dict[str, dict] = {}
        local_honored: list[dict] = []
        local_failover: list[dict] = []
        reads = writes = sheds = stale = 0
        honored = 0
        honored_seconds = 0.0
        failover = 0
        failover_seconds = 0.0
        expired = 0
        retries = 0
        retry_exhausted = 0
        for __ in range(self.requests_per_worker):
            tenant = self._pick_tenant(rng)
            api, params, is_read = self.model.request(
                rng, self.read_ratio, ids_by_sm
            )
            if pace is not None:
                clock.sleep(pace)
            else:
                clock.sleep(1.0)  # unconstrained: buckets never empty
            if self.latency:
                time.sleep(self.latency)
            envelope = {"Action": api, "Parameters": params}
            if self.deadline is not None:
                envelope["DeadlineSeconds"] = self.deadline
            body = self.frontdoor.dispatch(envelope, api_key=tenant)
            error = body.get("Error")
            code = error.get("Code", "") if error else ""
            local_codes[code] = local_codes.get(code, 0) + 1
            split = local_tenants.setdefault(
                tenant, {"requests": 0, "ok": 0, "shed": 0}
            )
            split["requests"] += 1
            if not error:
                split["ok"] += 1
            if is_read:
                reads += 1
            else:
                writes += 1
            if error and error.get("ExpiredBeforeDispatch") is True:
                expired += 1
                split["shed"] += 1
            if code in SHED_CODES:
                sheds += 1
                split["shed"] += 1
                hint = error.get("RetryAfterSeconds")
                if (
                    self.honor_retry_after
                    and isinstance(hint, (int, float))
                    and hint > 0
                ):
                    # Full jitter (AWS-style): sleep uniform in
                    # [0, min(hint, cap)] so a cohort of shed clients
                    # returns spread out, not as a synchronized herd.
                    cap = min(float(hint), self.max_retry_after)
                    delay = rng.uniform(0.0, cap)
                    clock.sleep(delay)
                    honored += 1
                    honored_seconds += delay
                    entry = {
                        "worker": worker_index,
                        "api": api,
                        "code": code,
                        "hint": round(float(hint), 6),
                        "honored": round(delay, 6),
                        "jittered": round(delay, 6),
                    }
                    # A shard-unavailable shed is a *failover* wait —
                    # honored the same way, accounted separately so a
                    # run can tell backpressure from a dying worker.
                    if error.get("ShardUnavailable"):
                        failover += 1
                        failover_seconds += delay
                        if len(local_failover) < 25:
                            local_failover.append(
                                {**entry, "shard": error.get("Shard")}
                            )
                    elif len(local_honored) < 25:
                        local_honored.append(entry)
                if self.retry_shed:
                    retries += 1
                    retry_env = dict(envelope)
                    retry_env["Retry"] = True
                    retry_body = self.frontdoor.dispatch(
                        retry_env, api_key=tenant
                    )
                    retry_error = retry_body.get("Error") or {}
                    if retry_error.get("RetryBudgetExhausted") is True:
                        retry_exhausted += 1
                    elif not retry_body.get("Error"):
                        created = retry_body.get("id")
                        if isinstance(created, str) and created:
                            sm = self.model.owning_sm(api)
                            ids_by_sm.setdefault(sm, []).append(created)
            if not error:
                if body.get("Stale") is True:
                    stale += 1
                created = body.get("id")
                if isinstance(created, str) and created:
                    sm = self.model.owning_sm(api)
                    ids_by_sm.setdefault(sm, []).append(created)
        with lock:
            report.requests += reads + writes
            report.reads += reads
            report.writes += writes
            report.shed += sheds
            report.stale_reads += stale
            report.retry_after_honored += honored
            report.retry_after_seconds += honored_seconds
            report.failover_honored += failover
            report.failover_seconds += failover_seconds
            report.deadline_expired += expired
            report.retries_sent += retries
            report.retry_budget_exhausted += retry_exhausted
            for tenant, split in local_tenants.items():
                merged = report.by_tenant.setdefault(
                    tenant, {"requests": 0, "ok": 0, "shed": 0}
                )
                for key, value in split.items():
                    merged[key] += value
            # Keep the honored-delay logs bounded across workers.
            room = 50 - len(report.retry_after_log)
            if room > 0:
                report.retry_after_log.extend(local_honored[:room])
            room = 50 - len(report.failover_log)
            if room > 0:
                report.failover_log.extend(local_failover[:room])
            for code, count in local_codes.items():
                report.by_code[code] = report.by_code.get(code, 0) + count

    def run(self, verify: bool = True) -> LoadReport:
        """Run the full load, then (optionally) prove linearizability."""
        report = LoadReport(
            workers=self.workers, tenants=len(self.tenant_names)
        )
        lock = threading.Lock()
        threads = [
            threading.Thread(
                target=self._worker, args=(index, report, lock),
                name=f"loadgen-{index}", daemon=True,
            )
            for index in range(self.workers)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.wall_seconds = time.perf_counter() - start
        report.admitted_writes = len(self.frontdoor.admitted)
        obs = getattr(self.frontdoor.telemetry, "obs", None)
        if obs is not None:
            report.obs = obs.report()
        if verify:
            # A front door may supply its own checks (the sharded one
            # replays merged per-shard attempt logs over RPC); default
            # to the in-process serial replay otherwise.
            verifier = getattr(self.frontdoor, "verify_linearizable", None)
            ok, mismatches = (
                verifier() if callable(verifier)
                else verify_linearizable(self.frontdoor)
            )
            report.linearizable = ok
            report.mismatches = mismatches
            stats = getattr(self.frontdoor, "mvcc_stats", None)
            report.mvcc = (
                stats() if callable(stats) else mvcc_stats(self.frontdoor)
            )
        return report


# ---------------------------------------------------------------------------
# Linearizability: serial replay of the admitted log
# ---------------------------------------------------------------------------


def _canonical(snapshot: dict) -> str:
    snapshot = dict(snapshot)
    snapshot["wal_seq"] = 0  # replicas never carry a WAL
    # Region placements are assigned by the front door's network gate,
    # which the serial-replay replica runs without; they are routing
    # metadata, not API-visible state, so they are excluded from the
    # linearizability comparison.
    snapshot.pop("placements", None)
    return json.dumps(snapshot, sort_keys=True)


def mvcc_stats(frontdoor) -> dict:
    """Aggregate version accounting across the front door's tenants.

    Sums each tenant's :meth:`ConcurrentEmulator.version_stats
    <repro.serve.concurrency.ConcurrentEmulator.version_stats>`:
    publishes, reclaimed versions, pinned reads, and — the lock-free
    proof — RW-lock acquisition counts, which must be zero on the read
    side when every tenant ran MVCC.
    """
    stats = {
        "tenants": 0,
        "mvcc_tenants": 0,
        "publishes": 0,
        "reclaimed": 0,
        "versions_live": 0,
        "pinned_reads": 0,
        "read_lock_acquisitions": 0,
        "write_lock_acquisitions": 0,
    }
    for tenant in frontdoor.router.tenants():
        version_stats = getattr(tenant.emulator, "version_stats", None)
        if version_stats is None:
            continue
        per_tenant = version_stats()
        stats["tenants"] += 1
        if per_tenant.get("mvcc"):
            stats["mvcc_tenants"] += 1
            stats["publishes"] += per_tenant.get("publishes", 0)
            stats["reclaimed"] += per_tenant.get("reclaimed", 0)
            stats["versions_live"] += per_tenant.get("versions_live", 0)
            stats["pinned_reads"] += per_tenant.get("pinned_reads", 0)
        stats["read_lock_acquisitions"] += per_tenant.get(
            "read_lock_acquisitions", 0
        )
        stats["write_lock_acquisitions"] += per_tenant.get(
            "write_lock_acquisitions", 0
        )
    return stats


def verify_linearizable(frontdoor) -> tuple[bool, list[str]]:
    """Serial replay of each tenant's admitted log == live registry?

    For every tenant: build a fresh emulator from the front door's own
    factory, replay that tenant's admitted write attempts in log
    order, and compare canonical snapshots byte-for-byte.  A lost,
    duplicated, torn or re-ordered mutation anywhere in the concurrent
    run shows up as a diff (IDs, state values and allocator counters
    are all in the snapshot).

    MVCC tenants are additionally held to the lock-free contract: if a
    tenant ran the versioned read path but its RW lock recorded *any*
    read acquisition, something routed a read through the fallback —
    reported as a mismatch even when the registries agree, because the
    performance claim (reads never lock) is part of what this check
    certifies.
    """
    mismatches: list[str] = []
    for tenant in frontdoor.router.tenants():
        replica = frontdoor.emulator_factory()
        for record in frontdoor.admitted.per_tenant(tenant.name):
            if record["api"] == "_Reset":
                replica.reset()
            else:
                replica.invoke(record["api"], record["params"])
        live = _canonical(tenant.emulator.snapshot())
        replayed = _canonical(replica.snapshot())
        if live != replayed:
            mismatches.append(
                f"tenant {tenant.name}: serial replay diverges from "
                f"the concurrent registry "
                f"(live {len(live)}B != replay {len(replayed)}B)"
            )
        if getattr(tenant.emulator, "mvcc", False):
            reads_locked = tenant.emulator.lock.read_acquisitions
            if reads_locked:
                mismatches.append(
                    f"tenant {tenant.name}: MVCC mode but "
                    f"{reads_locked} read(s) took the RW lock"
                )
    return (not mismatches), mismatches
