"""Lock-free read plumbing for the MVCC serve path.

The concurrency layer publishes immutable
:class:`~repro.interpreter.machine.RegistryVersion` objects (one per
committed mutation batch, built under a small writer mutex) and reads
pin the newest one with **zero locking**:

- every reader thread owns a :class:`_ReaderSlot`; pinning is two
  atomic attribute stores (read the chain's ``current`` reference,
  publish its number into the slot), so the read path never touches a
  mutex, a condition variable, or the live registry;
- the writer, after swinging ``current`` to a freshly published
  version, retires the old one and runs epoch-based reclamation: a
  retired version is dropped as soon as no reader slot pins a version
  at or below it, so the set of live versions stays bounded under
  write churn no matter how read-heavy the mix is.

Reclamation here is *accounting-grade* — CPython's reference counting
already guarantees a pinned version's memory survives exactly as long
as some reader holds it — but the chain makes the lifecycle
observable (``serve.version_publishes`` / ``serve.versions_live`` /
``serve.reclaimed``) and bounds the structure a debugger or the
report would otherwise watch grow without limit.
"""

from __future__ import annotations

import threading


class _ReaderSlot:
    """One reader thread's pin: written only by its owning thread.

    ``pinned`` is the version number the thread is currently reading
    (``None`` between reads); ``reads`` counts completed pinned reads
    — contention-free because no other thread ever writes the slot.
    """

    __slots__ = ("pinned", "reads")

    def __init__(self):
        self.pinned: int | None = None
        self.reads = 0


class ReaderSlots:
    """The per-thread pin table the reclaimer scans.

    Slot registration (first read on a new thread) appends to a plain
    list — atomic under the GIL — so even the cold path acquires no
    lock.  Slots are never removed: the table is bounded by the
    process's peak thread count, and a dead thread's slot simply reads
    as unpinned forever.
    """

    def __init__(self):
        self._local = threading.local()
        self._slots: list[_ReaderSlot] = []

    def slot(self) -> _ReaderSlot:
        slot = getattr(self._local, "slot", None)
        if slot is None:
            slot = _ReaderSlot()
            self._local.slot = slot
            self._slots.append(slot)
        return slot

    def min_pinned(self) -> int | None:
        """The oldest version any reader currently pins (the epoch
        floor), or ``None`` when every slot is idle."""
        floor = None
        for slot in self._slots:
            pinned = slot.pinned
            if pinned is not None and (floor is None or pinned < floor):
                floor = pinned
        return floor

    def reads(self) -> int:
        """Total pinned reads completed across all threads, exact —
        each slot is incremented only by its owner."""
        return sum(slot.reads for slot in self._slots)

    def __len__(self) -> int:
        return len(self._slots)


class VersionChain:
    """The published-version lifecycle: current → retired → reclaimed.

    All mutation happens on the writer side (under the concurrency
    layer's writer mutex); readers only ever load ``current``, which
    is a single atomic reference read.
    """

    def __init__(self, first, slots: ReaderSlots):
        self.current = first
        self.slots = slots
        self._retired: list = []
        #: Writer-side accounting (exact: single writer at a time).
        self.publishes = 1
        self.reclaimed = 0

    def pin(self, slot: _ReaderSlot):
        """Pin the newest published version into ``slot`` and return
        it.  Lock-free: two attribute operations.  A publish racing
        between them can at worst retire the version just pinned —
        harmless, because the returned reference keeps it alive and
        the pin only steers reclamation accounting."""
        version = self.current
        slot.pinned = version.version
        return version

    def publish(self, version) -> int:
        """Swing ``current`` to ``version`` (no-op when unchanged),
        retire the predecessor, reclaim what no reader pins.  Returns
        the number of versions reclaimed by this publish."""
        if version is self.current:
            return self.reclaim()
        self._retired.append(self.current)
        self.current = version
        self.publishes += 1
        return self.reclaim()

    def reclaim(self) -> int:
        """Drop retired versions below the epoch floor."""
        if not self._retired:
            return 0
        floor = self.slots.min_pinned()
        if floor is None:
            freed = len(self._retired)
            self._retired.clear()
        else:
            kept = [v for v in self._retired if v.version >= floor]
            freed = len(self._retired) - len(kept)
            self._retired = kept
        self.reclaimed += freed
        return freed

    @property
    def live(self) -> int:
        """Versions currently held by the chain (current + retired)."""
        return 1 + len(self._retired)
