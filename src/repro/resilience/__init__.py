"""Resilience: fault injection, retry/backoff, graceful degradation.

The extraction and alignment pipelines are talk-to-flaky-remote-
service workloads (the LLM and the real cloud respectively).  This
package provides the machinery that keeps them honest about it:

- :mod:`~repro.resilience.chaos` — seeded, deterministic fault
  injection reproducing the cloud's and the model's failure taxonomy
  (``off`` / ``mild`` / ``hostile`` profiles);
- :mod:`~repro.resilience.retry`, :mod:`~repro.resilience.policy`,
  :mod:`~repro.resilience.breaker` — exponential backoff with seeded
  full jitter, per-call deadlines, per-resource circuit breakers;
- :mod:`~repro.resilience.stats` — accounting, so degradation is
  visible in every pipeline report rather than silent.

The chaos/resilient wrappers are exposed lazily (they import the
interpreter's response type); the pure machinery imports eagerly.
"""

from __future__ import annotations

from .breaker import BreakerBoard, CircuitBreaker
from .errors import (
    CallTimeout,
    CircuitOpenError,
    DeadlineExceeded,
    is_notfound_code,
    is_transient_code,
    ResilienceError,
    RetriesExhausted,
    TransientServiceError,
    TRANSIENT_CODES,
)
from .policy import (
    Deadline,
    DEFAULT_POLICY,
    NO_RETRY_POLICY,
    RetryPolicy,
    seeded_fraction,
    VirtualClock,
)
from .ratelimit import TokenBucket
from .retry import retry_call
from .stats import ResilienceStats

_LAZY = {
    "ChaosEngine": "chaos",
    "ChaosLLM": "chaos",
    "ChaosProfile": "chaos",
    "ChaosProxy": "chaos",
    "chaos_profile": "chaos",
    "CHAOS_ENV_VAR": "chaos",
    "HOSTILE_PROFILE": "chaos",
    "MILD_PROFILE": "chaos",
    "OFF_PROFILE": "chaos",
    "PROFILES": "chaos",
    "resolve_profile": "chaos",
    "ResilientBackend": "resilient",
    "ResilientLLM": "resilient",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(name)
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


__all__ = [
    "BreakerBoard",
    "CallTimeout",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "DEFAULT_POLICY",
    "NO_RETRY_POLICY",
    "ResilienceError",
    "ResilienceStats",
    "RetriesExhausted",
    "retry_call",
    "RetryPolicy",
    "TokenBucket",
    "seeded_fraction",
    "TransientServiceError",
    "TRANSIENT_CODES",
    "VirtualClock",
    "is_notfound_code",
    "is_transient_code",
    *sorted(_LAZY),
]
