"""The failure taxonomy the resilience layer speaks.

Both remote dependencies of the reproduction — the reference cloud the
alignment loop diffs against (§4.3) and the LLM the extraction loop
prompts (§4.2) — fail the way real services fail: throttling, transient
5xx weather, timeouts, and (for the model) truncated completions.  The
taxonomy here separates *transient* failures, which a caller should
retry, from *terminal* ones, which it should surface or degrade around.

Error codes follow the cloud convention the rest of the system already
uses: retryability is a property of the *code*, mirroring how real SDK
retry policies classify responses.
"""

from __future__ import annotations

#: Error codes that indicate infrastructure weather rather than
#: behaviour: a well-behaved client retries these, and the alignment
#: differ must never attribute them to the specification.
TRANSIENT_CODES = frozenset(
    {
        "RequestLimitExceeded",
        "Throttling",
        "ThrottlingException",
        "InternalError",
        "InternalFailure",
        "ServiceUnavailable",
        "RequestTimeout",
        "ModelOverloaded",
    }
)


def is_transient_code(code: str) -> bool:
    """Whether an error code names a retryable infrastructure failure."""
    return code in TRANSIENT_CODES


def is_notfound_code(code: str) -> bool:
    """Whether an error code is a not-found — possibly eventual-
    consistency lag on a just-created resource, which waiters absorb."""
    return code.endswith(".NotFound") or code.endswith("NotFoundException")


class ResilienceError(Exception):
    """Base class for everything the resilience layer raises."""


class TransientServiceError(ResilienceError):
    """A retryable remote failure, carrying its cloud error code.

    Raised by fault injection (and by real transports, were one
    plugged in) *before* the remote operation takes effect, so a
    retry is always safe.
    """

    def __init__(self, code: str, message: str = ""):
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}" if message else code)


class CallTimeout(TransientServiceError):
    """A single call exceeded its transport timeout."""

    def __init__(self, message: str = "the call timed out"):
        super().__init__("RequestTimeout", message)


class DeadlineExceeded(ResilienceError):
    """The per-call deadline expired before the call could complete."""


class CircuitOpenError(ResilienceError):
    """The circuit breaker for this target is open: fail fast."""

    def __init__(self, target: str):
        self.target = target
        super().__init__(f"circuit open for {target!r}")


class RetriesExhausted(ResilienceError):
    """Every attempt failed transiently; the caller must degrade.

    Carries the last underlying error so quarantine / checkpoint
    logic can report what it gave up on.
    """

    def __init__(self, attempts: int, last: Exception | None = None):
        self.attempts = attempts
        self.last = last
        detail = f" (last: {last})" if last is not None else ""
        super().__init__(f"gave up after {attempts} attempt(s){detail}")
