"""Seeded fault injection for the two remote dependencies.

The paper's pipelines talk to flaky services: the alignment loop runs
differential traces against the *real* cloud (§4.3) and extraction
prompts an LLM repeatedly (§4.2).  The chaos layer reproduces the
failure taxonomy of those services deterministically, so the retry /
degradation machinery is exercised by ordinary test runs:

- cloud side (:class:`ChaosProxy`): ``RequestLimitExceeded``
  throttling, transient ``InternalError`` 5xx, call timeouts, and
  eventual-consistency lag (a just-created resource briefly invisible
  to describes);
- model side (:class:`ChaosLLM`): transient overload errors and
  truncated completions that fail to parse.

All injection decisions come from a seeded hash keyed by call
position, so a chaotic run is exactly reproducible, and all faults are
injected *before* the wrapped operation executes — retrying an
injected fault is always safe (no at-most-once hazard).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from ..interpreter.errors import ApiResponse
from .errors import TransientServiceError
from .policy import seeded_fraction

#: Environment variable selecting a chaos profile for entry points
#: that were not given one explicitly (used by the CI chaos job).
CHAOS_ENV_VAR = "REPRO_CHAOS_PROFILE"


@dataclass(frozen=True)
class ChaosProfile:
    """Per-fault-class injection rates for one named regime."""

    name: str
    #: Cloud-side rates (per invocation).
    throttle: float = 0.0
    transient_error: float = 0.0
    timeout: float = 0.0
    consistency_lag: float = 0.0
    #: How many proxy invocations a lagged resource stays invisible.
    max_lag_steps: int = 2
    #: Model-side rates (per generation / diagnosis call).
    llm_transient: float = 0.0
    llm_truncation: float = 0.0

    @property
    def active(self) -> bool:
        return any(
            (
                self.throttle,
                self.transient_error,
                self.timeout,
                self.consistency_lag,
                self.llm_transient,
                self.llm_truncation,
            )
        )


OFF_PROFILE = ChaosProfile(name="off")

#: Everyday weather: occasional throttles and blips every layer must
#: absorb without changing any pipeline outcome.
MILD_PROFILE = ChaosProfile(
    name="mild",
    throttle=0.04,
    transient_error=0.03,
    timeout=0.02,
    consistency_lag=0.05,
    llm_transient=0.05,
    llm_truncation=0.08,
)

#: A bad day: heavy throttling plus a model that truncates most
#: completions — some resources fail generation persistently and must
#: be quarantined rather than crash the run.
HOSTILE_PROFILE = ChaosProfile(
    name="hostile",
    throttle=0.15,
    transient_error=0.10,
    timeout=0.08,
    consistency_lag=0.15,
    llm_transient=0.20,
    llm_truncation=0.75,
)

PROFILES = {
    profile.name: profile
    for profile in (OFF_PROFILE, MILD_PROFILE, HOSTILE_PROFILE)
}


def chaos_profile(name: str) -> ChaosProfile:
    """Look up a named profile (``off`` / ``mild`` / ``hostile``)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {name!r}; "
            f"expected one of {sorted(PROFILES)}"
        ) from None


def resolve_profile(value: "ChaosProfile | str | None") -> ChaosProfile:
    """Normalize a chaos argument: profile, name, or None (env/off)."""
    if isinstance(value, ChaosProfile):
        return value
    if isinstance(value, str):
        return chaos_profile(value)
    return chaos_profile(os.environ.get(CHAOS_ENV_VAR, "off"))


class ChaosEngine:
    """The seeded decision core shared by both chaos wrappers."""

    def __init__(self, profile: ChaosProfile, seed: int = 23):
        self.profile = profile
        self.seed = seed
        #: Injected fault counts by class, for visibility.
        self.injected: dict[str, int] = {}
        # One engine may serve several sharded proxies concurrently;
        # decisions are pure functions of (seed, key), only this
        # counter needs guarding.
        self._lock = threading.Lock()

    def decide(self, rate: float, *key: object) -> bool:
        return rate > 0 and seeded_fraction(self.seed, *key) < rate

    def fraction(self, *key: object) -> float:
        return seeded_fraction(self.seed, *key)

    def count(self, fault_class: str) -> None:
        with self._lock:
            self.injected[fault_class] = (
                self.injected.get(fault_class, 0) + 1
            )


class ChaosProxy:
    """Wraps a cloud backend and injects its failure taxonomy.

    Implements the same backend surface as :class:`ReferenceCloud` and
    :class:`Emulator` (``invoke`` / ``reset`` / ``supports`` /
    ``api_names``), so it can stand between any trace runner and any
    backend.  Faults fire before delegation, so the wrapped backend's
    state never reflects a failed call.
    """

    def __init__(self, inner, engine: ChaosEngine):
        self.inner = inner
        self.engine = engine
        self._calls = 0
        #: id -> proxy call count at which it becomes visible.
        self._invisible_until: dict[str, int] = {}
        # The serving layer drives one proxy from many worker threads;
        # the call counter and lag table are the only shared state.
        self._state_lock = threading.Lock()

    # -- delegated surface -------------------------------------------------

    def api_names(self) -> list[str]:
        return self.inner.api_names()

    def supports(self, api: str) -> bool:
        return self.inner.supports(api)

    def read_only(self, api: str) -> bool:
        return self.inner.read_only(api)

    def reset(self) -> None:
        with self._state_lock:
            self._invisible_until.clear()
        self.inner.reset()

    # -- chaotic dispatch --------------------------------------------------

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        with self._state_lock:
            self._calls += 1
            call = self._calls
        profile, engine = self.engine.profile, self.engine
        if engine.decide(profile.throttle, "throttle", api, call):
            engine.count("throttle")
            return ApiResponse.fail(
                "RequestLimitExceeded", "Request limit exceeded."
            )
        if engine.decide(profile.transient_error, "5xx", api, call):
            engine.count("transient_error")
            return ApiResponse.fail(
                "InternalError",
                "An internal error has occurred. Retry your request.",
            )
        if engine.decide(profile.timeout, "timeout", api, call):
            engine.count("timeout")
            return ApiResponse.fail(
                "RequestTimeout", "The request timed out before completing."
            )
        lagged = self._lagged_reference(params, call)
        if lagged is not None:
            engine.count("consistency_lag")
            return ApiResponse.fail(
                "InvalidResourceID.NotFound",
                f"The ID '{lagged}' does not exist",
            )
        response = self.inner.invoke(api, params)
        self._maybe_lag_created(api, response, call)
        return response

    def _lagged_reference(self, params: dict | None,
                          call: int) -> str | None:
        """The first parameter naming a still-propagating resource."""
        if not self._invisible_until or not params:
            return None
        with self._state_lock:
            for value in params.values():
                if not isinstance(value, str):
                    continue
                visible_at = self._invisible_until.get(value)
                if visible_at is None:
                    continue
                if call < visible_at:
                    return value
                del self._invisible_until[value]
        return None

    def _maybe_lag_created(self, api: str, response: ApiResponse,
                           call: int) -> None:
        """Decide whether a freshly created resource propagates slowly."""
        if not response.success:
            return
        created = response.data.get("id")
        if not isinstance(created, str) or not created:
            return
        profile, engine = self.engine.profile, self.engine
        if engine.decide(profile.consistency_lag, "lag", api, call):
            steps = 1 + int(
                engine.fraction("lagsteps", created)
                * max(1, profile.max_lag_steps)
            )
            with self._state_lock:
                self._invisible_until[created] = call + steps


def _truncate(text: str, fraction: float) -> str:
    """Cut a completion short, the way an interrupted stream does."""
    keep = max(1, int(len(text) * (0.35 + 0.5 * fraction)))
    return text[:keep]


class ChaosLLM:
    """Wraps an LLM client and injects model-side faults.

    Duck-typed to the :class:`~repro.llm.client.LLMClient` protocol
    (plus ``regenerate_clean``, which targeted correction uses).
    Transient overloads surface as :class:`TransientServiceError`
    before the wrapped model runs; truncation corrupts the returned
    text so the caller's parse-and-re-prompt loop sees it.
    """

    def __init__(self, inner, engine: ChaosEngine):
        self.inner = inner
        self.engine = engine
        self._calls = 0

    @property
    def usage(self):
        return self.inner.usage

    @property
    def telemetry(self):
        return getattr(self.inner, "telemetry", None)

    def _check_transient(self, prompt: str, *key: object) -> None:
        profile, engine = self.engine.profile, self.engine
        if engine.decide(profile.llm_transient, "llm5xx", *key):
            engine.count("llm_transient")
            usage = getattr(self.inner, "usage", None)
            if usage is not None:
                usage.record_failure(prompt)
            raise TransientServiceError(
                "ModelOverloaded", "The model is overloaded; retry shortly."
            )

    def generate_spec(self, resource, prompt: str, attempt: int = 0):
        self._calls += 1
        self._check_transient(prompt, resource.name, attempt, self._calls)
        text, report = self.inner.generate_spec(resource, prompt, attempt)
        profile, engine = self.engine.profile, self.engine
        if engine.decide(
            profile.llm_truncation, "truncate", resource.name, attempt,
            self._calls,
        ):
            engine.count("llm_truncation")
            # The parse-and-re-prompt loop accounts the failed request
            # when the truncated text fails to parse.
            text = _truncate(
                text, engine.fraction("cutpoint", resource.name, attempt)
            )
        return text, report

    def regenerate_clean(self, resource, prompt: str):
        self._calls += 1
        self._check_transient(prompt, resource.name, "clean", self._calls)
        return self.inner.regenerate_clean(resource, prompt)

    def diagnose_error_message(self, message: str):
        self._calls += 1
        self._check_transient(message, "diagnose", self._calls)
        return self.inner.diagnose_error_message(message)


# ---------------------------------------------------------------------------
# Kill points: injected process death
# ---------------------------------------------------------------------------

#: The named sites where a :class:`KillSwitch` may end the process.
#: Each sits at a moment where naive persistence would lose or tear
#: state: right after a resource's extraction completes, between the
#: phases of an alignment round, between a transition's WAL append and
#: its registry commit, and halfway through a journal append itself.
KILL_SITES = (
    "post-extraction-of-resource",
    "mid-alignment-round",
    "mid-transition-commit",
    "mid-journal-append",
    # Serve-layer sites (whole-worker death in sharded serving):
    # after a write commits but before its registry version publishes,
    # and mid-append of the shard's write-attempt log (torn half-line).
    "mid-publish",
    "mid-serve-wal-append",
)


class SimulatedCrash(BaseException):
    """An injected process death at a named kill site.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``)
    deliberately: a real ``kill -9`` is not retryable, so no resilience
    wrapper, quarantine handler, or ``except Exception`` anywhere in
    the pipeline may absorb it — it must unwind all the way out, the
    way death does.
    """

    def __init__(self, site: str, hit: int):
        super().__init__(
            f"simulated crash at kill point {site!r} (hit {hit})"
        )
        self.site = site
        self.hit = hit


class KillSwitch:
    """A seeded crash schedule: die at the Nth hit of each named site.

    ``schedule`` maps site name -> which hit of that site is fatal
    (1-based).  The switch fires at most once — after the "process"
    dies, later checks (cleanup paths, ``finally`` blocks) pass
    through, matching a real crash where nothing runs afterwards.
    Hit counting is thread-safe: extraction waves hit
    ``post-extraction-of-resource`` from worker threads.
    """

    def __init__(self, schedule: dict[str, int], stats=None):
        unknown = set(schedule) - set(KILL_SITES)
        if unknown:
            raise ValueError(
                f"unknown kill site(s) {sorted(unknown)}; "
                f"expected one of {list(KILL_SITES)}"
            )
        self.schedule = dict(schedule)
        if stats is None:
            self.stats = ()
        elif isinstance(stats, (list, tuple)):
            self.stats = tuple(stats)
        else:
            self.stats = (stats,)
        self.fired: tuple[str, int] | None = None
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()

    def check(self, site: str) -> None:
        with self._lock:
            hits = self._hits.get(site, 0) + 1
            self._hits[site] = hits
            if self.fired is not None or self.schedule.get(site) != hits:
                return
            self.fired = (site, hits)
            for sink in self.stats:
                sink.crashes_injected += 1
        raise SimulatedCrash(site, hits)

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)


_kill_switch: KillSwitch | None = None


def install_kill_switch(schedule: dict[str, int], stats=None) -> KillSwitch:
    """Arm a global crash schedule; returns the armed switch."""
    global _kill_switch
    switch = (
        schedule
        if isinstance(schedule, KillSwitch)
        else KillSwitch(schedule, stats=stats)
    )
    _kill_switch = switch
    return switch


def clear_kill_switch() -> None:
    """Disarm kill-point injection (always pair with install, in a
    ``finally``)."""
    global _kill_switch
    _kill_switch = None


def kill_point(site: str) -> None:
    """Declare a crashable site; dies here when a switch says so.

    Free when no switch is armed, so the sites stay in production code
    paths permanently rather than behind test-only shims.
    """
    switch = _kill_switch
    if switch is not None:
        switch.check(site)
