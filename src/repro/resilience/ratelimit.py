"""Token-bucket rate limiting on the shared clock abstraction.

Real cloud front doors meter every tenant: a bucket of request tokens
refills at a steady rate, bursts drain it, and an empty bucket answers
``RequestLimitExceeded`` with a hint about when to come back.  The
serving layer applies one bucket per tenant; the same primitive is
usable anywhere the resilience layer already uses the clock (the
bucket, like backoff and breaker cooldowns, never sleeps — it reads
``clock.now()`` and computes, so overload scenarios are deterministic
and instantly testable).
"""

from __future__ import annotations

import threading

from .policy import VirtualClock


class TokenBucket:
    """A classic token bucket over a :class:`VirtualClock`.

    ``rate`` is tokens per clock-second; ``burst`` caps the bucket.
    ``try_take`` never blocks: it either debits and admits, or refuses
    and lets the caller shed with :meth:`retry_after`'s hint — the
    serving layer turns that into a cloud-style throttle response
    rather than queueing unboundedly.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: VirtualClock | None = None,
        initial: float | None = None,
    ):
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self.clock = clock or VirtualClock()
        self._tokens = self.burst if initial is None else float(initial)
        self._refilled_at = self.clock.now()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self.clock.now()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
        self._refilled_at = now

    def configure(self, rate: float, burst: float) -> None:
        """Re-point the bucket at a new rate/burst without resetting.

        Accrued tokens are settled at the *old* rate first, then the
        balance is clamped to the new burst — so the serve layer's
        holistic allocator can re-grant budgets every interval while
        each tenant's in-flight balance stays continuous (no free
        refill, no confiscation beyond the new cap).
        """
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        with self._lock:
            self._refill_locked()
            self.rate = float(rate)
            self.burst = max(1.0, float(burst))
            self._tokens = min(self._tokens, self.burst)

    def try_take(self, amount: float = 1.0) -> bool:
        """Debit ``amount`` tokens if available; never blocks."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Clock-seconds until ``amount`` tokens will be available."""
        with self._lock:
            self._refill_locked()
            deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    @property
    def tokens(self) -> float:
        """The current token balance (after refill accrual)."""
        with self._lock:
            self._refill_locked()
            return self._tokens
