"""Retry policy: exponential backoff, seeded full jitter, deadlines.

Everything here is deterministic and clock-abstracted.  Delays are
drawn from a seeded hash (the same construction the fault models use),
so a retried run is exactly reproducible; time is read from a clock
object, and the default :class:`VirtualClock` *advances instead of
sleeping*, so resilience behaviour — backoff growth, deadline expiry,
breaker cooldowns — is testable without wall-clock waits.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass


def seeded_fraction(seed: int, *key: object) -> float:
    """Deterministic pseudo-random float in [0, 1) for a keyed event."""
    digest = hashlib.sha256(
        ("|".join(str(part) for part in (seed,) + key)).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class VirtualClock:
    """A clock that advances when told to, instead of sleeping.

    The resilience layer only ever reads ``now()`` and calls
    ``sleep()``; under this clock a hostile run with thousands of
    backoff waits completes instantly and deterministically.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        # Concurrent sleepers (wave-parallel extraction) each advance
        # the shared clock; the lock keeps advances from being lost.
        with self._lock:
            self._now += max(0.0, float(seconds))


@dataclass
class Deadline:
    """An absolute point in clock time a call must finish by."""

    clock: VirtualClock
    expires_at: float

    @classmethod
    def after(cls, clock: VirtualClock, seconds: float) -> "Deadline":
        return cls(clock=clock, expires_at=clock.now() + seconds)

    def remaining(self) -> float:
        return self.expires_at - self.clock.now()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """How a caller retries transient failures.

    ``deadline`` bounds one *logical* call — all attempts plus the
    backoff waits between them — in clock seconds; ``None`` disables
    the bound.  ``jitter`` selects full jitter (delay uniform in
    ``[0, ceiling)``, the AWS-recommended scheme) or none (the exact
    exponential ceiling, useful in timing tests).
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: str = "full"  # "full" | "none"
    deadline: float | None = 30.0

    def backoff_ceiling(self, retry_index: int) -> float:
        """The exponential cap for the ``retry_index``-th retry."""
        return min(
            self.max_delay, self.base_delay * self.multiplier**retry_index
        )

    def backoff_delay(self, retry_index: int, seed: int = 0,
                      key: tuple = ()) -> float:
        """The actual wait before the ``retry_index``-th retry."""
        ceiling = self.backoff_ceiling(retry_index)
        if self.jitter == "none":
            return ceiling
        return ceiling * seeded_fraction(seed, "backoff", *key, retry_index)


#: Sensible default for talking to either remote dependency.
DEFAULT_POLICY = RetryPolicy()

#: A policy that never retries — used to express "resilience off".
NO_RETRY_POLICY = RetryPolicy(max_attempts=1, deadline=None)
