"""Resilience accounting: what the retry/degradation machinery did.

Graceful degradation must be visible, not silent — every pipeline
report that absorbs faults carries one of these, so a run that
retried its way to a clean result still shows the weather it went
through.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ResilienceStats:
    """Counters for one pipeline run's resilience activity."""

    #: Individual call attempts made through a resilient wrapper.
    attempts: int = 0
    #: Attempts that were retries of a previous transient failure.
    retries: int = 0
    #: Logical calls abandoned after the full retry budget.
    gave_ups: int = 0
    #: Circuit-breaker closed->open (or half-open->open) transitions.
    breaker_trips: int = 0
    #: Calls cut short because their deadline expired.
    deadline_hits: int = 0
    #: Alignment rounds restarted from checkpoint after a fault.
    round_restarts: int = 0
    #: Resources stubbed out after persistent generation failure.
    quarantined: int = 0
    #: Simulated process deaths raised by an armed kill switch.
    crashes_injected: int = 0
    #: Transient error codes observed, by code.
    faults_seen: dict[str, int] = field(default_factory=dict)

    def record_fault(self, code: str) -> None:
        self.faults_seen[code] = self.faults_seen.get(code, 0) + 1

    def merge(self, other: "ResilienceStats") -> None:
        """Fold another phase's counters into this one."""
        self.attempts += other.attempts
        self.retries += other.retries
        self.gave_ups += other.gave_ups
        self.breaker_trips += other.breaker_trips
        self.deadline_hits += other.deadline_hits
        self.round_restarts += other.round_restarts
        self.quarantined += other.quarantined
        self.crashes_injected += other.crashes_injected
        for code, count in other.faults_seen.items():
            self.faults_seen[code] = self.faults_seen.get(code, 0) + count

    @property
    def clean(self) -> bool:
        """True when the run never saw a fault at all."""
        return not (
            self.retries
            or self.gave_ups
            or self.breaker_trips
            or self.deadline_hits
            or self.round_restarts
            or self.quarantined
            or self.crashes_injected
            or self.faults_seen
        )

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "gave_ups": self.gave_ups,
            "breaker_trips": self.breaker_trips,
            "deadline_hits": self.deadline_hits,
            "round_restarts": self.round_restarts,
            "quarantined": self.quarantined,
            "crashes_injected": self.crashes_injected,
            "faults_seen": dict(self.faults_seen),
        }
