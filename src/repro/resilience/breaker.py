"""Per-resource circuit breakers.

When one resource's remote calls fail persistently, hammering it with
further retries wastes budget and (against a throttling cloud) makes
the weather worse for every other resource.  The breaker trips after a
run of consecutive failures, fails fast while open, lets one probe
through after a cooldown (half-open), and closes again on success.

Time comes from the same clock abstraction the retry policy uses, so
cooldown behaviour is deterministic and instantly testable.
"""

from __future__ import annotations

from .errors import CircuitOpenError
from .policy import VirtualClock
from .stats import ResilienceStats

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of breaker states (``resilience.breaker_state``):
#: ordered by severity so dashboards can threshold on it.
STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """One target's breaker (a resource, an API, a model endpoint)."""

    def __init__(
        self,
        target: str = "",
        failure_threshold: int = 8,
        cooldown: float = 5.0,
        clock: VirtualClock | None = None,
        stats: ResilienceStats | None = None,
        telemetry=None,
    ):
        self.target = target
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock or VirtualClock()
        self.stats = stats
        self.telemetry = telemetry
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0

    def before_call(self) -> None:
        """Gate a call: raise :class:`CircuitOpenError` while open."""
        if self.state == OPEN:
            if self.clock.now() - self.opened_at >= self.cooldown:
                self._set_state(HALF_OPEN)  # admit one probe
            else:
                raise CircuitOpenError(self.target)

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._set_state(CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _set_state(self, state: str) -> None:
        """Transition the breaker, exporting the edge when it moves.

        Every actual change is a structured ``breaker_state`` span
        event (from/to/at, in virtual time), updates the
        ``resilience.breaker_state`` gauge, and — when a serving
        observability plane is attached — lands in the windowed store
        so ``repro top`` can show current breaker states.
        """
        previous = self.state
        if state == previous:
            return
        self.state = state
        if self.telemetry is None:
            return
        now = self.clock.now()
        value = STATE_VALUES[state]
        self.telemetry.event(
            "breaker_state", target=self.target,
            **{"from": previous, "to": state, "at": round(now, 9)},
        )
        self.telemetry.metrics.gauge(
            "resilience.breaker_state", target=self.target
        ).set(value)
        obs = getattr(self.telemetry, "obs", None)
        if obs is not None:
            obs.store.histogram(
                "resilience.breaker_state", target=self.target
            ).record(now, value)

    def _trip(self) -> None:
        self.opened_at = self.clock.now()
        self._set_state(OPEN)
        self.trips += 1
        if self.stats is not None:
            self.stats.breaker_trips += 1
        if self.telemetry is not None:
            self.telemetry.event("breaker_trip", target=self.target)


class BreakerBoard:
    """The per-target breaker registry one resilient client holds."""

    def __init__(
        self,
        failure_threshold: int = 8,
        cooldown: float = 5.0,
        clock: VirtualClock | None = None,
        stats: ResilienceStats | None = None,
        telemetry=None,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock or VirtualClock()
        self.stats = stats
        self.telemetry = telemetry
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, target: str) -> CircuitBreaker:
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(
                target=target,
                failure_threshold=self.failure_threshold,
                cooldown=self.cooldown,
                clock=self.clock,
                stats=self.stats,
                telemetry=self.telemetry,
            )
            self._breakers[target] = breaker
        return breaker

    @property
    def open_targets(self) -> list[str]:
        return sorted(
            name
            for name, breaker in self._breakers.items()
            if breaker.state == OPEN
        )
