"""``retry_call``: the one retry loop everything else reuses.

Retries only :class:`TransientServiceError` (or whatever ``retryable``
says), waits exponential-backoff-with-seeded-full-jitter between
attempts, honours a per-call deadline, and cooperates with an optional
circuit breaker.  All activity lands in a :class:`ResilienceStats`.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from .breaker import CircuitBreaker
from .errors import (
    DeadlineExceeded,
    RetriesExhausted,
    TransientServiceError,
)
from .policy import Deadline, RetryPolicy, VirtualClock
from .stats import ResilienceStats

T = TypeVar("T")


def retry_call(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    clock: VirtualClock | None = None,
    seed: int = 0,
    key: tuple = (),
    stats: ResilienceStats | None = None,
    breaker: CircuitBreaker | None = None,
    retryable: Callable[[Exception], bool] | None = None,
    telemetry=None,
) -> T:
    """Call ``fn`` until it succeeds, retrying transient failures.

    ``telemetry`` (duck-typed, optional) receives one span event per
    retry / give-up / deadline hit, mirroring the ``stats`` counters.

    Raises:
        DeadlineExceeded: the per-call deadline ran out between
            attempts (counted in ``stats.deadline_hits``).
        RetriesExhausted: every attempt in the budget failed
            transiently (counted in ``stats.gave_ups``).
        CircuitOpenError: the breaker rejected the call outright.
        Exception: any non-retryable error propagates unchanged.
    """
    policy = policy or RetryPolicy()
    clock = clock or VirtualClock()
    stats = stats if stats is not None else ResilienceStats()
    is_retryable = retryable or (
        lambda error: isinstance(error, TransientServiceError)
    )
    deadline = (
        Deadline.after(clock, policy.deadline)
        if policy.deadline is not None
        else None
    )
    last: Exception | None = None
    for attempt in range(policy.max_attempts):
        if breaker is not None:
            breaker.before_call()
        if deadline is not None and deadline.expired():
            stats.deadline_hits += 1
            if telemetry is not None:
                telemetry.event("deadline_hit", target=str(key))
            raise DeadlineExceeded(
                f"deadline expired after {attempt} attempt(s)"
            )
        stats.attempts += 1
        if attempt > 0:
            stats.retries += 1
            if telemetry is not None:
                telemetry.event(
                    "retry", target=str(key), attempt=attempt,
                    code=getattr(last, "code", ""),
                )
        try:
            result = fn()
        except Exception as error:  # noqa: BLE001 - classified below
            if not is_retryable(error):
                if breaker is not None:
                    breaker.record_failure()
                raise
            last = error
            if isinstance(error, TransientServiceError):
                stats.record_fault(error.code)
            if breaker is not None:
                breaker.record_failure()
            # The attempt itself may have burned virtual time — e.g.
            # network RTT charged by the emulated WAN before the fault
            # surfaced.  That time counts against the call deadline,
            # so check it here rather than only before the next
            # attempt: a deadline that died in flight beats both the
            # backoff and the retries-exhausted verdict.
            if deadline is not None and deadline.expired():
                stats.deadline_hits += 1
                if telemetry is not None:
                    telemetry.event("deadline_hit", target=str(key))
                raise DeadlineExceeded(
                    f"deadline expired during attempt {attempt + 1}"
                ) from error
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.backoff_delay(attempt, seed=seed, key=key)
            if deadline is not None and delay >= deadline.remaining():
                stats.deadline_hits += 1
                if telemetry is not None:
                    telemetry.event("deadline_hit", target=str(key))
                raise DeadlineExceeded(
                    f"deadline would expire during backoff "
                    f"(attempt {attempt + 1})"
                ) from error
            clock.sleep(delay)
            continue
        if breaker is not None:
            breaker.record_success()
        # A success that lands after the deadline is still a timeout
        # to the caller: the network (virtual) latency the call paid
        # counts against its budget even on the happy path.  The
        # breaker keeps the success — the dependency answered; the
        # budget was the caller's problem.
        if deadline is not None and deadline.expired():
            stats.deadline_hits += 1
            if telemetry is not None:
                telemetry.event("deadline_hit", target=str(key),
                                late_success=True)
            raise DeadlineExceeded(
                f"response arrived after the deadline "
                f"(attempt {attempt + 1})"
            )
        return result
    stats.gave_ups += 1
    if telemetry is not None:
        telemetry.event(
            "gave_up", target=str(key), code=getattr(last, "code", ""),
        )
    raise RetriesExhausted(policy.max_attempts, last)
