"""Resilient client wrappers for the two remote dependencies.

:class:`ResilientLLM` wraps any LLM client; :class:`ResilientBackend`
wraps any cloud backend.  Both absorb the transient slice of the
failure taxonomy with the shared retry machinery — exponential backoff
with seeded full jitter, per-call deadlines, per-target circuit
breakers — and account for everything in a :class:`ResilienceStats`.

A *terminal* failure (an application-level error response, a
non-transient exception) passes through unchanged: resilience must be
invisible when the weather is calm, and with chaos off these wrappers
are never even constructed.
"""

from __future__ import annotations

from ..interpreter.errors import ApiResponse
from .breaker import BreakerBoard
from .errors import (
    CircuitOpenError,
    is_notfound_code,
    is_transient_code,
)
from .policy import Deadline, RetryPolicy, VirtualClock
from .retry import retry_call
from .stats import ResilienceStats


class ResilientLLM:
    """Retries transient model failures around any LLM client.

    Truncated completions are *not* retried here: they surface as
    parse failures, and the existing parse-and-re-prompt loop (§4.2)
    is the correct recovery path for them.  Each resource gets its own
    circuit breaker, so one persistently failing resource cannot
    starve the rest of the extraction pass.
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy | None = None,
        stats: ResilienceStats | None = None,
        clock: VirtualClock | None = None,
        seed: int = 0,
        telemetry=None,
    ):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.stats = stats if stats is not None else ResilienceStats()
        self.clock = clock or VirtualClock()
        self.seed = seed
        # Fall back to whatever sink the wrapped client already
        # carries, so wrapping never silences an instrumented model.
        self.telemetry = (
            telemetry if telemetry is not None
            else getattr(inner, "telemetry", None)
        )
        self.breakers = BreakerBoard(
            clock=self.clock, stats=self.stats, telemetry=self.telemetry
        )

    @property
    def usage(self):
        return self.inner.usage

    def _call(self, fn, target: str, key: tuple):
        return retry_call(
            fn,
            policy=self.policy,
            clock=self.clock,
            seed=self.seed,
            key=key,
            stats=self.stats,
            breaker=self.breakers.get(target),
            telemetry=self.telemetry,
        )

    def generate_spec(self, resource, prompt: str, attempt: int = 0):
        return self._call(
            lambda: self.inner.generate_spec(resource, prompt, attempt),
            target=resource.name,
            key=("generate", resource.name, attempt),
        )

    def regenerate_clean(self, resource, prompt: str):
        return self._call(
            lambda: self.inner.regenerate_clean(resource, prompt),
            target=resource.name,
            key=("regenerate", resource.name),
        )

    def diagnose_error_message(self, message: str):
        return self._call(
            lambda: self.inner.diagnose_error_message(message),
            target="_diagnosis",
            key=("diagnose", message[:40]),
        )


class ResilientBackend:
    """Retries transient failure *responses* around any cloud backend.

    Cloud backends report failures as :class:`ApiResponse` values, not
    exceptions, so this wrapper classifies response codes: transient
    codes retry with backoff; a not-found directly after resource
    creation may be eventual-consistency lag and is retried a small
    bounded number of times (waiter semantics — a genuinely missing
    resource still comes back not-found, just a couple of attempts
    later); any other failure is the backend's real answer and returns
    unchanged.  ``invoke`` never raises: when the budget runs out the
    last response is returned and the give-up is accounted, so a trace
    runner degrades instead of crashing.
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy | None = None,
        stats: ResilienceStats | None = None,
        clock: VirtualClock | None = None,
        seed: int = 0,
        consistency_retries: int = 3,
        telemetry=None,
    ):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.stats = stats if stats is not None else ResilienceStats()
        self.clock = clock or VirtualClock()
        self.seed = seed
        self.consistency_retries = consistency_retries
        self.telemetry = telemetry
        self.breakers = BreakerBoard(
            clock=self.clock, stats=self.stats, telemetry=telemetry
        )
        self._seq = 0

    # -- delegated surface -------------------------------------------------

    def api_names(self) -> list[str]:
        return self.inner.api_names()

    def supports(self, api: str) -> bool:
        return self.inner.supports(api)

    def read_only(self, api: str) -> bool:
        return self.inner.read_only(api)

    def reset(self) -> None:
        self.inner.reset()

    # -- resilient dispatch ------------------------------------------------

    def invoke(self, api: str, params: dict | None = None) -> ApiResponse:
        self._seq += 1
        breaker = self.breakers.get(api)
        try:
            breaker.before_call()
        except CircuitOpenError:
            return ApiResponse.fail(
                "ServiceUnavailable", f"circuit open for {api}"
            )
        deadline = (
            Deadline.after(self.clock, self.policy.deadline)
            if self.policy.deadline is not None
            else None
        )
        transient_tries = 0
        notfound_tries = 0
        response = ApiResponse.fail("InternalError", "no attempt made")
        while True:
            self.stats.attempts += 1
            response = self.inner.invoke(api, params)
            if response.success:
                breaker.record_success()
                return response
            code = response.error_code
            if is_transient_code(code):
                self.stats.record_fault(code)
                breaker.record_failure()
                transient_tries += 1
                if transient_tries >= self.policy.max_attempts:
                    self.stats.gave_ups += 1
                    if self.telemetry is not None:
                        self.telemetry.event("gave_up", api=api, code=code)
                    return response
            elif is_notfound_code(code) and (
                notfound_tries < self.consistency_retries
            ):
                # Possible eventual-consistency lag: wait it out.
                notfound_tries += 1
            else:
                # An application-level failure is the real answer; the
                # transport worked, so the breaker sees a success.
                breaker.record_success()
                return response
            retry_index = transient_tries + notfound_tries - 1
            delay = self.policy.backoff_delay(
                max(0, retry_index), seed=self.seed, key=(api, self._seq)
            )
            if deadline is not None and delay >= deadline.remaining():
                self.stats.deadline_hits += 1
                if self.telemetry is not None:
                    self.telemetry.event("deadline_hit", api=api, code=code)
                return response
            self.clock.sleep(delay)
            self.stats.retries += 1
            if self.telemetry is not None:
                self.telemetry.event("retry", api=api, code=code)
