"""Doc-to-spec synthesis: how the (simulated) LLM writes SM specs.

This module is the deterministic "knowledge" core of the simulated
LLM: given one wrangled resource's documentation, produce the SM spec
text in the grammar of Fig. 1.  Behaviour rules compile to the
grammar's primitives; cross-resource list maintenance compiles to
``call``s into *helper transitions* on the target SM, which are left
as requirements for the specification-linking pass (§4.2) — the same
stub-and-patch structure the paper describes for incremental
extraction.

Fault injection (see :mod:`repro.llm.faults`) perturbs the rule list
before compilation, so every downstream artifact — spec text, parsed
AST, emulator behaviour — reflects the generation quality of the
chosen mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..docs.model import ApiDoc, AttributeDoc, ResourceDoc, Rule
from ..spec import ast
from ..spec.serializer import serialize_sm
from ..spec.types import (
    ANY,
    MAP,
    Param,
    StateType,
    enum_of,
    sm_of,
)
from .faults import FaultDecision, FaultModel, PERFECT_PROFILE


def attribute_state_type(attribute: AttributeDoc) -> StateType:
    """Map a documented attribute type onto the spec type system."""
    if attribute.type == "Enum":
        if attribute.enum_values:
            return enum_of(*attribute.enum_values)
        return StateType("enum")
    if attribute.type == "Reference":
        return sm_of(attribute.ref) if attribute.ref else StateType("sm")
    table = {
        "String": StateType("str"),
        "Integer": StateType("int"),
        "Boolean": StateType("bool"),
        "List": StateType("list"),
        "Map": MAP,
    }
    return table.get(attribute.type, ANY)


def param_state_type(param) -> StateType:
    """Map a documented request parameter type onto the spec type system."""
    if param.type == "Reference":
        return sm_of(param.ref) if param.ref else StateType("sm")
    table = {
        "String": StateType("str"),
        "Integer": StateType("int"),
        "Boolean": StateType("bool"),
        "List": StateType("list"),
        "Map": MAP,
    }
    return table.get(param.type, ANY)


def track_helper_name(list_attr: str) -> str:
    return f"_Track_{list_attr}"


def untrack_helper_name(list_attr: str) -> str:
    return f"_Untrack_{list_attr}"


@dataclass(frozen=True)
class HelperRequirement:
    """A helper transition a generated SM needs on another SM.

    ``target`` is the SM type that must carry the helper; during
    incremental extraction it may not have been generated yet, so the
    requirement is recorded and patched in by the linking pass.
    """

    target: str
    name: str
    list_attr: str
    op: str  # 'track' | 'untrack'

    def build(self) -> ast.Transition:
        value_param = Param("value", ANY)
        list_name = self.list_attr
        if self.op == "track":
            body: tuple[ast.Stmt, ...] = (
                ast.Write(
                    list_name,
                    ast.Func(
                        "append", (ast.Name(list_name), ast.Name("value"))
                    ),
                ),
            )
        else:
            body = (
                ast.Write(
                    list_name,
                    ast.Func(
                        "remove", (ast.Name(list_name), ast.Name("value"))
                    ),
                ),
            )
        return ast.Transition(
            name=self.name, params=(value_param,), body=body, category="modify"
        )


@dataclass
class GenerationReport:
    """What one resource's generation produced besides the text."""

    resource: str
    helpers_needed: list[HelperRequirement] = field(default_factory=list)
    faults: dict[str, FaultDecision] = field(default_factory=dict)
    dropped_attributes: list[str] = field(default_factory=list)
    #: Transient model failures absorbed while generating this resource.
    transient_retries: int = 0
    #: True when generation failed persistently and this resource's
    #: spec is a stub (see extraction quarantine).
    quarantined: bool = False

    @property
    def clean(self) -> bool:
        return (
            not self.quarantined
            and not self.dropped_attributes
            and all(decision.clean for decision in self.faults.values())
        )


def _literal(value: object) -> ast.Expr:
    return ast.Literal(value)


def _exists(name: str) -> ast.Pred:
    return ast.Truthy(ast.Func("exists", (ast.Name(name),)))


def _guarded(pred: ast.Pred, param_name: str, optional: bool) -> ast.Pred:
    """Wrap a param-check so absent optional params pass it."""
    if not optional:
        return pred
    return ast.Or(ast.Not(_exists(param_name)), pred)


class RuleCompiler:
    """Compiles documented behaviour rules into SM statements."""

    def __init__(self, resource: ResourceDoc, api: ApiDoc,
                 known_attributes: set[str]):
        self.resource = resource
        self.api = api
        self.known_attributes = known_attributes
        self.param_names = {p.name for p in api.params}
        self.optional_params = {
            p.name for p in api.params if not p.required
        }
        self.param_refs = {p.name: p.ref for p in api.params if p.ref}
        self.attr_refs = {
            a.name: a.ref for a in resource.attributes if a.ref
        }
        self.helpers: list[HelperRequirement] = []

    def _attr_expr(self, attr: str) -> ast.Expr:
        """Reference a state attribute unambiguously.

        When a request parameter shares the attribute's name (common:
        ``ModifyVpcAttribute(enable_dns_support)`` vs the attribute
        ``enable_dns_support``), a bare name would resolve to the
        parameter; ``self.attr`` pins the state variable.
        """
        if attr in self.param_names:
            return ast.Attr(ast.SelfRef(), attr)
        return ast.Name(attr)

    def compile(self, behaviour: Rule, code_override: str = "") -> list[ast.Stmt]:
        kind = behaviour.kind
        handler = getattr(self, f"_compile_{kind}", None)
        if handler is None:
            raise ValueError(f"no compilation rule for {kind}")
        statements = handler(behaviour)
        if code_override:
            statements = [
                ast.Assert(stmt.pred, code_override, stmt.message)
                if isinstance(stmt, ast.Assert)
                else stmt
                for stmt in statements
            ]
        return statements

    # -- effects -----------------------------------------------------------

    def _skip_unknown_attr(self, attr: str) -> bool:
        """Effects on attributes the generator dropped are elided too."""
        return attr not in self.known_attributes

    def _compile_set_attr_param(self, behaviour: Rule) -> list[ast.Stmt]:
        attr, param = str(behaviour["attr"]), str(behaviour["param"])
        if self._skip_unknown_attr(attr):
            return []
        write = ast.Write(attr, ast.Name(param))
        if param in self.optional_params:
            return [ast.If(_exists(param), (write,))]
        return [write]

    def _compile_set_attr_const(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        if self._skip_unknown_attr(attr):
            return []
        return [ast.Write(attr, _literal(behaviour["value"]))]

    def _compile_set_attr_fresh(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        if self._skip_unknown_attr(attr):
            return []
        return [
            ast.Write(attr, ast.Func("new_id", (_literal(attr),)))
        ]

    def _compile_clear_attr(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        if self._skip_unknown_attr(attr):
            return []
        return [ast.Write(attr, _literal(None))]

    def _compile_read_attr(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        if self._skip_unknown_attr(attr):
            return []
        return [ast.Read(attr, attr)]

    def _compile_link_ref(self, behaviour: Rule) -> list[ast.Stmt]:
        attr, param = str(behaviour["attr"]), str(behaviour["param"])
        if self._skip_unknown_attr(attr):
            return []
        write = ast.Write(attr, ast.Name(param))
        if param in self.optional_params:
            return [ast.If(_exists(param), (write,))]
        return [write]

    def _compile_call_ref(self, behaviour: Rule) -> list[ast.Stmt]:
        param = str(behaviour["param"])
        call = ast.Call(
            ast.Name(param), str(behaviour["transition"]), (ast.SelfRef(),)
        )
        if param in self.optional_params:
            return [ast.If(_exists(param), (call,))]
        return [call]

    def _compile_call_attr(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        call = ast.Call(
            ast.Name(attr), str(behaviour["transition"]), (ast.SelfRef(),)
        )
        return [ast.If(_exists(attr), (call,))]

    def _compile_append_to_attr(self, behaviour: Rule) -> list[ast.Stmt]:
        attr, param = str(behaviour["attr"]), str(behaviour["param"])
        if self._skip_unknown_attr(attr):
            return []
        write = ast.Write(
            attr, ast.Func("append", (ast.Name(attr), ast.Name(param)))
        )
        if param in self.optional_params:
            return [ast.If(_exists(param), (write,))]
        return [write]

    def _compile_remove_from_attr(self, behaviour: Rule) -> list[ast.Stmt]:
        attr, param = str(behaviour["attr"]), str(behaviour["param"])
        if self._skip_unknown_attr(attr):
            return []
        return [
            ast.Write(
                attr, ast.Func("remove", (ast.Name(attr), ast.Name(param)))
            )
        ]

    def _compile_map_put(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        if self._skip_unknown_attr(attr):
            return []
        return [
            ast.Write(
                attr,
                ast.Func(
                    "put",
                    (
                        ast.Name(attr),
                        ast.Name(str(behaviour["key_param"])),
                        ast.Name(str(behaviour["value_param"])),
                    ),
                ),
            )
        ]

    def _compile_map_remove(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        if self._skip_unknown_attr(attr):
            return []
        return [
            ast.Write(
                attr,
                ast.Func(
                    "drop",
                    (ast.Name(attr), ast.Name(str(behaviour["key_param"]))),
                ),
            )
        ]

    def _compile_map_read(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        if self._skip_unknown_attr(attr):
            return []
        return [
            ast.Emit(
                "value",
                ast.Func(
                    "lookup",
                    (ast.Name(attr), ast.Name(str(behaviour["key_param"]))),
                ),
            )
        ]

    def _compile_track_in_ref(self, behaviour: Rule) -> list[ast.Stmt]:
        param = str(behaviour["param"])
        list_attr = str(behaviour["list_attr"])
        target = self.param_refs.get(param, "")
        helper = HelperRequirement(
            target=target,
            name=track_helper_name(list_attr),
            list_attr=list_attr,
            op="track",
        )
        self.helpers.append(helper)
        call = ast.Call(
            ast.Name(param), helper.name,
            (ast.Name(str(behaviour["source"])),),
        )
        if param in self.optional_params:
            return [ast.If(_exists(param), (call,))]
        return [call]

    def _compile_untrack_in_attr(self, behaviour: Rule) -> list[ast.Stmt]:
        attr = str(behaviour["attr"])
        list_attr = str(behaviour["list_attr"])
        target = self.attr_refs.get(attr, "")
        helper = HelperRequirement(
            target=target,
            name=untrack_helper_name(list_attr),
            list_attr=list_attr,
            op="untrack",
        )
        self.helpers.append(helper)
        call = ast.Call(
            ast.Name(attr), helper.name,
            (ast.Name(str(behaviour["source"])),),
        )
        return [ast.If(_exists(attr), (call,))]

    # -- checks -------------------------------------------------------------

    def _assert(self, pred: ast.Pred, behaviour: Rule) -> list[ast.Stmt]:
        return [ast.Assert(pred, behaviour.error_code or "OperationFailure")]

    def _compile_require_param(self, behaviour: Rule) -> list[ast.Stmt]:
        return self._assert(_exists(str(behaviour["param"])), behaviour)

    def _compile_require_one_of(self, behaviour: Rule) -> list[ast.Stmt]:
        param = str(behaviour["param"])
        values = tuple(behaviour["values"])  # type: ignore[arg-type]
        members = ast.ListExpr(tuple(_literal(v) for v in values))
        pred = _guarded(
            ast.Compare("in", ast.Name(param), members), param, True
        )
        return self._assert(pred, behaviour)

    def _compile_check_valid_cidr(self, behaviour: Rule) -> list[ast.Stmt]:
        param = str(behaviour["param"])
        pred = _guarded(
            ast.Truthy(ast.Func("valid_cidr", (ast.Name(param),))),
            param,
            param in self.optional_params,
        )
        return self._assert(pred, behaviour)

    def _compile_check_prefix_between(self, behaviour: Rule) -> list[ast.Stmt]:
        param = str(behaviour["param"])
        prefix = ast.Func("prefix_len", (ast.Name(param),))
        in_range = ast.And(
            ast.Compare(">=", prefix, _literal(int(behaviour["lo"]))),  # type: ignore[arg-type]
            ast.Compare("<=", prefix, _literal(int(behaviour["hi"]))),  # type: ignore[arg-type]
        )
        pred = _guarded(in_range, param, param in self.optional_params)
        return self._assert(pred, behaviour)

    def _compile_check_cidr_within(self, behaviour: Rule) -> list[ast.Stmt]:
        param = str(behaviour["param"])
        ref = str(behaviour["ref"])
        pred = ast.Truthy(
            ast.Func(
                "cidr_within",
                (ast.Name(param),
                 ast.Attr(ast.Name(ref), str(behaviour["ref_attr"]))),
            )
        )
        return self._assert(pred, behaviour)

    def _compile_check_no_overlap(self, behaviour: Rule) -> list[ast.Stmt]:
        param = str(behaviour["param"])
        ref = str(behaviour["ref"])
        pred = ast.Not(
            ast.Truthy(
                ast.Func(
                    "cidr_overlaps_any",
                    (ast.Name(param),
                     ast.Attr(ast.Name(ref), str(behaviour["list_attr"]))),
                )
            )
        )
        return self._assert(pred, behaviour)

    def _compile_check_attr_is(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Compare(
            "==", self._attr_expr(str(behaviour["attr"])),
            _literal(behaviour["value"]),
        )
        return self._assert(pred, behaviour)

    def _compile_check_attr_is_not(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Compare(
            "!=", self._attr_expr(str(behaviour["attr"])),
            _literal(behaviour["value"]),
        )
        return self._assert(pred, behaviour)

    def _compile_check_attr_set(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Truthy(
            ast.Func("exists", (self._attr_expr(str(behaviour["attr"])),))
        )
        return self._assert(pred, behaviour)

    def _compile_check_attr_unset(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Not(
            ast.Truthy(
                ast.Func("exists",
                         (self._attr_expr(str(behaviour["attr"])),))
            )
        )
        return self._assert(pred, behaviour)

    def _compile_check_list_empty(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Compare(
            "==",
            ast.Func("len", (self._attr_expr(str(behaviour["attr"])),)),
            _literal(0),
        )
        return self._assert(pred, behaviour)

    def _compile_check_attr_matches_ref(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Compare(
            "==",
            self._attr_expr(str(behaviour["attr"])),
            ast.Attr(ast.Name(str(behaviour["ref"])),
                     str(behaviour["ref_attr"])),
        )
        return self._assert(pred, behaviour)

    def _compile_check_ref_attr_is(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Compare(
            "==",
            ast.Attr(ast.Name(str(behaviour["ref"])),
                     str(behaviour["ref_attr"])),
            _literal(behaviour["value"]),
        )
        return self._assert(pred, behaviour)

    def _compile_check_in_list(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Truthy(
            ast.Func(
                "contains",
                (self._attr_expr(str(behaviour["attr"])),
                 ast.Name(str(behaviour["param"]))),
            )
        )
        return self._assert(pred, behaviour)

    def _compile_check_not_in_list(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Not(
            ast.Truthy(
                ast.Func(
                    "contains",
                    (self._attr_expr(str(behaviour["attr"])),
                     ast.Name(str(behaviour["param"]))),
                )
            )
        )
        return self._assert(pred, behaviour)

    def _compile_check_in_map(self, behaviour: Rule) -> list[ast.Stmt]:
        pred = ast.Truthy(
            ast.Func(
                "contains",
                (self._attr_expr(str(behaviour["attr"])),
                 ast.Name(str(behaviour["key_param"]))),
            )
        )
        return self._assert(pred, behaviour)

    def _compile_check_param_implies_attr(self, behaviour: Rule) -> list[ast.Stmt]:
        param = str(behaviour["param"])
        pred = ast.Or(
            ast.Or(
                ast.Not(_exists(param)),
                ast.Compare("!=", ast.Name(param),
                            _literal(behaviour["value"])),
            ),
            ast.Compare("==", self._attr_expr(str(behaviour["attr"])),
                        _literal(behaviour["attr_value"])),
        )
        return self._assert(pred, behaviour)


class SpecSynthesizer:
    """Generates SM spec text for one resource at a time.

    This is the knowledge core behind :class:`repro.llm.SimulatedLLM`:
    deterministic translation of wrangled documentation into the
    grammar, perturbed by the active fault model.
    """

    def __init__(self, fault_model: FaultModel | None = None):
        self.fault_model = fault_model or FaultModel(PERFECT_PROFILE)

    def synthesize_sm(
        self, res: ResourceDoc, attempt: int = 0
    ) -> tuple[ast.SMSpec, GenerationReport]:
        """Build the SM AST for one resource and report what happened."""
        report = GenerationReport(resource=res.name)
        report.dropped_attributes = self.fault_model.decide_attributes(
            res.name, [a.name for a in res.attributes]
        )
        kept_attributes = [
            a for a in res.attributes
            if a.name not in report.dropped_attributes
        ]
        spec = ast.SMSpec(name=res.name, parent=res.parent,
                          doc=res.description)
        for attribute in kept_attributes:
            default: ast.Expr | None = None
            if attribute.default is not None:
                default = ast.Literal(attribute.default)
            spec.states.append(
                ast.StateDecl(
                    attribute.name,
                    attribute_state_type(attribute),
                    default,
                )
            )
        known = {a.name for a in kept_attributes}
        for api in res.apis:
            transition, decision = self._synthesize_transition(
                res, api, known, report, attempt
            )
            spec.transitions[transition.name] = transition
            report.faults[api.name] = decision
        return spec, report

    def synthesize_text(
        self, res: ResourceDoc, attempt: int = 0
    ) -> tuple[str, GenerationReport]:
        """Generate the SM as concrete spec text."""
        spec, report = self.synthesize_sm(res, attempt=attempt)
        return serialize_sm(spec), report

    def _synthesize_transition(
        self,
        res: ResourceDoc,
        api: ApiDoc,
        known_attributes: set[str],
        report: GenerationReport,
        attempt: int,
    ) -> tuple[ast.Transition, FaultDecision]:
        decision = self.fault_model.decide_api(
            res.name,
            api.name,
            api.documented_rules(),
            api.category,
            sorted(known_attributes),
            attempt=attempt,
        )
        compiler = RuleCompiler(res, api, known_attributes)
        checks: list[ast.Stmt] = []
        effects: list[ast.Stmt] = []
        for behaviour in api.documented_rules():
            if behaviour in decision.dropped_rules:
                continue
            code_override = ""
            if behaviour in decision.miscoded_rules:
                code_override = self.fault_model.generic_code()
            statements = compiler.compile(behaviour, code_override)
            if behaviour.is_check:
                checks.extend(statements)
            else:
                effects.extend(statements)
        if decision.describe_write_attr:
            effects.append(
                ast.Write(decision.describe_write_attr, ast.Literal(None))
            )
        report.helpers_needed.extend(compiler.helpers)
        params = tuple(
            Param(p.name, param_state_type(p)) for p in api.params
        )
        transition = ast.Transition(
            name=api.name,
            params=params,
            body=tuple(checks + effects),
            category=api.category,
        )
        return transition, decision
