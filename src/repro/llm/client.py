"""The LLM client abstraction and its offline simulation.

The paper's prototype prompts Gemini 2.5 Pro with cloud documentation
and collects SM specs (or raw emulator code for the D2C baseline).
This environment has no model API, so :class:`SimulatedLLM` stands in:
it consumes the *rendered documentation text* (re-wrangled into one
resource's context, per §4.1), translates it through the deterministic
synthesizer, and perturbs the output according to a fault profile that
reproduces the error taxonomy §5 measured.  Everything downstream —
parsing, checks, linking, alignment, accuracy scoring — consumes the
generated artifacts exactly as it would a real model's output.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Protocol

from ..docs.model import ResourceDoc
from ..docs.prose import parse_rule
from .faults import (
    CONSTRAINED_PROFILE,
    DIRECT_PROFILE,
    FaultModel,
    FaultProfile,
    PERFECT_PROFILE,
    REPROMPT_PROFILE,
)
from .synthesis import GenerationReport, SpecSynthesizer


@dataclass
class LLMUsage:
    """Token accounting, for the cost/latency aspects of §5.

    Failed and retried calls are counted separately in
    ``failed_requests`` — a request that errored or produced an
    unusable completion still consumed (and billed) its prompt
    tokens, so cost accounting must not hide them.
    """

    requests: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    failed_requests: int = 0
    # Wave-parallel extraction records from several threads at once.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, prompt: str, completion: str) -> None:
        with self._lock:
            self.requests += 1
            # The standard rough heuristic of ~4 characters per token.
            self.prompt_tokens += max(1, len(prompt) // 4)
            self.completion_tokens += max(1, len(completion) // 4)

    def record_failure(self, prompt: str) -> None:
        """A call that never returned a usable completion."""
        with self._lock:
            self.requests += 1
            self.failed_requests += 1
            self.prompt_tokens += max(1, len(prompt) // 4)

    def as_dict(self) -> dict:
        """A plain snapshot of the counters (journal records use it)."""
        with self._lock:
            return {
                "requests": self.requests,
                "prompt_tokens": self.prompt_tokens,
                "completion_tokens": self.completion_tokens,
                "failed_requests": self.failed_requests,
            }

    def add(self, delta: dict) -> None:
        """Fold a counter delta in (merging per-unit meters, or
        fast-forwarding past journaled work on resume)."""
        with self._lock:
            self.requests += delta.get("requests", 0)
            self.prompt_tokens += delta.get("prompt_tokens", 0)
            self.completion_tokens += delta.get("completion_tokens", 0)
            self.failed_requests += delta.get("failed_requests", 0)


class LLMClient(Protocol):
    """What the extraction pipeline requires of a language model."""

    def generate_spec(self, resource: ResourceDoc, prompt: str,
                      attempt: int = 0) -> tuple[str, GenerationReport]:
        """Generate SM spec text for one resource's documentation."""
        ...  # pragma: no cover - protocol

    def diagnose_error_message(self, message: str):
        """Recover a behaviour rule from a cloud error message, if any."""
        ...  # pragma: no cover - protocol


def _corrupt_syntax(text: str, attempt: int) -> str:
    """Introduce a grammar violation, as unconstrained decoding can.

    Drops one semicolon (varying with the attempt), which reliably
    breaks the statement grammar while leaving the text plausible —
    the kind of surface error re-prompting fixes.
    """
    positions = [match.start() for match in re.finditer(";", text)]
    if not positions:
        return text + " }"
    victim = positions[attempt % len(positions)]
    return text[:victim] + text[victim + 1:]


@dataclass
class SimulatedLLM:
    """Deterministic stand-in for the paper's LLM (see DESIGN.md).

    ``constrained`` selects constrained decoding (§4.2): the decoder
    masks grammar-violating tokens, so output always parses regardless
    of the fault profile's syntax-error rate.
    """

    profile: FaultProfile = CONSTRAINED_PROFILE
    constrained: bool = True
    seed: int = 7
    #: Seconds of real wall-clock per generation call, modelling the
    #: network + decoding round-trip a remote LLM costs.  Zero (the
    #: default) keeps tests instant; scale benchmarks switch it on so
    #: build-path concurrency and prompt caching measure against the
    #: I/O-bound behaviour an actual deployment has.
    latency: float = 0.0
    usage: LLMUsage = field(default_factory=LLMUsage)
    #: Optional run sink; per-request spans and token metrics land
    #: here when set (see :mod:`repro.telemetry`).
    telemetry: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._fault_model = FaultModel(self.profile, seed=self.seed)
        self._synthesizer = SpecSynthesizer(self._fault_model)

    def _record_telemetry(self, span, op: str, prompt: str,
                          completion: str) -> None:
        prompt_tokens = max(1, len(prompt) // 4)
        completion_tokens = max(1, len(completion) // 4) if completion else 0
        span.set("prompt_tokens", prompt_tokens)
        span.set("completion_tokens", completion_tokens)
        metrics = self.telemetry.metrics
        metrics.counter("llm.requests", op=op).inc()
        metrics.counter("llm.prompt_tokens").inc(prompt_tokens)
        metrics.counter("llm.completion_tokens").inc(completion_tokens)
        metrics.histogram("llm.completion_tokens_per_request").observe(
            completion_tokens
        )

    def metered_clone(self) -> "SimulatedLLM":
        """An output-identical client with a private usage meter.

        Generation is a pure function of (profile, constrained, seed,
        resource, attempt), so a clone produces byte-identical text —
        only the token accounting is isolated.  The journaled build
        path gives each resource one, so per-unit usage deltas can be
        recorded and replayed exactly on resume.
        """
        return SimulatedLLM(
            profile=self.profile,
            constrained=self.constrained,
            seed=self.seed,
            latency=self.latency,
            usage=LLMUsage(),
            telemetry=self.telemetry,
        )

    # -- generation -------------------------------------------------------

    def _generate_text(
        self, resource: ResourceDoc, attempt: int
    ) -> tuple[str, GenerationReport]:
        if self.latency:
            time.sleep(self.latency)
        text, report = self._synthesizer.synthesize_text(
            resource, attempt=attempt
        )
        if not self.constrained and self._fault_model.decide_syntax(
            resource.name, attempt
        ):
            text = _corrupt_syntax(text, attempt)
        return text, report

    def generate_spec(
        self, resource: ResourceDoc, prompt: str, attempt: int = 0
    ) -> tuple[str, GenerationReport]:
        if self.telemetry is None:
            text, report = self._generate_text(resource, attempt)
            self.usage.record(prompt, text)
            return text, report
        with self.telemetry.span(
            "llm.generate", kind="llm_call",
            resource=resource.name, attempt=attempt,
        ) as span:
            text, report = self._generate_text(resource, attempt)
            self.usage.record(prompt, text)
            self._record_telemetry(span, "generate", prompt, text)
        return text, report

    def regenerate_clean(
        self, resource: ResourceDoc, prompt: str
    ) -> tuple[str, GenerationReport]:
        """Targeted correction (§4.2): regenerate with the violation
        called out in the prompt, which the simulation models as a
        fault-free pass for this resource."""
        if self.latency:
            time.sleep(self.latency)
        clean = SpecSynthesizer(FaultModel(PERFECT_PROFILE, seed=self.seed))
        text, report = clean.synthesize_text(resource)
        self.usage.record(prompt, text)
        if self.telemetry is not None:
            with self.telemetry.span(
                "llm.regenerate", kind="llm_call", resource=resource.name,
            ) as span:
                self._record_telemetry(span, "regenerate", prompt, text)
        return text, report

    # -- diagnosis ----------------------------------------------------------

    def diagnose_error_message(self, message: str):
        """Extract the violated behaviour from a cloud error message.

        Cloud error messages describe the violated condition in prose;
        alignment feeds the delta to the LLM, which maps it back to a
        rule in the vocabulary (§4.3).  Returns ``None`` when the
        message carries no actionable structure.
        """
        self.usage.record(message, "")
        if self.telemetry is not None:
            with self.telemetry.span(
                "llm.diagnose", kind="llm_call",
            ) as span:
                self._record_telemetry(span, "diagnose", message, "")
        return parse_rule(message)


def make_llm(mode: str, seed: int = 7, latency: float = 0.0) -> SimulatedLLM:
    """Build a simulated LLM for one of the evaluation modes.

    - ``constrained``: grammar-constrained decoding (our approach);
    - ``reprompt``: same quality, but syntax enforced only by parse-
      and-re-prompt (the prototype's §5 configuration);
    - ``direct``: the D2C baseline's generation quality;
    - ``perfect``: an oracle generator (used in tests and ablations).

    ``latency`` (seconds per generation call) models the remote API
    round-trip; see :attr:`SimulatedLLM.latency`.
    """
    if mode == "constrained":
        return SimulatedLLM(CONSTRAINED_PROFILE, constrained=True, seed=seed,
                            latency=latency)
    if mode == "reprompt":
        return SimulatedLLM(REPROMPT_PROFILE, constrained=False, seed=seed,
                            latency=latency)
    if mode == "direct":
        return SimulatedLLM(DIRECT_PROFILE, constrained=False, seed=seed,
                            latency=latency)
    if mode == "perfect":
        return SimulatedLLM(PERFECT_PROFILE, constrained=True, seed=seed,
                            latency=latency)
    raise ValueError(f"unknown LLM mode {mode!r}")
