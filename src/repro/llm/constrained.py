"""Constrained decoding over the SM grammar (§4.2).

"A more principled approach is to use constrained decoding, to
constrain the next-token prediction process so that the token will only
be generated if it does not violate predefined structures."

:class:`GrammarPrefixChecker` decides whether a partial spec text is a
*viable prefix* — extendable to a grammatically legal SM block — which
is exactly the predicate a constrained decoder needs per candidate
token.  :class:`ConstrainedDecoder` then demonstrates the mechanism:
given a token stream (e.g. an unconstrained model's output, possibly
corrupted), it masks every token that would make the prefix unviable,
repairing surface errors the way token-masking does in real systems.

The implementation checks viability by parsing the prefix and
classifying the failure: an error *at the very end* of the prefix means
the parser ran out of input while a legal continuation exists (viable);
an error strictly inside the prefix means no continuation can fix it
(not viable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spec.errors import SpecSyntaxError
from ..spec.lexer import tokenize
from ..spec.parser import Parser


def _parse_prefix(text: str) -> tuple[str, SpecSyntaxError | None]:
    """Parse a prefix; returns (status, error).

    Status is ``complete`` (one SM, nothing after), ``trailing``
    (a complete SM followed by extra tokens — dead for single-SM
    generation), or ``error``.
    """
    try:
        parser = Parser(text)
        parser.parse_sm()
    except SpecSyntaxError as error:
        return "error", error
    if parser.check("eof"):
        return "complete", None
    return "trailing", None


def _last_token(text: str):
    try:
        tokens = tokenize(text)
    except SpecSyntaxError:
        return None
    if len(tokens) <= 1:
        return None
    return tokens[-2]


def _last_token_position(text: str) -> tuple[int, int]:
    """Line/column where the last real token *starts*.

    A prefix's final token may still be mid-word (``writ`` extending to
    ``write``), so viability treats any parse error at or after the
    last token's start as "the parser wanted more input".  This makes
    the checker complete for true prefixes and approximate (may admit
    some dead prefixes) for rejection — the safe direction for a
    decoder mask.
    """
    try:
        tokens = tokenize(text)
    except SpecSyntaxError:
        return (0, 0)
    if len(tokens) <= 1:
        return (1, 1)
    last = tokens[-2]  # skip the EOF sentinel
    return (last.line, last.column)


class GrammarPrefixChecker:
    """Decides whether a text is a viable prefix of a legal SM block."""

    def is_complete(self, text: str) -> bool:
        status, __ = _parse_prefix(text)
        return status == "complete"

    def is_viable_prefix(self, text: str) -> bool:
        """True when some continuation makes ``text`` a legal SM."""
        return self._viable(text, allow_strip=True)

    def _viable(self, text: str, allow_strip: bool) -> bool:
        if not text.strip():
            return True
        try:
            tokenize(text)
        except SpecSyntaxError as lex_error:
            # An unterminated string/comment is completed by further
            # characters, and a trailing half of a multi-character
            # operator (`|` of `||`, `&` of `&&`) is completed by its
            # other half; any other illegal character never is.
            if "unterminated" in str(lex_error):
                return True
            return text.rstrip().endswith(("|", "&")) and (
                "unexpected character" in str(lex_error)
            )
        status, error = _parse_prefix(text)
        if status == "complete":
            return True
        if status == "trailing":
            # A closed SM followed by more tokens cannot be repaired by
            # any continuation (generation targets one SM block).
            return False
        assert error is not None
        # The viability frontier: with the text ending mid-token, an
        # error at the token's *start* may be the parser misreading an
        # incomplete word; with trailing whitespace the last token is
        # final, and only errors strictly after it are recoverable.
        frontier_line, frontier_col = _last_token_position(text)
        if text.rstrip() != text:
            last = _last_token(text)
            if last is not None:
                frontier_col = last.column + len(last.text)
        if error.line > frontier_line:
            return True
        if error.line == frontier_line and error.column >= frontier_col:
            return True
        # The trailing token may be an incomplete keyword or operator
        # (``i`` extending to ``in``) that sent the parser down a wrong
        # branch; a prefix whose partial last token is removed is still
        # a true prefix, so retry without it.
        if allow_strip:
            stripped = self._without_last_token(text)
            if stripped is not None:
                return self._viable(stripped, allow_strip=False)
        return False

    @staticmethod
    def _without_last_token(text: str) -> str | None:
        try:
            tokens = tokenize(text)
        except SpecSyntaxError:
            return None
        if len(tokens) <= 1:
            return None
        last = tokens[-2]
        if last.kind not in ("ident", "keyword", "number"):
            return None
        # Only strip when the token touches the end of the text (it may
        # still be mid-word); a token followed by whitespace is final.
        if text.rstrip() != text:
            return None
        lines = text.splitlines()
        if last.line - 1 >= len(lines):
            return None
        return "\n".join(
            lines[: last.line - 1] + [lines[last.line - 1][: last.column - 1]]
        )


@dataclass
class DecodeResult:
    """What constrained decoding produced."""

    text: str
    masked_tokens: list[str] = field(default_factory=list)

    @property
    def interventions(self) -> int:
        return len(self.masked_tokens)


class ConstrainedDecoder:
    """Token-level grammar masking over a proposal stream.

    ``decode`` consumes proposed chunks in order; a chunk that would
    make the running prefix unviable is *masked* (skipped), modelling
    the decoder suppressing grammar-violating tokens.  The result is
    grammatically legal whenever the proposal stream contains a legal
    spec interleaved with noise — which is the guarantee constrained
    decoding buys over free generation.
    """

    def __init__(self):
        self.checker = GrammarPrefixChecker()

    def decode(self, proposed_chunks: list[str]) -> DecodeResult:
        result = DecodeResult(text="")
        for chunk in proposed_chunks:
            candidate = result.text + chunk
            if self.checker.is_viable_prefix(candidate):
                result.text = candidate
            else:
                result.masked_tokens.append(chunk)
        return result

    @staticmethod
    def chunk(text: str, size: int = 12) -> list[str]:
        """Split text into pseudo-token chunks for decoding."""
        return [text[i:i + size] for i in range(0, len(text), size)]
