"""Fault models for simulated LLM generation.

The substitution for a real LLM (see DESIGN.md): generation quality is
modelled as a seeded, deterministic fault process over the documented
rules, with fault classes taken directly from the paper's §5 error
taxonomy for direct-to-code generation:

- *state errors*: missing state variables (``InstanceTenancy``,
  ``CreditSpecification``), missing dependency checks (DeleteVpc with
  gateways), missing resource-context rules (DNS hostnames vs support);
- *transition errors*: silent success on state-precondition violations
  (StartInstances on a running instance), shallow validation (CIDR
  conflict caught but /29 prefix allowed), wrong error codes.

The constrained (grammar-directed) profile exhibits only the small slip
classes the SM abstraction cannot exclude by construction; the direct
profile exhibits the full taxonomy at the rates that reproduce the
paper's 3-of-12 trace alignment.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..docs.model import Rule

#: Rule kinds whose omission constitutes a "subtle" miss — exactly the
#: checks §5 reports D2C getting wrong.
SUBTLE_CHECK_KINDS = (
    "check_attr_is",            # state preconditions (IncorrectInstanceState)
    "check_attr_is_not",
    "check_list_empty",         # dependency violations (DeleteVpc)
    "check_attr_unset",
    "check_attr_set",
    "check_prefix_between",     # /29 subnet prefix
    "check_cidr_within",
    "check_param_implies_attr",  # resource-context rules (DNS)
    "check_ref_attr_is",
    "check_attr_matches_ref",
)

#: Simple, surface-level checks that even direct generation gets right
#: ("while it can check for simple CIDR conflicts...").
SHALLOW_CHECK_KINDS = (
    "require_param",
    "require_one_of",
    "check_valid_cidr",
    "check_no_overlap",
    "check_in_list",
    "check_not_in_list",
    "check_in_map",
)

#: Attributes of secondary prominence in docs, which direct generation
#: tends to skip (§5's InstanceTenancy / CreditSpecification examples).
UNCOMMON_ATTRIBUTES = (
    "instance_tenancy",
    "credit_specification",
    "is_default",
    "analysis_enabled",
    "registered",
)


@dataclass(frozen=True)
class FaultProfile:
    """Per-class fault probabilities for one generation mode."""

    name: str
    drop_subtle_check: float = 0.0
    drop_effect: float = 0.0
    wrong_code: float = 0.0
    drop_uncommon_attribute: float = 0.0
    describe_writes: float = 0.0
    syntax_error: float = 0.0


#: Grammar-constrained generation: the SM abstraction prevents state-
#: manipulation errors by design; what remains are rare rule slips that
#: the consistency checks and alignment close.
CONSTRAINED_PROFILE = FaultProfile(
    name="constrained",
    drop_subtle_check=0.06,
    wrong_code=0.03,
    describe_writes=0.02,
)

#: Constrained generation *without* constrained decoding: same semantic
#: quality, but the raw text sometimes violates the grammar and must be
#: re-prompted (§5: "we currently don't employ constrained decoding but
#: enforce syntactic checks ... and re-prompt").
REPROMPT_PROFILE = FaultProfile(
    name="reprompt",
    drop_subtle_check=0.06,
    wrong_code=0.03,
    describe_writes=0.02,
    syntax_error=0.25,
)

#: Direct-to-code generation: no grammar to constrain state handling, so
#: the full taxonomy appears at high rates for subtle rules.
DIRECT_PROFILE = FaultProfile(
    name="direct",
    drop_subtle_check=0.9,
    wrong_code=0.35,
    drop_uncommon_attribute=0.95,
    describe_writes=0.05,
)

#: A perfect generator (used for targeted correction and as an oracle).
PERFECT_PROFILE = FaultProfile(name="perfect")


def _chance(seed: int, *key: object) -> float:
    """Deterministic pseudo-random float in [0, 1) for a keyed event."""
    digest = hashlib.sha256(
        ("|".join(str(part) for part in (seed,) + key)).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class FaultDecision:
    """What the fault model decided for one API's generation."""

    dropped_rules: list[Rule] = field(default_factory=list)
    miscoded_rules: list[Rule] = field(default_factory=list)
    dropped_attributes: list[str] = field(default_factory=list)
    describe_write_attr: str = ""

    @property
    def clean(self) -> bool:
        return not (
            self.dropped_rules
            or self.miscoded_rules
            or self.dropped_attributes
            or self.describe_write_attr
        )


class FaultModel:
    """Seeded fault injector for one generation run.

    ``attempt`` differentiates re-prompts: a syntax error on attempt 0
    usually disappears on attempt 1, modelling that re-prompting with
    the parser's feedback fixes surface issues but leaves semantic
    quality unchanged.
    """

    def __init__(self, profile: FaultProfile, seed: int = 7):
        self.profile = profile
        self.seed = seed

    def decide_attributes(self, resource_name: str,
                          attribute_names: list[str]) -> list[str]:
        """Attributes the generator will omit from the SM's state."""
        dropped = []
        for name in attribute_names:
            if name in UNCOMMON_ATTRIBUTES:
                roll = _chance(self.seed, "attr", resource_name, name)
                if roll < self.profile.drop_uncommon_attribute:
                    dropped.append(name)
        return dropped

    def decide_api(
        self,
        resource_name: str,
        api_name: str,
        rules: list[Rule],
        category: str,
        attribute_names: list[str],
        attempt: int = 0,
    ) -> FaultDecision:
        decision = FaultDecision()
        for index, behaviour in enumerate(rules):
            key = (resource_name, api_name, behaviour.kind, index)
            if behaviour.kind in SUBTLE_CHECK_KINDS:
                if _chance(self.seed, "drop", *key) < self.profile.drop_subtle_check:
                    decision.dropped_rules.append(behaviour)
                    continue
                if _chance(self.seed, "code", *key) < self.profile.wrong_code:
                    decision.miscoded_rules.append(behaviour)
            elif not behaviour.is_check:
                if _chance(self.seed, "effect", *key) < self.profile.drop_effect:
                    decision.dropped_rules.append(behaviour)
        if category == "describe" and attribute_names:
            if (
                _chance(self.seed, "dwrite", resource_name, api_name)
                < self.profile.describe_writes
            ):
                decision.describe_write_attr = attribute_names[0]
        return decision

    def decide_syntax(self, resource_name: str, attempt: int) -> bool:
        """Whether this attempt's raw text violates the grammar.

        Rolled once per SM per attempt: unconstrained decoding either
        produces a well-formed block or it doesn't; re-prompting with
        the parse error usually fixes it on the next attempt.
        """
        return (
            _chance(self.seed, "syntax", resource_name, attempt)
            < self.profile.syntax_error
        )

    def generic_code(self) -> str:
        """The unspecific error code a wrong-code fault substitutes."""
        return "InternalError"
