"""Content-addressed prompt→completion cache for the extraction LLM.

Repeated builds of the same service re-issue the same prompts: the
documentation is deterministic, so the completions are too.  The cache
keys each request by everything that determines the model's answer —
operation, prompt text, attempt number, and the model's *fingerprint*
(fault profile, decoding mode, seed) — and replays the stored
completion plus its :class:`~repro.llm.synthesis.GenerationReport`
without re-running (or re-billing) the model.

Two design decisions matter for correctness:

- :class:`CachingLLM` is the *innermost* wrapper: chaos and resilience
  wrap around it, so a warm run still experiences exactly the injected
  weather a cold run does — only the model work is elided.  Cache hits
  do not record usage (a replayed completion costs no tokens).
- The cache also memoizes *parsing*: profiling shows ``parse_sm``
  dominates warm extraction, so each distinct completion is parsed
  once and replayed as a cheap structural clone
  (:func:`repro.spec.ast.clone_spec` — fresh mutable shells over
  shared frozen nodes, so later linking/repairs cannot leak between
  clones).

All state is guarded by a lock; extraction may drive the cache from a
wave-parallel thread pool.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path

from ..docs.model import Rule
from ..durability.atomic import atomic_write
from ..spec import ast
from ..spec.parser import parse_sm
from .faults import FaultDecision
from .synthesis import GenerationReport, HelperRequirement

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Report serialization (JSON round-trip, value-faithful)
# ---------------------------------------------------------------------------

def _rule_to_json(rule: Rule) -> dict:
    return {
        "kind": rule.kind,
        "fields": [[name, value] for name, value in rule.fields],
        "documented": rule.documented,
    }


def _field_value(value: object) -> object:
    # Sequence-valued rule fields are tuples in the catalogs ("values",
    # VM size lists); JSON stores them as lists, so restore tuples.
    if isinstance(value, list):
        return tuple(_field_value(item) for item in value)
    return value


def _rule_from_json(data: dict) -> Rule:
    return Rule(
        kind=data["kind"],
        fields=tuple(
            (name, _field_value(value)) for name, value in data["fields"]
        ),
        documented=data["documented"],
    )


def _decision_to_json(decision: FaultDecision) -> dict:
    return {
        "dropped_rules": [_rule_to_json(r) for r in decision.dropped_rules],
        "miscoded_rules": [_rule_to_json(r) for r in decision.miscoded_rules],
        "dropped_attributes": list(decision.dropped_attributes),
        "describe_write_attr": decision.describe_write_attr,
    }


def _decision_from_json(data: dict) -> FaultDecision:
    return FaultDecision(
        dropped_rules=[_rule_from_json(r) for r in data["dropped_rules"]],
        miscoded_rules=[_rule_from_json(r) for r in data["miscoded_rules"]],
        dropped_attributes=list(data["dropped_attributes"]),
        describe_write_attr=data["describe_write_attr"],
    )


def report_to_json(report: GenerationReport) -> dict:
    """Serialize a generation report for cache persistence."""
    return {
        "resource": report.resource,
        "helpers_needed": [
            {
                "target": helper.target,
                "name": helper.name,
                "list_attr": helper.list_attr,
                "op": helper.op,
            }
            for helper in report.helpers_needed
        ],
        "faults": {
            api: _decision_to_json(decision)
            for api, decision in report.faults.items()
        },
        "dropped_attributes": list(report.dropped_attributes),
        "transient_retries": report.transient_retries,
        "quarantined": report.quarantined,
    }


def report_from_json(data: dict) -> GenerationReport:
    """Rebuild a generation report from its cached form."""
    return GenerationReport(
        resource=data["resource"],
        helpers_needed=[
            HelperRequirement(
                target=helper["target"],
                name=helper["name"],
                list_attr=helper["list_attr"],
                op=helper["op"],
            )
            for helper in data["helpers_needed"]
        ],
        faults={
            api: _decision_from_json(decision)
            for api, decision in data["faults"].items()
        },
        dropped_attributes=list(data["dropped_attributes"]),
        transient_retries=data["transient_retries"],
        quarantined=data["quarantined"],
    )


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------

def _digest(*parts: object) -> str:
    payload = json.dumps(parts, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PromptCache:
    """Content-addressed completion store with optional file backing.

    ``path=None`` keeps the cache purely in-memory (one process's
    repeated builds); with a path, :meth:`save` persists entries as
    JSON and a later construction reloads them.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._entries: dict[str, dict] = {}
        self._parsed: dict[str, ast.SMSpec] = {}
        self._lock = threading.Lock()
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self.parse_hits = 0
        self.parse_misses = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        data = json.loads(self.path.read_text(encoding="utf-8"))
        if data.get("version") != _FORMAT_VERSION:
            return  # stale format: start empty rather than misread it
        self._entries = dict(data.get("entries", {}))

    def save(self) -> None:
        """Persist to ``path`` (no-op when in-memory or unchanged)."""
        if self.path is None:
            return
        with self._lock:
            if not self._dirty:
                return
            payload = {
                "version": _FORMAT_VERSION,
                "entries": self._entries,
            }
            self._dirty = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic replace: a crash mid-save leaves the previous cache
        # intact instead of a torn JSON file the next run chokes on.
        atomic_write(
            self.path,
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
        )

    # -- completion store --------------------------------------------------

    def key(self, op: str, fingerprint: tuple, prompt: str,
            attempt: int = 0) -> str:
        return _digest(op, list(fingerprint), prompt, attempt)

    def get(self, key: str) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def put(self, key: str, entry: dict) -> None:
        with self._lock:
            self._entries[key] = entry
            self._dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
        }

    # -- parse memo --------------------------------------------------------

    def parse_spec(self, text: str) -> ast.SMSpec:
        """Parse ``text`` once; replay later parses as cheap clones.

        Raises whatever :func:`parse_sm` raises for unparsable text —
        failures are *not* memoized (they are cheap: the parser stops
        at the first error).
        """
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        with self._lock:
            spec = self._parsed.get(digest)
        if spec is None:
            spec = parse_sm(text)
            with self._lock:
                self._parsed.setdefault(digest, spec)
                self.parse_misses += 1
        else:
            with self._lock:
                self.parse_hits += 1
        return ast.clone_spec(spec)


class CachingLLM:
    """Replays cached completions around any :class:`SimulatedLLM`.

    Must wrap the bare model (inside chaos/resilience), so injected
    faults behave identically on warm and cold runs.  Hits skip the
    wrapped model entirely, including its usage accounting.
    """

    def __init__(self, inner, cache: PromptCache):
        self.inner = inner
        self.cache = cache
        self._fingerprint = self._make_fingerprint(inner)

    @staticmethod
    def _make_fingerprint(inner) -> tuple:
        profile = getattr(inner, "profile", None)
        return (
            getattr(profile, "name", repr(profile)),
            bool(getattr(inner, "constrained", True)),
            getattr(inner, "seed", 0),
        )

    # The pipeline reaches through for accounting and instrumentation.
    @property
    def usage(self):
        return self.inner.usage

    @property
    def telemetry(self):
        return getattr(self.inner, "telemetry", None)

    def parse_spec(self, text: str) -> ast.SMSpec:
        return self.cache.parse_spec(text)

    def _hit_telemetry(self, op: str) -> None:
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.counter("llm.cache_hits", op=op).inc()

    def generate_spec(self, resource, prompt: str, attempt: int = 0):
        key = self.cache.key("generate", self._fingerprint, prompt, attempt)
        entry = self.cache.get(key)
        if entry is not None:
            self._hit_telemetry("generate")
            return entry["completion"], report_from_json(entry["report"])
        text, report = self.inner.generate_spec(resource, prompt, attempt)
        self.cache.put(
            key, {"completion": text, "report": report_to_json(report)}
        )
        return text, report

    def regenerate_clean(self, resource, prompt: str):
        key = self.cache.key("regenerate", self._fingerprint, prompt)
        entry = self.cache.get(key)
        if entry is not None:
            self._hit_telemetry("regenerate")
            return entry["completion"], report_from_json(entry["report"])
        text, report = self.inner.regenerate_clean(resource, prompt)
        self.cache.put(
            key, {"completion": text, "report": report_to_json(report)}
        )
        return text, report

    def diagnose_error_message(self, message: str):
        key = self.cache.key("diagnose", self._fingerprint, message)
        entry = self.cache.get(key)
        if entry is not None:
            self._hit_telemetry("diagnose")
            rule = entry["rule"]
            return _rule_from_json(rule) if rule is not None else None
        rule = self.inner.diagnose_error_message(message)
        self.cache.put(
            key, {"rule": _rule_to_json(rule) if rule is not None else None}
        )
        return rule
