"""Prompt construction and the parse-and-re-prompt loop (§4.2, §5).

The prompt carries one resource's wrangled documentation (the symbolic
preprocessing keeps the context small) plus the target grammar.  When
the model is not grammar-constrained, the loop parses each candidate
and re-prompts with the syntax error appended until the spec parses or
the attempt budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..docs.model import ResourceDoc
from ..docs.render_aws import render_aws_docs
from ..docs.model import ServiceDoc
from ..spec import ast
from ..spec.errors import SpecSyntaxError
from ..spec.parser import parse_sm
from .client import SimulatedLLM
from .synthesis import GenerationReport

GRAMMAR_SUMMARY = """\
Target grammar (one state machine per resource):
  SM <name> [contained_in <parent>] {
    States { <state>: <type>, ... }
    Transitions {
      @<category> <Api>(<param>: <type>, ...) { <stmt>* }
    }
  }
  stmt := read(s, v); | write(s, e); | assert(p) : Code("msg");
        | call(target.Transition(args)); | emit(k, e);
        | if (p) { stmt* } else { stmt* }
"""


def build_prompt(resource: ResourceDoc, feedback: str = "") -> str:
    """The prompt text the LLM sees for one resource."""
    context = ServiceDoc(name="context", resources=[resource])
    pages = render_aws_docs(context)
    doc_text = "\n\n".join(page.text for page in pages)
    parts = [
        "You are generating an executable emulator specification.",
        GRAMMAR_SUMMARY,
        "Documentation for the resource follows.",
        doc_text,
        "Emit exactly one SM block for this resource.",
    ]
    if feedback:
        parts.append(f"Your previous answer failed to parse: {feedback}")
    return "\n\n".join(parts)


@dataclass
class SynthesisResult:
    """One resource's synthesized SM plus generation metadata."""

    spec: ast.SMSpec
    report: GenerationReport
    attempts: int


def spec_parser(llm):
    """The parse function the pipeline should use for ``llm``'s output.

    A caching client (at any depth of the chaos/resilience wrapper
    chain) exposes ``parse_spec``, which memoizes parses of repeated
    completions; everything else parses from scratch.
    """
    probe = llm
    while probe is not None:
        parse = getattr(probe, "parse_spec", None)
        if parse is not None:
            return parse
        probe = getattr(probe, "inner", None)
    return parse_sm


def synthesize_with_reprompt(
    llm: SimulatedLLM, resource: ResourceDoc, max_attempts: int = 4
) -> SynthesisResult:
    """Generate, parse, and re-prompt on syntax errors.

    Raises :class:`SpecSyntaxError` if the model cannot produce a legal
    spec within the attempt budget — with constrained decoding this
    never happens (the ablation bench measures the difference).
    """
    feedback = ""
    last_error: SpecSyntaxError | None = None
    parse = spec_parser(llm)
    for attempt in range(max_attempts):
        prompt = build_prompt(resource, feedback)
        text, report = llm.generate_spec(resource, prompt, attempt=attempt)
        try:
            spec = parse(text)
        except SpecSyntaxError as error:
            last_error = error
            feedback = str(error)
            # The attempt consumed tokens but produced nothing usable;
            # keep the cost accounting honest.
            usage = getattr(llm, "usage", None)
            if usage is not None:
                usage.failed_requests += 1
            telemetry = getattr(llm, "telemetry", None)
            if telemetry is not None:
                telemetry.event(
                    "llm_parse_failure",
                    resource=resource.name, attempt=attempt,
                )
                telemetry.counter("llm.parse_failures").inc()
            continue
        return SynthesisResult(spec=spec, report=report, attempts=attempt + 1)
    raise last_error or SpecSyntaxError("generation failed to parse")
