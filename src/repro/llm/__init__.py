"""Simulated LLM layer: generation, fault models, prompting.

The offline substitution for the paper's LLM (Gemini 2.5 Pro).  See
DESIGN.md for the substitution argument; see :mod:`repro.llm.faults`
for the fault taxonomy that reproduces §5's error categories.
"""

from .cache import (
    CachingLLM,
    PromptCache,
    report_from_json,
    report_to_json,
)
from .client import LLMClient, LLMUsage, make_llm, SimulatedLLM
from .constrained import (
    ConstrainedDecoder,
    DecodeResult,
    GrammarPrefixChecker,
)
from .faults import (
    CONSTRAINED_PROFILE,
    DIRECT_PROFILE,
    FaultDecision,
    FaultModel,
    FaultProfile,
    PERFECT_PROFILE,
    REPROMPT_PROFILE,
    SHALLOW_CHECK_KINDS,
    SUBTLE_CHECK_KINDS,
    UNCOMMON_ATTRIBUTES,
)
from .prompting import (
    build_prompt,
    GRAMMAR_SUMMARY,
    SynthesisResult,
    synthesize_with_reprompt,
)
from .synthesis import (
    attribute_state_type,
    GenerationReport,
    HelperRequirement,
    param_state_type,
    RuleCompiler,
    SpecSynthesizer,
    track_helper_name,
    untrack_helper_name,
)

__all__ = [
    "attribute_state_type",
    "build_prompt",
    "CachingLLM",
    "CONSTRAINED_PROFILE",
    "ConstrainedDecoder",
    "DecodeResult",
    "DIRECT_PROFILE",
    "GrammarPrefixChecker",
    "FaultDecision",
    "FaultModel",
    "FaultProfile",
    "GenerationReport",
    "GRAMMAR_SUMMARY",
    "HelperRequirement",
    "LLMClient",
    "LLMUsage",
    "make_llm",
    "param_state_type",
    "PERFECT_PROFILE",
    "PromptCache",
    "report_from_json",
    "report_to_json",
    "REPROMPT_PROFILE",
    "RuleCompiler",
    "SHALLOW_CHECK_KINDS",
    "SimulatedLLM",
    "SpecSynthesizer",
    "SUBTLE_CHECK_KINDS",
    "SynthesisResult",
    "synthesize_with_reprompt",
    "track_helper_name",
    "UNCOMMON_ATTRIBUTES",
    "untrack_helper_name",
]
