"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``build``      learn an emulator from a service's documentation and
                 (optionally) save it to a directory;
- ``coverage``   print Table 1 (handcrafted-emulator coverage);
- ``evaluate``   print Fig. 3 (trace alignment per variant);
- ``complexity`` print Fig. 4 data (SM complexity per service);
- ``traces``     run the evaluation traces for one service against the
                 cloud and a learned emulator;
- ``serve-bench`` drive deterministic concurrent load through the
                 hardened serving layer (tenants, validation, admission
                 control) and verify linearizability by serial replay;
- ``report``     generate the full reproduction report, or render a
                 saved telemetry JSONL trace as a phase/cost/fault
                 breakdown (``--trace-id`` jumps to one sampled
                 request's span tree);
- ``slo``        evaluate a schema-2 trace's SLO record and exit
                 non-zero when any error budget is exhausted — the CI
                 gate for "did the run stay inside its objectives";
- ``top``        run the noisy cross-region scenario with the full
                 observability plane attached and replay it as an
                 ASCII dashboard (per-tenant rates, SLO budgets,
                 breaker states, partition weather);
- ``decode``     demonstrate rich error decoding on a saved emulator.
"""

from __future__ import annotations

import argparse
import sys

from .docs import CATALOGS

AWS_SERVICES = ("ec2", "network_firewall", "dynamodb")


def _cmd_build(args: argparse.Namespace) -> int:
    import json

    from .core import build_learned_emulator
    from .core.store import save_build
    from .durability import DurabilityError
    from .telemetry import RunReport, Telemetry, write_trace

    if args.resume and not args.journal:
        print("repro build: error: --resume requires --journal DIR",
              file=sys.stderr)
        return 2
    telemetry = Telemetry(service=args.service) if args.telemetry else None
    try:
        build = build_learned_emulator(
            args.service, mode=args.mode, seed=args.seed,
            align=not args.no_align, chaos=args.chaos,
            telemetry=telemetry, parallel=args.parallel,
            compile=not args.no_compile, llm_cache=args.llm_cache,
            journal=args.journal, resume=args.resume,
        )
    except ValueError as error:
        # e.g. an unknown profile name in $REPRO_CHAOS_PROFILE.
        print(f"repro build: error: {error}", file=sys.stderr)
        return 2
    except DurabilityError as error:
        # e.g. resuming a journal written by a different build config.
        print(f"repro build: error: {error}", file=sys.stderr)
        return 2
    report = RunReport.from_build(build, telemetry=telemetry)
    saved_to = save_build(build, args.out) if args.out else None
    trace_path = None
    if telemetry is not None:
        trace_path = write_trace(telemetry, args.telemetry, report=report)
    if args.json:
        payload = report.to_dict()
        if saved_to is not None:
            payload["saved_to"] = str(saved_to)
        if trace_path is not None:
            payload["telemetry"] = str(trace_path)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(report.render_console())
    if saved_to is not None:
        print(f"saved to:  {saved_to}")
    if trace_path is not None:
        print(f"telemetry: {trace_path}")
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from .analysis import table1_rows

    print(f"{'Service':20} {'APIs':>6} {'Emulated':>9} {'Coverage':>9}")
    for row in table1_rows():
        print(f"{row.service:20} {row.total:>6} {row.emulated:>9} "
              f"{row.percent:>8}%")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .core import run_fig3_evaluation

    results = run_fig3_evaluation(seed=args.seed)
    scenarios = ("provisioning", "state_updates", "edge_cases")
    print(f"{'variant':18}" + "".join(f"{s:>16}" for s in scenarios)
          + f"{'total':>10}")
    for variant, accuracy in results.items():
        cells = ""
        for scenario in scenarios:
            aligned, total = accuracy.per_scenario[scenario]
            cells += f"{aligned}/{total}".rjust(16)
        aligned, total = accuracy.total
        print(f"{variant:18}{cells}{f'{aligned}/{total}':>10}")
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    from .analysis import ComplexityComparison
    from .core import build_learned_emulator

    comparison = ComplexityComparison()
    services = [args.service] if args.service else list(AWS_SERVICES)
    for service in services:
        build = build_learned_emulator(service, align=False)
        comparison.add(service, build.module)
    print(f"{'service':20} {'SMs':>4} {'median':>8} {'mean':>7} {'max':>5}")
    for service, stats in comparison.summary().items():
        print(f"{service:20} {stats['machines']:>4} "
              f"{stats['median']:>8} {stats['mean']:>7.1f} "
              f"{stats['max']:>5}")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    from .alignment import diff_traces
    from .cloud import make_cloud
    from .core import build_learned_emulator
    from .scenarios import azure_traces, evaluation_traces, gcp_traces

    if args.service == "azure_network":
        traces = azure_traces()
    elif args.service == "gcp_compute":
        traces = gcp_traces()
    else:
        traces = [
            t for t in evaluation_traces() if t.service == args.service
        ]
    if not traces:
        print(f"no traces for service {args.service!r}", file=sys.stderr)
        return 1
    build = build_learned_emulator(args.service, seed=args.seed)
    report = diff_traces(
        make_cloud(args.service), build.make_backend(), traces
    )
    for comparison in report.comparisons:
        status = "aligned" if comparison.aligned else "DIVERGED"
        print(f"{comparison.trace_name:36} {status}")
        if not comparison.aligned:
            divergence = comparison.first_divergence
            print(f"    {divergence.api}: {divergence.reason}")
    print(f"\n{report.aligned}/{report.compared} traces aligned")
    return 0 if report.aligned == report.compared else 2


def _cmd_decode(args: argparse.Namespace) -> int:
    from .alignment import ErrorDecoder
    from .core.store import load_module

    saved = load_module(args.directory)
    emulator = saved.make_backend()
    decoder = ErrorDecoder(emulator)
    params: dict = {}
    for pair in args.params or []:
        key, __, value = pair.partition("=")
        params[key] = value
    response = emulator.invoke(args.api, params)
    if response.success:
        print("call succeeded:", response.data)
        return 0
    print(decoder.explain(args.api, params, response).render())
    return 2


def _load_slo_specs(path: str) -> list:
    """Read a reference SLO spec file (JSON list, or ``{"slos": [...]}``)."""
    import json

    from .obs import SLOSpec

    with open(path, encoding="utf-8") as handle:
        raw = json.load(handle)
    if isinstance(raw, dict):
        raw = raw.get("slos", [])
    return [SLOSpec.from_dict(record) for record in raw]


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from .core import build_learned_emulator
    from .resilience.chaos import ChaosEngine, ChaosProxy, resolve_profile
    from .serve import FrontDoor, LoadGenerator
    from .telemetry import Telemetry, write_trace

    try:
        profile = resolve_profile(args.chaos)
    except ValueError as error:
        print(f"repro serve-bench: error: {error}", file=sys.stderr)
        return 2
    build = build_learned_emulator(args.service, seed=args.seed, align=False)
    telemetry = Telemetry(service=args.service)
    if args.obs or args.slo:
        from .obs import default_slos, ObsPlane

        try:
            tenant_names = [
                f"tenant-{index}" for index in range(max(1, args.tenants))
            ]
            specs = (_load_slo_specs(args.slo) if args.slo
                     else default_slos(tenant_names,
                                       period=args.slo_period))
        except (OSError, KeyError, ValueError) as error:
            print(f"repro serve-bench: error: bad SLO spec: {error}",
                  file=sys.stderr)
            return 2
        ObsPlane(telemetry, seed=args.seed, slos=specs,
                 sample_keep=args.sample_keep,
                 drift_rate=args.drift_rate)
    wrap = None
    if profile.active:
        engine = ChaosEngine(profile, seed=args.seed)
        wrap = lambda backend: ChaosProxy(backend, engine)  # noqa: E731
    backend_factory = (
        (lambda: build.make_backend(mvcc=False)) if args.no_mvcc
        else build.make_backend
    )
    allocation = None
    if args.fair:
        from .serve import AllocationConfig

        tenant_count = max(1, args.tenants)
        weights = {}
        if args.aggressor:
            weights["tenant-0"] = args.aggressor_weight
        allocation = AllocationConfig(
            total_rate=args.rate * tenant_count,
            total_burst=args.burst * tenant_count,
            weights=weights,
        )
    if args.shards:
        from .serve import ShardedFrontDoor, parse_kill_schedule

        kill_schedules = None
        if args.kill_schedule:
            try:
                kill_schedules = parse_kill_schedule(args.kill_schedule)
            except ValueError as error:
                print(f"repro serve-bench: error: {error}",
                      file=sys.stderr)
                return 2
        front = ShardedFrontDoor(
            build.module, backend_factory, shards=args.shards,
            data_dir=args.shard_dir, kill_schedules=kill_schedules,
            heartbeat=True, telemetry=telemetry, wrap=wrap,
            rate=args.rate, burst=args.burst, seed=args.seed,
            allocation=allocation,
        )
    else:
        front = FrontDoor(
            build.module, backend_factory, telemetry=telemetry, wrap=wrap,
            rate=args.rate, burst=args.burst, seed=args.seed,
            allocation=allocation,
        )
    per_worker = max(1, -(-args.requests // args.workers))
    generator = LoadGenerator(
        front, seed=args.seed, workers=args.workers,
        requests_per_worker=per_worker, read_ratio=args.read_ratio,
        tenants=args.tenants, offered_rate=args.offered_rate,
        aggressor="tenant-0" if args.aggressor else None,
        aggressor_weight=args.aggressor_weight,
        deadline=args.deadline,
        retry_shed=args.retry_shed,
    )
    shard_summary = None
    fairness = None
    log_path = None
    try:
        report = generator.run()
        if front.allocator is not None:
            fairness = front.allocator.snapshot()
        # Dump before close in sharded mode: the logs live worker-side.
        log_path = front.admitted.dump_jsonl(args.log) if args.log else None
        if args.shards:
            supervisor = front.supervisor
            shard_summary = {
                "shards": supervisor.shards,
                "restarts": supervisor.restarts,
                "restart_log": list(supervisor.restart_log),
                "recovery_failures": list(supervisor.recovery_failures),
                "data_dir": str(supervisor.data_dir),
            }
    finally:
        if args.shards:
            # Graceful close: drains in-flight requests and flushes
            # every shard's final snapshots.
            front.close()
    trace_path = (
        write_trace(telemetry, args.telemetry) if args.telemetry else None
    )
    if args.json:
        payload = report.as_dict()
        payload["service"] = args.service
        payload["chaos"] = profile.name
        if shard_summary is not None:
            payload["sharding"] = shard_summary
        if fairness is not None:
            payload["fairness"] = fairness
        if log_path is not None:
            payload["admitted_log"] = str(log_path)
        if trace_path is not None:
            payload["telemetry"] = str(trace_path)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"serve-bench: {args.service}  "
              f"({report.workers} workers, {report.tenants} tenants, "
              f"chaos={profile.name})")
        print(f"  requests:    {report.requests} "
              f"({report.reads} reads / {report.writes} writes)")
        print(f"  throughput:  {report.throughput_rps:,.0f} req/s "
              f"over {report.wall_seconds:.2f}s")
        print(f"  shed:        {report.shed}")
        for code in sorted(report.by_code):
            label = code or "(success)"
            print(f"    {label:34} {report.by_code[code]:>7}")
        print(f"  admitted writes logged: {report.admitted_writes}")
        if report.mvcc and report.mvcc.get("mvcc_tenants"):
            print(f"  mvcc:        "
                  f"{report.mvcc['publishes']} publish(es), "
                  f"{report.mvcc['reclaimed']} reclaimed, "
                  f"{report.mvcc['pinned_reads']} pinned read(s), "
                  f"{report.mvcc['read_lock_acquisitions']} read-lock "
                  f"acquisition(s)")
        if shard_summary is not None:
            print(f"  shards:      {shard_summary['shards']} worker "
                  f"process(es), {shard_summary['restarts']} restart(s), "
                  f"{report.failover_honored} failover wait(s) honored "
                  f"({report.failover_seconds:.2f}s virtual)")
            for entry in shard_summary["restart_log"]:
                print(f"    shard-{entry['shard']} gen {entry['generation']}"
                      f": recovered in {entry['recovery_seconds']:.2f}s "
                      f"({entry['replayed']} attempt(s) replayed)")
            for failure in shard_summary["recovery_failures"]:
                print(f"    RECOVERY FAILURE: {failure}")
        if fairness is not None:
            print(f"  fairness:    {fairness['reallocations']} "
                  f"reallocation(s), pool {fairness['total_rate']:.0f} rps"
                  + (f", shards down {fairness['shards_down']}"
                     if fairness["shards_down"] else ""))
            for name, alloc in fairness["tenants"].items():
                print(f"    {name:<22} granted {alloc['granted_rate']:>8.1f}"
                      f" rps  (fair {alloc['fair_share']:.1f}, "
                      f"demand {alloc['demand']:.1f}, "
                      f"admitted {alloc['admitted']})")
            if report.by_tenant:
                for name, split in sorted(report.by_tenant.items()):
                    print(f"    {name:<22} offered {split['requests']:>6}"
                          f"  ok {split['ok']:>6}  shed {split['shed']:>6}")
            if report.deadline_expired:
                print(f"    deadline expired: {report.deadline_expired}")
            if report.retries_sent:
                print(f"    retries: {report.retries_sent} sent, "
                      f"{report.retry_budget_exhausted} over budget")
        if report.obs is not None:
            from .telemetry.report import _slo_rows

            sampling = report.obs.get("sampling") or {}
            print(f"  obs: {report.obs.get('series', 0)} series, sampler "
                  f"kept {sampling.get('kept', 0)}/{sampling.get('seen', 0)}"
                  f" traces")
            if report.obs.get("slo"):
                for row in _slo_rows(report.obs["slo"]):
                    print(row)
        verdict = "PASS" if report.linearizable else "FAIL"
        print(f"  linearizable: {verdict}")
        for mismatch in report.mismatches:
            print(f"    {mismatch}")
        if log_path is not None:
            print(f"  admitted log: {log_path}")
        if trace_path is not None:
            print(f"  telemetry:    {trace_path}")
    return 0 if report.linearizable else 3


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .core import build_learned_emulator
    from .netem.sweep import (
        render_heatmap, run_sweep, SweepConfig, SweepGrid,
    )
    from .scenarios.geo import (
        multi_region_failover, partition_heal_convergence,
    )

    def _axis(raw: str) -> tuple:
        try:
            return tuple(float(part) for part in raw.split(",") if part)
        except ValueError:
            raise SystemExit(
                f"repro sweep: error: bad axis value {raw!r} "
                "(expected comma-separated numbers)"
            )

    grid = SweepGrid(
        losses=_axis(args.losses),
        rtts=_axis(args.rtts),
        partition_durations=_axis(args.partitions),
    )
    config = SweepConfig(
        workers=args.workers,
        requests_per_worker=max(1, -(-args.requests // args.workers)),
        tenants=args.tenants,
        seed=args.seed,
    )
    build = build_learned_emulator(args.service, seed=args.seed,
                                   align=False)

    def progress(index: int, total: int, record: dict) -> None:
        if not args.json:
            verdict = "ok" if record["ok"] else "FAIL"
            print(f"  cell {index + 1}/{total}  "
                  f"loss={record['loss']:g} rtt={record['base_rtt']:g}s "
                  f"partition={record['partition_duration']:g}s  "
                  f"error_rate={record['error_rate']:.3f}  {verdict}")

    payload = run_sweep(build, grid, config, progress=progress)
    if args.convergence:
        traces = {}
        if args.telemetry:
            import os

            os.makedirs(args.telemetry, exist_ok=True)
            traces = {
                name: os.path.join(args.telemetry, f"{name}.jsonl")
                for name in ("multi_region_failover",
                             "partition_heal_convergence")
            }
        failover = multi_region_failover(
            build, seed=args.seed,
            trace=traces.get("multi_region_failover"),
        )
        convergence = partition_heal_convergence(
            build, seed=args.seed,
            trace=traces.get("partition_heal_convergence"),
        )
        payload["geo"] = {
            "multi_region_failover": failover,
            "partition_heal_convergence": convergence,
        }
        payload["all_ok"] = bool(
            payload["all_ok"] and failover["ok"] and convergence["ok"]
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if not args.json:
            print(f"sweep written to {args.out}")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print()
        print(render_heatmap(payload, metric=args.metric))
        if args.convergence:
            geo = payload["geo"]
            for name, result in geo.items():
                verdict = "PASS" if result["ok"] else "FAIL"
                print(f"  {name}: {verdict}")
    return 0 if payload["all_ok"] else 3


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from .telemetry import load_trace, TraceError
    from .telemetry.report import _slo_rows

    try:
        data = load_trace(args.trace)
    except (OSError, TraceError) as error:
        print(f"repro slo: error: {error}", file=sys.stderr)
        return 2
    if data.slo is None:
        print(f"repro slo: error: {args.trace}: no SLO record — re-run "
              "with the observability plane attached (serve-bench --obs, "
              "repro top, or a scenario with SLO specs)", file=sys.stderr)
        return 2
    exhausted = data.slo.get("exhausted", [])
    if args.json:
        print(json.dumps(data.slo, indent=2, sort_keys=True))
    else:
        print(f"SLO report at t={data.slo.get('at', 0.0):.2f}s virtual")
        for row in _slo_rows(data.slo):
            print(row)
        verdict = ("FAIL (budget exhausted: " + ", ".join(exhausted) + ")"
                   if exhausted else "PASS")
        print(f"  verdict: {verdict}")
    return 4 if exhausted else 0


def _cmd_top(args: argparse.Namespace) -> int:
    import json

    from .core import build_learned_emulator
    from .obs import record_frames
    from .scenarios.geo import noisy_cross_region_replication

    slos = None
    if args.slo:
        try:
            slos = _load_slo_specs(args.slo)
        except (OSError, KeyError, ValueError) as error:
            print(f"repro top: error: bad SLO spec: {error}",
                  file=sys.stderr)
            return 2
    build = build_learned_emulator(args.service, seed=args.seed,
                                   align=False)
    capture: dict = {}
    per_worker = max(1, -(-args.requests // args.workers))
    result = noisy_cross_region_replication(
        build, seed=args.seed, loss=args.loss, base_rtt=args.rtt,
        partition_duration=args.partition, workers=args.workers,
        requests_per_worker=per_worker, tenants=args.tenants,
        slos=slos, slo_period=args.slo_period,
        sample_keep=args.sample_keep, drift_rate=args.drift_rate,
        trace=args.telemetry, capture=capture,
    )
    plane, netem = capture["plane"], capture["netem"]
    frames = record_frames(
        plane, interval=args.interval, lookback=args.lookback,
        netem=netem,
    )
    if args.record:
        payload = {
            "service": args.service,
            "seed": args.seed,
            "interval": args.interval,
            "lookback": args.lookback,
            "frames": frames,
            "result": result,
        }
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        shown = frames if args.all_frames else frames[-1:]
        for index, frame in enumerate(shown):
            if index:
                print()
            print(frame["frame"])
        if args.record:
            print(f"\n{len(frames)} frame(s) recorded to {args.record}")
        if args.telemetry:
            print(f"telemetry: {args.telemetry}")
    slo = (result.get("load", {}).get("obs") or {}).get("slo") or {}
    exhausted = slo.get("exhausted", [])
    if not result["ok"]:
        return 3
    return 4 if exhausted else 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trace:
        from .telemetry import (
            load_trace, render_trace, render_trace_report, TraceError,
        )

        try:
            data = load_trace(args.trace)
        except (OSError, TraceError) as error:
            print(f"repro report: error: {error}", file=sys.stderr)
            return 2
        try:
            if args.trace_id:
                print(render_trace(data, args.trace_id))
                return 0 if data.find_trace(args.trace_id) else 1
            print(render_trace_report(data))
        except BrokenPipeError:  # e.g. `repro report run.jsonl | head`
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0

    from .core.report import generate_report

    text = generate_report(seed=args.seed,
                           include_multicloud=not args.no_multicloud)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learned cloud emulators (HotNets '25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="learn an emulator for a service")
    build.add_argument("service", choices=sorted(CATALOGS))
    build.add_argument("--mode", default="constrained",
                       choices=("constrained", "reprompt", "direct",
                                "perfect"))
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--no-align", action="store_true")
    build.add_argument("--chaos", default=None,
                       choices=("off", "mild", "hostile"),
                       help="fault-injection profile (default: "
                            "$REPRO_CHAOS_PROFILE or off)")
    build.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="extraction-wave / diff-shard thread count "
                            "(the build result is identical at any N)")
    build.add_argument("--no-compile", action="store_true",
                       help="serve with the tree-walking evaluator "
                            "instead of the compiled fast path")
    build.add_argument("--llm-cache", metavar="PATH",
                       help="persistent prompt->completion cache file; "
                            "warm rebuilds skip (and stop billing) "
                            "repeated LLM work")
    build.add_argument("--journal", metavar="DIR",
                       help="journal completed build work to DIR so an "
                            "interrupted build can be resumed")
    build.add_argument("--resume", action="store_true",
                       help="replay the journal in --journal DIR and "
                            "continue from the first incomplete unit")
    build.add_argument("--out", help="directory to save the emulator to")
    build.add_argument("--telemetry", metavar="PATH",
                       help="write the build's telemetry trace (spans, "
                            "metrics, run report) to a JSONL file")
    build.add_argument("--json", action="store_true",
                       help="emit the run report as JSON instead of prose")
    build.set_defaults(func=_cmd_build)

    coverage = sub.add_parser("coverage", help="print Table 1")
    coverage.set_defaults(func=_cmd_coverage)

    evaluate = sub.add_parser("evaluate", help="print Fig. 3")
    evaluate.add_argument("--seed", type=int, default=7)
    evaluate.set_defaults(func=_cmd_evaluate)

    complexity = sub.add_parser("complexity", help="print Fig. 4 data")
    complexity.add_argument("service", nargs="?",
                            choices=sorted(CATALOGS))
    complexity.set_defaults(func=_cmd_complexity)

    traces = sub.add_parser("traces",
                            help="run a service's evaluation traces")
    traces.add_argument("service", choices=sorted(CATALOGS))
    traces.add_argument("--seed", type=int, default=7)
    traces.set_defaults(func=_cmd_traces)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="drive concurrent load through the hardened serving layer "
             "and verify linearizability by serial replay")
    serve_bench.add_argument("service", choices=sorted(CATALOGS))
    serve_bench.add_argument("--workers", type=int, default=8)
    serve_bench.add_argument("--requests", type=int, default=2000,
                             help="total requests across all workers")
    serve_bench.add_argument("--read-ratio", type=float, default=0.7)
    serve_bench.add_argument("--tenants", type=int, default=2,
                             help="number of tenant API keys to spread "
                                  "traffic across")
    serve_bench.add_argument("--rate", type=float, default=50.0,
                             help="token-bucket refill rate per tenant "
                                  "(requests per virtual second)")
    serve_bench.add_argument("--burst", type=float, default=20.0)
    serve_bench.add_argument("--offered-rate", type=float, default=None,
                             help="offered load in requests per virtual "
                                  "second (default: unconstrained, the "
                                  "buckets never shed)")
    serve_bench.add_argument("--chaos", default=None,
                             choices=("off", "mild", "hostile"),
                             help="wrap every tenant backend in a fault "
                                  "injector (default: "
                                  "$REPRO_CHAOS_PROFILE or off)")
    serve_bench.add_argument("--seed", type=int, default=11)
    serve_bench.add_argument("--log", metavar="PATH",
                             help="write the admitted-request log as "
                                  "JSONL (the linearizability witness)")
    serve_bench.add_argument("--telemetry", metavar="PATH",
                             help="write the serve telemetry trace "
                                  "(shed/validation counters, queue "
                                  "depth) to a JSONL file")
    serve_bench.add_argument("--obs", action="store_true",
                             help="attach the serving observability "
                                  "plane: windowed series, SLO budgets, "
                                  "tail-sampled traces (schema-2 "
                                  "records in --telemetry output)")
    serve_bench.add_argument("--slo", metavar="PATH",
                             help="JSON SLO spec file (a list of spec "
                                  "dicts, or {\"slos\": [...]}); "
                                  "implies --obs")
    serve_bench.add_argument("--slo-period", type=float, default=60.0,
                             help="error-budget period in virtual "
                                  "seconds for the default SLO set")
    serve_bench.add_argument("--sample-keep", type=float, default=0.05,
                             help="tail-sampler probabilistic keep rate "
                                  "(errors/sheds/slow always kept)")
    serve_bench.add_argument("--drift-rate", type=float, default=0.0,
                             help="fraction of read requests re-executed "
                                  "on the reference evaluator to detect "
                                  "compiled-route drift")
    serve_bench.add_argument("--shards", type=int, default=0,
                             help="serve from N crash-supervised worker "
                                  "processes (0: single-process serving)")
    serve_bench.add_argument("--kill-schedule", default=None,
                             metavar="SHARD:SITE:HIT[,..]",
                             help="seeded worker-death schedule, e.g. "
                                  "0:mid-publish:3,1:mid-serve-wal-append:2 "
                                  "(each repeat of a shard arms its next "
                                  "restart generation)")
    serve_bench.add_argument("--shard-dir", default=None, metavar="DIR",
                             help="per-shard WAL + snapshot root "
                                  "(default: a fresh temp dir)")
    serve_bench.add_argument("--no-mvcc", action="store_true",
                             help="serve through the RW-lock fallback "
                                  "instead of lock-free MVCC reads "
                                  "(for A/B comparisons)")
    serve_bench.add_argument("--fair", action="store_true",
                             help="admit through the holistic weighted "
                                  "max-min allocator (one shared "
                                  "rate/slot/queue pool, re-granted "
                                  "from observed demand) instead of "
                                  "independent per-tenant buckets")
    serve_bench.add_argument("--aggressor", action="store_true",
                             help="make tenant-0 a noisy neighbor: "
                                  "offered --aggressor-weight times "
                                  "more traffic than each other tenant "
                                  "(pair with --fair to watch victims "
                                  "keep their fair share)")
    serve_bench.add_argument("--aggressor-weight", type=float,
                             default=10.0,
                             help="the aggressor's offered-load "
                                  "multiplier")
    serve_bench.add_argument("--deadline", type=float, default=None,
                             metavar="SECONDS",
                             help="attach DeadlineSeconds to every "
                                  "request; expired requests shed with "
                                  "ExpiredBeforeDispatch instead of "
                                  "doing wasted work")
    serve_bench.add_argument("--retry-shed", action="store_true",
                             help="re-offer each shed request once "
                                  "marked Retry: true, exercising the "
                                  "capped per-tenant retry budget")
    serve_bench.add_argument("--json", action="store_true")
    serve_bench.set_defaults(func=_cmd_serve_bench)

    slo = sub.add_parser(
        "slo",
        help="evaluate a schema-2 trace's SLO record; exits 4 when any "
             "error budget is exhausted")
    slo.add_argument("trace",
                     help="a telemetry JSONL file written with the "
                          "observability plane attached")
    slo.add_argument("--json", action="store_true",
                     help="print the raw SLO record instead of prose")
    slo.set_defaults(func=_cmd_slo)

    top = sub.add_parser(
        "top",
        help="run the noisy cross-region scenario with the full "
             "observability plane and replay it as an ASCII dashboard")
    top.add_argument("service", choices=sorted(CATALOGS))
    top.add_argument("--seed", type=int, default=7)
    top.add_argument("--loss", type=float, default=0.05,
                     help="per-message loss on every cross-region link")
    top.add_argument("--rtt", type=float, default=0.04,
                     help="base RTT in virtual seconds")
    top.add_argument("--partition", type=float, default=10.0,
                     help="seeded partition duration in virtual seconds")
    top.add_argument("--workers", type=int, default=4)
    top.add_argument("--requests", type=int, default=240,
                     help="total requests across all workers")
    top.add_argument("--tenants", type=int, default=2)
    top.add_argument("--slo", metavar="PATH",
                     help="JSON SLO spec file (default: the reference "
                          "per-tenant availability + latency set)")
    top.add_argument("--slo-period", type=float, default=1440.0,
                     help="error-budget period in virtual seconds for "
                          "the default SLO set")
    top.add_argument("--sample-keep", type=float, default=0.05)
    top.add_argument("--drift-rate", type=float, default=0.0)
    top.add_argument("--interval", type=float, default=2.0,
                     help="virtual seconds between dashboard frames")
    top.add_argument("--lookback", type=float, default=5.0,
                     help="rate/percentile window per frame, in virtual "
                          "seconds")
    top.add_argument("--all-frames", action="store_true",
                     help="print every frame of the replay instead of "
                          "just the final one")
    top.add_argument("--record", metavar="PATH",
                     help="write the full frame-by-frame replay (plus "
                          "the scenario result) as JSON")
    top.add_argument("--telemetry", metavar="PATH",
                     help="also export the schema-2 telemetry JSONL "
                          "(feeds repro slo / repro report)")
    top.add_argument("--json", action="store_true",
                     help="print the scenario result dict instead of "
                          "the dashboard")
    top.set_defaults(func=_cmd_top)

    sweep = sub.add_parser(
        "sweep",
        help="run the geo scenario catalog across a (loss x RTT x "
             "partition) grid and emit heatmap-ready JSON per cell")
    sweep.add_argument("service", choices=sorted(CATALOGS))
    sweep.add_argument("--losses", default="0,0.02,0.05",
                       help="comma-separated per-message loss "
                            "probabilities (default: 0,0.02,0.05)")
    sweep.add_argument("--rtts", default="0.01,0.04,0.08",
                       help="comma-separated base RTTs in virtual "
                            "seconds (default: 0.01,0.04,0.08)")
    sweep.add_argument("--partitions", default="0,5",
                       help="comma-separated partition durations in "
                            "virtual seconds; 0 disables partitions "
                            "for that cell (default: 0,5)")
    sweep.add_argument("--workers", type=int, default=4)
    sweep.add_argument("--requests", type=int, default=160,
                       help="total requests per cell across all workers")
    sweep.add_argument("--tenants", type=int, default=2)
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument("--metric", default="error_rate",
                       choices=("error_rate", "timeout_rate",
                                "unavailable_rate", "stale_ratio",
                                "mean_net_latency"),
                       help="which cell metric the ASCII heatmap colors")
    sweep.add_argument("--convergence", action="store_true",
                       help="also run the failover and partition-heal "
                            "convergence scenarios and fold their "
                            "verdicts into the exit code")
    sweep.add_argument("--out", metavar="PATH",
                       help="write the sweep JSON document to a file")
    sweep.add_argument("--telemetry", metavar="DIR",
                       help="with --convergence: write each geo "
                            "scenario's telemetry trace (JSONL) into "
                            "this directory")
    sweep.add_argument("--json", action="store_true",
                       help="print the full JSON instead of the heatmap")
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser("report",
                            help="generate the full reproduction report, "
                                 "or render a saved telemetry trace")
    report.add_argument("trace", nargs="?",
                        help="a telemetry JSONL file (from repro build "
                             "--telemetry) to render as a phase/cost/"
                             "fault breakdown")
    report.add_argument("--trace-id", metavar="ID",
                        help="with a trace file: render one sampled "
                             "request's span tree (ids surface as "
                             "exemplars in the slowest-requests table)")
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", help="write the Markdown to a file")
    report.add_argument("--no-multicloud", action="store_true")
    report.set_defaults(func=_cmd_report)

    decode = sub.add_parser("decode",
                            help="explain a failing call on a saved "
                                 "emulator")
    decode.add_argument("directory")
    decode.add_argument("api")
    decode.add_argument("params", nargs="*", metavar="key=value")
    decode.set_defaults(func=_cmd_decode)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
