"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``build``      learn an emulator from a service's documentation and
                 (optionally) save it to a directory;
- ``coverage``   print Table 1 (handcrafted-emulator coverage);
- ``evaluate``   print Fig. 3 (trace alignment per variant);
- ``complexity`` print Fig. 4 data (SM complexity per service);
- ``traces``     run the evaluation traces for one service against the
                 cloud and a learned emulator;
- ``decode``     demonstrate rich error decoding on a saved emulator.
"""

from __future__ import annotations

import argparse
import sys

from .docs import CATALOGS

AWS_SERVICES = ("ec2", "network_firewall", "dynamodb")


def _cmd_build(args: argparse.Namespace) -> int:
    from .core import build_learned_emulator
    from .core.store import save_build

    try:
        build = build_learned_emulator(
            args.service, mode=args.mode, seed=args.seed,
            align=not args.no_align, chaos=args.chaos,
        )
    except ValueError as error:
        # e.g. an unknown profile name in $REPRO_CHAOS_PROFILE.
        print(f"repro build: error: {error}", file=sys.stderr)
        return 2
    print(f"service:   {args.service}")
    print(f"machines:  {len(build.module.machines)}")
    print(f"apis:      {build.api_count}")
    print(f"llm calls: {build.llm.usage.requests} "
          f"({build.llm.usage.prompt_tokens} prompt tokens, "
          f"{build.llm.usage.failed_requests} failed)")
    if build.alignment is not None:
        print(f"alignment: {len(build.alignment.rounds)} round(s), "
              f"{build.alignment.total_repairs} repair(s), "
              f"converged={build.alignment.converged}")
    resilience = build.resilience
    if not resilience.clean:
        quarantined = build.extraction.quarantined
        print(f"resilience: {resilience.retries} retried, "
              f"{resilience.gave_ups} gave up, "
              f"{resilience.round_restarts} round restart(s), "
              f"{len(quarantined)} quarantined"
              + (f" ({', '.join(quarantined)})" if quarantined else ""))
    if args.out:
        path = save_build(build, args.out)
        print(f"saved to:  {path}")
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from .analysis import table1_rows

    print(f"{'Service':20} {'APIs':>6} {'Emulated':>9} {'Coverage':>9}")
    for row in table1_rows():
        print(f"{row.service:20} {row.total:>6} {row.emulated:>9} "
              f"{row.percent:>8}%")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .core import run_fig3_evaluation

    results = run_fig3_evaluation(seed=args.seed)
    scenarios = ("provisioning", "state_updates", "edge_cases")
    print(f"{'variant':18}" + "".join(f"{s:>16}" for s in scenarios)
          + f"{'total':>10}")
    for variant, accuracy in results.items():
        cells = ""
        for scenario in scenarios:
            aligned, total = accuracy.per_scenario[scenario]
            cells += f"{aligned}/{total}".rjust(16)
        aligned, total = accuracy.total
        print(f"{variant:18}{cells}{f'{aligned}/{total}':>10}")
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    from .analysis import ComplexityComparison
    from .core import build_learned_emulator

    comparison = ComplexityComparison()
    services = [args.service] if args.service else list(AWS_SERVICES)
    for service in services:
        build = build_learned_emulator(service, align=False)
        comparison.add(service, build.module)
    print(f"{'service':20} {'SMs':>4} {'median':>8} {'mean':>7} {'max':>5}")
    for service, stats in comparison.summary().items():
        print(f"{service:20} {stats['machines']:>4} "
              f"{stats['median']:>8} {stats['mean']:>7.1f} "
              f"{stats['max']:>5}")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    from .alignment import diff_traces
    from .cloud import make_cloud
    from .core import build_learned_emulator
    from .scenarios import azure_traces, evaluation_traces, gcp_traces

    if args.service == "azure_network":
        traces = azure_traces()
    elif args.service == "gcp_compute":
        traces = gcp_traces()
    else:
        traces = [
            t for t in evaluation_traces() if t.service == args.service
        ]
    if not traces:
        print(f"no traces for service {args.service!r}", file=sys.stderr)
        return 1
    build = build_learned_emulator(args.service, seed=args.seed)
    report = diff_traces(
        make_cloud(args.service), build.make_backend(), traces
    )
    for comparison in report.comparisons:
        status = "aligned" if comparison.aligned else "DIVERGED"
        print(f"{comparison.trace_name:36} {status}")
        if not comparison.aligned:
            divergence = comparison.first_divergence
            print(f"    {divergence.api}: {divergence.reason}")
    print(f"\n{report.aligned}/{report.compared} traces aligned")
    return 0 if report.aligned == report.compared else 2


def _cmd_decode(args: argparse.Namespace) -> int:
    from .alignment import ErrorDecoder
    from .core.store import load_module

    saved = load_module(args.directory)
    emulator = saved.make_backend()
    decoder = ErrorDecoder(emulator)
    params: dict = {}
    for pair in args.params or []:
        key, __, value = pair.partition("=")
        params[key] = value
    response = emulator.invoke(args.api, params)
    if response.success:
        print("call succeeded:", response.data)
        return 0
    print(decoder.explain(args.api, params, response).render())
    return 2


def _cmd_report(args: argparse.Namespace) -> int:
    from .core.report import generate_report

    text = generate_report(seed=args.seed,
                           include_multicloud=not args.no_multicloud)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learned cloud emulators (HotNets '25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="learn an emulator for a service")
    build.add_argument("service", choices=sorted(CATALOGS))
    build.add_argument("--mode", default="constrained",
                       choices=("constrained", "reprompt", "direct",
                                "perfect"))
    build.add_argument("--seed", type=int, default=7)
    build.add_argument("--no-align", action="store_true")
    build.add_argument("--chaos", default=None,
                       choices=("off", "mild", "hostile"),
                       help="fault-injection profile (default: "
                            "$REPRO_CHAOS_PROFILE or off)")
    build.add_argument("--out", help="directory to save the emulator to")
    build.set_defaults(func=_cmd_build)

    coverage = sub.add_parser("coverage", help="print Table 1")
    coverage.set_defaults(func=_cmd_coverage)

    evaluate = sub.add_parser("evaluate", help="print Fig. 3")
    evaluate.add_argument("--seed", type=int, default=7)
    evaluate.set_defaults(func=_cmd_evaluate)

    complexity = sub.add_parser("complexity", help="print Fig. 4 data")
    complexity.add_argument("service", nargs="?",
                            choices=sorted(CATALOGS))
    complexity.set_defaults(func=_cmd_complexity)

    traces = sub.add_parser("traces",
                            help="run a service's evaluation traces")
    traces.add_argument("service", choices=sorted(CATALOGS))
    traces.add_argument("--seed", type=int, default=7)
    traces.set_defaults(func=_cmd_traces)

    report = sub.add_parser("report",
                            help="generate the full reproduction report")
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", help="write the Markdown to a file")
    report.add_argument("--no-multicloud", action="store_true")
    report.set_defaults(func=_cmd_report)

    decode = sub.add_parser("decode",
                            help="explain a failing call on a saved "
                                 "emulator")
    decode.add_argument("directory")
    decode.add_argument("api")
    decode.add_argument("params", nargs="*", metavar="key=value")
    decode.set_defaults(func=_cmd_decode)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
