"""Asynchronous cross-region replication with bounded staleness.

The authoritative registry of a regional tenant lives at each
resource's home region; every other region keeps a full *replica*
that trails the home by a replication lag.  The model is snapshot
shipping: each committed write publishes a registry snapshot, and a
replica applies the newest snapshot whose ``publish_time + lag`` has
passed — unless the link from the home region is partitioned, in
which case the replica freezes and its staleness grows until the
partition heals, at which point the next sync catches it up in one
step.

That heal-then-converge step is the scenario catalog's proof
obligation: after a partition heals and a sync runs, every replica's
registry dump must diff byte-identical against the home registry
(:func:`repro.durability.snapshot.registry_diff`), placements and ID
counters included.
"""

from __future__ import annotations

import threading

from ..durability.snapshot import registry_diff, registry_dump
from .engine import NetEm


class ReplicaSet:
    """Per-region trailing replicas of one tenant's emulator."""

    def __init__(
        self,
        home_region: str,
        regions: "list[str] | tuple[str, ...]",
        replica_factory,
        lag: float = 0.25,
    ):
        self.home_region = home_region
        self.lag = max(0.0, float(lag))
        self._replicas = {
            region: replica_factory()
            for region in regions
            if region != home_region
        }
        #: region -> ordered [(ready_at, version, snapshot), ...]
        self._pending: dict[str, list[tuple[float, int, dict]]] = {
            region: [] for region in self._replicas
        }
        self._applied: dict[str, int] = {
            region: 0 for region in self._replicas
        }
        self._version = 0
        self._lock = threading.Lock()
        #: Serializes snapshot application against stale reads: a
        #: replica registry mid-restore must never serve a request.
        self._apply = threading.Lock()

    @property
    def regions(self) -> list[str]:
        return list(self._replicas)

    def replica(self, region: str):
        """The trailing emulator for a region (home has none)."""
        return self._replicas.get(region)

    def invoke(self, region: str, api: str, params: dict):
        """Serve one request from a region's replica (``None`` if the
        region has no replica).  Held against concurrent snapshot
        application so reads never see a half-restored registry."""
        emulator = self._replicas.get(region)
        if emulator is None:
            return None
        with self._apply:
            return emulator.invoke(api, params)

    def version_of(self, region: str) -> int:
        with self._lock:
            return self._applied.get(region, 0)

    # -- publish / sync ------------------------------------------------------

    def publish(self, snapshot: dict, now: float) -> int:
        """Queue one home snapshot for every replica; returns its
        version.  The snapshot becomes applicable ``lag`` seconds from
        now — sooner syncs see the previous state, which is the
        bounded-staleness contract."""
        with self._lock:
            self._version += 1
            version = self._version
            ready_at = now + self.lag
            for queue in self._pending.values():
                queue.append((ready_at, version, snapshot))
        return version

    def sync(self, netem: NetEm, now: float) -> int:
        """Apply every due snapshot on every reachable replica.

        Returns how many replicas advanced.  A region whose link from
        the home is partitioned applies nothing (its queue keeps
        accumulating); the first sync after the heal applies the
        newest due snapshot, which is the convergence step.
        """
        advanced = 0
        for region, emulator in self._replicas.items():
            if netem.partitioned(self.home_region, region):
                continue
            due = None
            with self._lock:
                queue = self._pending[region]
                while queue and queue[0][0] <= now:
                    due = queue.pop(0)
                if due is not None:
                    self._applied[region] = due[1]
            if due is not None:
                with self._apply:
                    emulator.restore(due[2])
                advanced += 1
                netem.stats.replications += 1
                if netem.telemetry is not None:
                    netem.telemetry.metrics.counter(
                        "net.replications", region=region
                    ).inc()
        return advanced

    # -- convergence ---------------------------------------------------------

    def divergence(self, home_emulator) -> dict[str, list[str]]:
        """Per-region registry diffs against the home (empty == converged)."""
        home = registry_dump(home_emulator.registry)
        report: dict[str, list[str]] = {}
        for region, emulator in self._replicas.items():
            diffs = registry_diff(home, registry_dump(emulator.registry))
            if diffs:
                report[region] = diffs
        return report

    def converged(self, home_emulator) -> bool:
        return not self.divergence(home_emulator)
