"""Scriptable fault timelines: the network's weather forecast.

A :class:`FaultTimeline` is an ordered script of
:class:`NetworkEvent` items — partition, heal, degrade, restore —
applied to a topology as virtual time passes.  The engine calls
:meth:`FaultTimeline.advance` before every transmit, so a scenario
author writes *when* links fail and the traffic discovers it the way
real callers do: mid-request.

Timelines are plain data, so they are trivially seeded: the sweep
harness synthesizes deterministic partition schedules from
``(seed, cell)`` and two runs of the same cell see byte-identical
weather.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..resilience.policy import seeded_fraction
from .topology import NetworkTopology

#: The event kinds a timeline may script.
EVENT_KINDS = ("partition", "heal", "degrade", "restore")


@dataclass(frozen=True)
class NetworkEvent:
    """One scripted change to a region pair's link weather."""

    at: float
    kind: str  # partition | heal | degrade | restore
    src: str
    dst: str
    rtt_multiplier: float = 1.0
    extra_loss: float = 0.0

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown network event kind {self.kind!r}; "
                f"expected one of {list(EVENT_KINDS)}"
            )


def partition_window(src: str, dst: str, start: float,
                     duration: float) -> list[NetworkEvent]:
    """A partition that heals: the scenario catalog's workhorse."""
    return [
        NetworkEvent(at=start, kind="partition", src=src, dst=dst),
        NetworkEvent(at=start + duration, kind="heal", src=src, dst=dst),
    ]


def degrade_window(src: str, dst: str, start: float, duration: float,
                   rtt_multiplier: float = 4.0,
                   extra_loss: float = 0.05) -> list[NetworkEvent]:
    """A lossy, slow spell on one region pair that later clears."""
    return [
        NetworkEvent(at=start, kind="degrade", src=src, dst=dst,
                     rtt_multiplier=rtt_multiplier, extra_loss=extra_loss),
        NetworkEvent(at=start + duration, kind="restore", src=src, dst=dst),
    ]


def seeded_partitions(
    regions: "list[str] | tuple[str, ...]",
    seed: int,
    horizon: float,
    duration: float,
    period: float | None = None,
) -> list[NetworkEvent]:
    """A deterministic partition schedule for a sweep cell.

    Every ``period`` clock-seconds (default: one window per third of
    the horizon) one region pair — chosen by the seeded hash — loses
    connectivity for ``duration`` seconds, then heals.  ``duration``
    <= 0 yields an empty schedule (the no-partition cell).
    """
    if duration <= 0 or len(regions) < 2:
        return []
    period = period or max(duration * 2.0, horizon / 3.0)
    pairs = [
        (a, b)
        for i, a in enumerate(regions)
        for b in list(regions)[i + 1:]
    ]
    events: list[NetworkEvent] = []
    window = 0
    start = period * 0.5
    while start < horizon:
        pair = pairs[
            int(seeded_fraction(seed, "partition_pair", window) * len(pairs))
            % len(pairs)
        ]
        events.extend(partition_window(pair[0], pair[1], start, duration))
        window += 1
        start += period
    return events


class FaultTimeline:
    """An ordered, replay-once script of network events.

    ``advance`` applies every not-yet-applied event whose time has
    come; it is idempotent per event and thread-safe (the serve path
    calls it from many workers).  Applied events are kept for the
    scenario reports.
    """

    def __init__(self, events: "list[NetworkEvent] | None" = None,
                 telemetry=None):
        self._events = sorted(events or [], key=lambda e: e.at)
        self._next = 0
        self._lock = threading.Lock()
        self.telemetry = telemetry
        self.applied: list[NetworkEvent] = []

    def add(self, *events: NetworkEvent) -> "FaultTimeline":
        with self._lock:
            self._events = sorted(
                self._events[self._next:] + list(events), key=lambda e: e.at
            )
            self._next = 0
        return self

    def extend(self, events: "list[NetworkEvent]") -> "FaultTimeline":
        return self.add(*events)

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._events) - self._next

    def advance(self, topology: NetworkTopology, now: float) -> int:
        """Apply every due event; returns how many fired."""
        fired = 0
        while True:
            with self._lock:
                if self._next >= len(self._events):
                    return fired
                event = self._events[self._next]
                if event.at > now:
                    return fired
                self._next += 1
                self.applied.append(event)
            self._apply(topology, event)
            fired += 1

    def _apply(self, topology: NetworkTopology,
               event: NetworkEvent) -> None:
        if event.kind == "partition":
            topology.partition(event.src, event.dst, event.at)
        elif event.kind == "heal":
            topology.heal(event.src, event.dst, event.at)
        elif event.kind == "degrade":
            topology.degrade(event.src, event.dst,
                             rtt_multiplier=event.rtt_multiplier,
                             extra_loss=event.extra_loss)
        else:
            topology.restore(event.src, event.dst)
        if self.telemetry is not None:
            self.telemetry.event(
                f"net_{event.kind}", src=event.src, dst=event.dst,
                at=event.at,
            )
            self.telemetry.metrics.counter(
                "net.events", kind=event.kind
            ).inc()
