"""Per-resource region placement.

Every resource a regional emulator creates lives *somewhere*: the
placer decides where, and the registry remembers it (see
:meth:`repro.interpreter.machine.Registry.place`), so the front door
can route each request over the (client-region → resource-region)
path its parameters imply.

Placement is deterministic and parameter-driven: a request that names
a region-ish parameter (``Region``, ``AvailabilityZone``,
``Location``) is placed there — an AZ like ``us-east-1a`` folds onto
its region, an unknown region string hashes stably onto the topology —
and everything else exhibits data gravity: resources land in the
calling client's region.  Determinism matters doubly here: the
linearizability check replays the admitted log serially, and the
replayed registry must make identical placement decisions.
"""

from __future__ import annotations

from ..interpreter.emulator import normalize_key
from ..resilience.policy import seeded_fraction

#: Normalized request-parameter names that carry a location intent.
REGION_HINT_KEYS = ("region", "availabilityzone", "location")


class Placer:
    """Maps creates to home regions and requests to resource regions."""

    def __init__(self, regions: "list[str] | tuple[str, ...]",
                 seed: int = 17, default_region: str | None = None,
                 data_gravity: bool = True):
        if not regions:
            raise ValueError("a placer needs at least one region")
        self.regions = list(regions)
        self.seed = seed
        self.default_region = default_region or self.regions[0]
        #: With data gravity, un-hinted creates land in the calling
        #: client's region; without it they all land in the default
        #: (primary) region — the single-home deployment shape.
        self.data_gravity = data_gravity

    # -- region resolution ---------------------------------------------------

    def fold_hint(self, value: str) -> str:
        """A region-ish request value -> a topology region, stably."""
        if value in self.regions:
            return value
        # An availability zone is its region plus a trailing letter.
        trimmed = value.rstrip("abcdef")
        if trimmed in self.regions:
            return trimmed
        for region in self.regions:
            if value.startswith(region) or region.startswith(value):
                return region
        index = int(
            seeded_fraction(self.seed, "fold", value) * len(self.regions)
        ) % len(self.regions)
        return self.regions[index]

    def hint_from(self, params: dict) -> str | None:
        """The first location-intent parameter in a request, folded."""
        for key, value in params.items():
            if not isinstance(value, str) or not value:
                continue
            if normalize_key(key) in REGION_HINT_KEYS:
                return self.fold_hint(value)
        return None

    def client_region(self, tenant: str) -> str:
        """Where a tenant's traffic originates (stable per tenant)."""
        index = int(
            seeded_fraction(self.seed, "client", tenant)
            * len(self.regions)
        ) % len(self.regions)
        return self.regions[index]

    def region_for_create(self, api: str, params: dict,
                          client_region: str) -> str:
        """Where a freshly created resource should live."""
        hinted = self.hint_from(params)
        if hinted is not None:
            return hinted
        if self.data_gravity and client_region in self.regions:
            return client_region
        return self.default_region

    def resource_region(self, registry, params: dict,
                        fallback: str) -> str:
        """The home region of the resource a request addresses.

        The first parameter naming an already-placed resource wins;
        requests that address nothing placed (creates, list calls)
        fall back to ``fallback``.
        """
        placements = getattr(registry, "placements", None)
        if placements:
            for value in params.values():
                if isinstance(value, str):
                    region = placements.get(value)
                    if region:
                        return region
        return fallback
