"""Network-realistic fault topology on the virtual clock.

``repro.netem`` gives the serving stack a *shape* for its failures:
named regions joined by directed links carrying RTT, jitter,
bandwidth and loss; scripted fault timelines that degrade, partition
and heal those links at virtual times; per-resource region placement;
asynchronous cross-region replication with bounded staleness; and a
parameter-sweep harness that runs the scenario catalog across a grid
of network weather.

Everything runs on the shared :class:`~repro.resilience.policy.VirtualClock`
— network latency advances the same clock that retry deadlines, token
buckets and breaker cooldowns read, so the network is observable by
every other layer without a single real sleep.
"""

from .engine import Delivery, LOSS, NetEm, NetStats, PARTITION
from .placement import Placer, REGION_HINT_KEYS
from .replication import ReplicaSet
from .routing import LOST_CODE, PARTITIONED_CODE, RegionGate
from .sweep import (
    SWEEP_SCHEMA_VERSION,
    SweepConfig,
    SweepGrid,
    render_heatmap,
    run_sweep,
    validate_sweep,
)
from .timeline import (
    EVENT_KINDS,
    FaultTimeline,
    NetworkEvent,
    degrade_window,
    partition_window,
    seeded_partitions,
)
from .topology import (
    DEFAULT_REGIONS,
    LOCAL_RTT,
    Link,
    LinkSpec,
    NetworkTopology,
    three_region_topology,
    uniform_topology,
)

__all__ = [
    "DEFAULT_REGIONS",
    "Delivery",
    "EVENT_KINDS",
    "FaultTimeline",
    "LOCAL_RTT",
    "LOSS",
    "LOST_CODE",
    "Link",
    "LinkSpec",
    "NetEm",
    "NetStats",
    "NetworkEvent",
    "NetworkTopology",
    "PARTITION",
    "PARTITIONED_CODE",
    "Placer",
    "REGION_HINT_KEYS",
    "RegionGate",
    "ReplicaSet",
    "SWEEP_SCHEMA_VERSION",
    "SweepConfig",
    "SweepGrid",
    "degrade_window",
    "partition_window",
    "render_heatmap",
    "run_sweep",
    "seeded_partitions",
    "three_region_topology",
    "uniform_topology",
    "validate_sweep",
]
