"""Region-aware request routing for the serving layer.

:class:`RegionGate` is what a :class:`~repro.serve.frontdoor.FrontDoor`
consults when it is given a network: every request is routed over the
(client-region → resource-region) path its parameters imply, and the
path's weather shapes the outcome the way a real cloud edge does:

- a **partitioned** path fails writes immediately with
  ``ServiceUnavailable`` (connection refused, not a timeout) naming
  both regions; reads *fail over* to the client region's trailing
  replica when stale reads are enabled, marked ``Stale`` in the
  response payload;
- a **lossy** path burns the round-trip latency and then fails with
  ``RequestTimeout`` — the caller waited for an answer that never
  came, and the shared virtual clock moved, so retry deadlines and
  token buckets all felt it;
- a **delivered** request pays the link's RTT (and its fair share of
  bandwidth) before the emulator runs.

Committed writes publish a registry snapshot to the tenant's
:class:`~repro.netem.replication.ReplicaSet`; replication is
hub-and-spoke from the tenant's home region, so a replica behind a
partition freezes until the heal, then converges in one sync.

Network faults fire *before* the concurrency layer, so they are never
recorded as admitted work — a rejected write mutates nothing, and the
serial-replay linearizability check holds unchanged under any weather.
"""

from __future__ import annotations

import threading

from ..interpreter.errors import ApiResponse
from ..obs.tracectx import current_request
from ..serve.deadline import current_meta, expired_response
from .engine import NetEm
from .placement import Placer
from .replication import ReplicaSet

#: Error codes regional faults surface as (both transient: resilient
#: clients retry them, which is how retry/breaker policies end up
#: exercised against *path* faults instead of coin flips).
PARTITIONED_CODE = "ServiceUnavailable"
LOST_CODE = "RequestTimeout"


class _TenantNet:
    """One tenant's regional state: client region plus replicas."""

    __slots__ = ("client_region", "replicas")

    def __init__(self, client_region: str, replicas: ReplicaSet | None):
        self.client_region = client_region
        self.replicas = replicas


class RegionGate:
    """Routes one front door's requests across a :class:`NetEm`."""

    def __init__(
        self,
        netem: NetEm,
        emulator_factory,
        home_region: str | None = None,
        placer: Placer | None = None,
        client_regions: dict[str, str] | None = None,
        stale_reads: bool = True,
        replication_lag: float = 0.25,
        telemetry=None,
    ):
        self.netem = netem
        self.emulator_factory = emulator_factory
        regions = netem.regions
        self.placer = placer or Placer(regions, seed=netem.seed)
        self.home_region = home_region or self.placer.default_region
        self.client_regions = dict(client_regions or {})
        self.stale_reads = stale_reads
        self.replication_lag = replication_lag
        self.telemetry = telemetry
        self._tenants: dict[str, _TenantNet] = {}
        self._lock = threading.Lock()

    # -- tenant state --------------------------------------------------------

    def tenant_net(self, tenant: str) -> _TenantNet:
        state = self._tenants.get(tenant)
        if state is not None:
            return state
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                client = self.client_regions.get(
                    tenant, self.placer.client_region(tenant)
                )
                replicas = None
                if self.stale_reads:
                    replicas = ReplicaSet(
                        self.home_region, self.netem.regions,
                        self.emulator_factory, lag=self.replication_lag,
                    )
                state = _TenantNet(client, replicas)
                self._tenants[tenant] = state
        return state

    def client_region(self, tenant: str) -> str:
        return self.tenant_net(tenant).client_region

    # -- routing -------------------------------------------------------------

    def route(self, tenant: str, emulator, api: str, params: dict,
              read_only: bool, proceed) -> ApiResponse:
        """Send one request over its path, then run ``proceed``.

        ``emulator`` is the tenant's authoritative (concurrency-
        wrapped) emulator — used for placement lookups and the
        post-write snapshot publish; ``proceed`` invokes the rest of
        the backend stack.
        """
        state = self.tenant_net(tenant)
        client = state.client_region
        meta = current_meta()
        if meta is not None and meta.expired(self.netem.clock.now()):
            # The budget died before the wire: no transmit, no RTT.
            return self._expired(tenant, "netem")
        if read_only or "create" not in api.lower():
            resource_region = self.placer.resource_region(
                emulator.registry, params, fallback=self.home_region
            )
        else:
            resource_region = self.placer.region_for_create(
                api, params, client
            )
        delivery = self.netem.transmit(client, resource_region)
        now = self.netem.clock.now()
        ctx = current_request()
        if ctx is not None:
            ctx.client_region = client
            ctx.resource_region = resource_region
            ctx.add_hop(
                client, resource_region, delivery.latency,
                delivered=delivery.delivered,
                reason=delivery.reason or "", at=now,
            )
        if state.replicas is not None:
            state.replicas.sync(self.netem, now)

        if not delivery.delivered:
            if delivery.reason == "partition":
                if read_only:
                    return self._stale_read(
                        state, tenant, emulator, api, params,
                        client, resource_region,
                    )
                return self._partitioned(tenant, api, client,
                                         resource_region)
            return ApiResponse.fail(
                LOST_CODE,
                f"The request to {resource_region} was lost in transit; "
                "retry your request.",
            )

        if meta is not None and meta.expired(self.netem.clock.now()):
            # The RTT ate the remaining budget: the client has already
            # given up, so dispatching now is pure wasted work (and a
            # write the caller would never see committed).
            return self._expired(tenant, "netem")
        response = proceed()
        if response.success and not read_only:
            created = response.data.get("id")
            if isinstance(created, str) and created:
                region = self.placer.region_for_create(
                    api, params, client
                ) if "create" in api.lower() else resource_region
                # Route placement through the concurrency layer when it
                # offers one: under MVCC the placement must be
                # *republished* so the snapshot below (taken from the
                # newest published version) already carries it.
                place = getattr(emulator, "place", None)
                if place is not None:
                    place(created, region)
                else:
                    emulator.registry.place(created, region)
            if state.replicas is not None:
                state.replicas.publish(emulator.snapshot(), now)
        return response

    # -- failure shapes ------------------------------------------------------

    def _expired(self, tenant: str, stage: str) -> ApiResponse:
        ctx = current_request()
        if ctx is not None:
            ctx.shed = True
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "allocation.deadline_expired", tenant=tenant,
                stage=stage,
            ).inc()
        return expired_response(stage)

    def _partitioned(self, tenant: str, api: str, client: str,
                     resource_region: str) -> ApiResponse:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "net.partitioned_writes", tenant=tenant
            ).inc()
            self.telemetry.event(
                "net_partitioned_write", tenant=tenant, api=api,
                src=client, dst=resource_region,
            )
        return ApiResponse.fail(
            PARTITIONED_CODE,
            f"Region {resource_region} is unreachable from {client}; "
            "the request was not attempted.",
        )

    def _stale_read(self, state: _TenantNet, tenant: str, emulator,
                    api: str, params: dict, client: str,
                    resource_region: str) -> ApiResponse:
        """Serve a read from the client region's trailing replica."""
        if not self.stale_reads:
            return self._partitioned(tenant, api, client, resource_region)
        if client == self.home_region or state.replicas is None:
            # The hub region holds the authoritative registry; its
            # "local copy" is simply fresh.
            return emulator.invoke(api, params)
        response = state.replicas.invoke(client, api, params)
        if response is None:
            return self._partitioned(tenant, api, client, resource_region)
        ctx = current_request()
        if ctx is not None:
            ctx.failover = True
            ctx.add_hop(
                resource_region, client, 0.0, delivered=True,
                reason="replica_failover", at=self.netem.clock.now(),
            )
        self.netem.stats.stale_reads += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "net.stale_reads", tenant=tenant
            ).inc()
        if response.success:
            data = dict(response.data)
            data["Stale"] = True
            data["ReplicaRegion"] = client
            return ApiResponse(True, data)
        return response
