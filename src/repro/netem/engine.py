"""The transmit engine: one message, one path, one seeded outcome.

:class:`NetEm` is the decision core the serving layer consults for
every request: given a (client-region, resource-region) pair it
advances the fault timeline to the current virtual time, resolves the
directed link, and produces a :class:`Delivery` — delivered with a
latency charge, lost (latency burned, then a timeout), or rejected
outright by a partition.  Loss and jitter draws come from the same
seeded-hash construction the chaos layer uses, so a run under any
topology is exactly reproducible.

Latency is charged by *advancing the shared virtual clock*, which is
what makes network weather observable everywhere else: retry
deadlines shrink by the RTT a slow path cost, token buckets refill
during cross-region waits, and breaker cooldowns tick at the same
rate the network does.

Bandwidth is max-min fair per link: a transfer registers as a flow
for its duration and pays ``size / (bandwidth / concurrent_flows)``,
so N bulk transfers on one link each see roughly a 1/N share — the
CloudSim-style sharing model, collapsed onto the virtual clock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..resilience.policy import VirtualClock, seeded_fraction
from .timeline import FaultTimeline
from .topology import NetworkTopology

#: Delivery failure reasons.
LOSS = "loss"
PARTITION = "partition"


@dataclass(frozen=True)
class Delivery:
    """What happened to one message on its path."""

    delivered: bool
    latency: float = 0.0
    reason: str = ""  # "" | "loss" | "partition"
    src: str = ""
    dst: str = ""


@dataclass
class NetStats:
    """Network-layer counters for one run."""

    messages: int = 0
    delivered: int = 0
    lost: int = 0
    partition_rejects: int = 0
    stale_reads: int = 0
    replications: int = 0
    latency_total: float = 0.0
    by_link: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "messages": self.messages,
            "delivered": self.delivered,
            "lost": self.lost,
            "partition_rejects": self.partition_rejects,
            "stale_reads": self.stale_reads,
            "replications": self.replications,
            "latency_total": round(self.latency_total, 6),
            "by_link": {
                name: dict(counts)
                for name, counts in sorted(self.by_link.items())
            },
        }


class NetEm:
    """Network emulation over a topology, a timeline and the clock."""

    def __init__(
        self,
        topology: NetworkTopology,
        clock: VirtualClock | None = None,
        timeline: FaultTimeline | None = None,
        seed: int = 17,
        telemetry=None,
    ):
        self.topology = topology
        self.clock = clock or VirtualClock()
        self.timeline = timeline or FaultTimeline()
        if telemetry is not None and self.timeline.telemetry is None:
            self.timeline.telemetry = telemetry
        self.seed = seed
        self.telemetry = telemetry
        self.stats = NetStats()
        self._sequence = 0
        self._lock = threading.Lock()

    @property
    def regions(self) -> list[str]:
        return list(self.topology.regions)

    def next_key(self) -> int:
        """A process-unique message key for the seeded draws."""
        with self._lock:
            self._sequence += 1
            return self._sequence

    def advance(self) -> None:
        """Apply every timeline event due at the current clock time."""
        self.timeline.advance(self.topology, self.clock.now())

    def partitioned(self, a: str, b: str) -> bool:
        self.advance()
        return self.topology.partitioned(a, b)

    # -- transmit ------------------------------------------------------------

    def transmit(self, src: str, dst: str, key: object = None,
                 size_mb: float = 0.0) -> Delivery:
        """Send one request/response exchange from ``src`` to ``dst``.

        The exchange pays the link's effective RTT (plus the fair-share
        transfer time for ``size_mb`` of payload) by advancing the
        shared clock.  A lost message still burns its RTT — the caller
        waited for an answer that never came — while a partitioned
        link rejects immediately: connection refused, not a timeout.
        """
        self.advance()
        link = self.topology.link(src, dst)
        if key is None:
            key = self.next_key()
        self._count_link(link.name, "messages")
        self.stats.messages += 1

        if link.partitioned or self.topology.link(dst, src).partitioned:
            self.stats.partition_rejects += 1
            self._count_link(link.name, "partition_rejects")
            if self.telemetry is not None:
                self.telemetry.metrics.counter(
                    "net.partition_rejects", link=link.name
                ).inc()
            return Delivery(False, 0.0, PARTITION, src, dst)

        rtt = link.effective_rtt(
            seeded_fraction(self.seed, "jitter", src, dst, key)
        )
        lost = (
            link.effective_loss > 0.0
            and seeded_fraction(self.seed, "netloss", src, dst, key)
            < link.effective_loss
        )
        latency = rtt
        if not lost and size_mb > 0:
            sharers = link.begin_flow()
            try:
                latency += link.transfer_seconds(size_mb, sharers)
            finally:
                link.end_flow()
        self.clock.sleep(latency)
        self.stats.latency_total += latency
        if self.telemetry is not None:
            self.telemetry.metrics.histogram(
                "net.rtt", link=link.name
            ).observe(latency)
        if lost:
            self.stats.lost += 1
            self._count_link(link.name, "lost")
            if self.telemetry is not None:
                self.telemetry.metrics.counter(
                    "net.lost", link=link.name
                ).inc()
            return Delivery(False, latency, LOSS, src, dst)
        self.stats.delivered += 1
        return Delivery(True, latency, "", src, dst)

    def transfer(self, src: str, dst: str, size_mb: float,
                 key: object = None) -> Delivery:
        """A bulk payload move (replication, snapshot shipping)."""
        return self.transmit(src, dst, key=key, size_mb=size_mb)

    # -- internals -----------------------------------------------------------

    def _count_link(self, name: str, what: str) -> None:
        with self._lock:
            counts = self.stats.by_link.setdefault(name, {})
            counts[what] = counts.get(what, 0) + 1
