"""The parameter-sweep harness: scenario runs across a weather grid.

``repro sweep`` runs the noisy cross-region scenario once per cell of
a (loss x base RTT x partition duration) grid and emits one JSON
document with a flat, heatmap-ready record per cell: the axes, the
verdicts (linearizable? converged?) and the rates a heatmap would
color by (error rate, timeout rate, stale-read ratio, mean network
latency).  Everything is seeded, so a sweep is a pure function of
``(build, grid, seed)`` and two runs produce identical JSON.

The document is validated against a hand-rolled schema
(:func:`validate_sweep`) rather than a jsonschema dependency; the CI
soak job refuses to upload an artifact that fails it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

SWEEP_SCHEMA_VERSION = "repro.netem.sweep/1"

#: Every cell record must carry these keys (the flat heatmap row).
_CELL_KEYS = (
    "loss", "base_rtt", "partition_duration",
    "ok", "linearizable",
    "requests", "errors", "shed", "stale_reads",
    "net_messages", "net_lost", "net_partition_rejects",
    "error_rate", "timeout_rate", "unavailable_rate", "stale_ratio",
    "mean_net_latency",
)


@dataclass(frozen=True)
class SweepGrid:
    """The knob axes one sweep explores."""

    losses: tuple = (0.0, 0.02, 0.05)
    rtts: tuple = (0.01, 0.04, 0.08)
    partition_durations: tuple = (0.0, 10.0)

    def cells(self) -> list[dict]:
        return [
            {"loss": loss, "base_rtt": rtt, "partition_duration": dur}
            for loss, rtt, dur in itertools.product(
                self.losses, self.rtts, self.partition_durations
            )
        ]

    def as_dict(self) -> dict:
        return {
            "losses": list(self.losses),
            "rtts": list(self.rtts),
            "partition_durations": list(self.partition_durations),
        }

    def __len__(self) -> int:
        return (len(self.losses) * len(self.rtts)
                * len(self.partition_durations))


@dataclass(frozen=True)
class SweepConfig:
    """Load shape shared by every cell."""

    workers: int = 4
    requests_per_worker: int = 40
    tenants: int = 2
    seed: int = 7
    extra: dict = field(default_factory=dict)


def _cell_record(cell: dict, result: dict) -> dict:
    load = result["load"]
    net = result["net"]
    requests = max(1, load["requests"])
    messages = max(1, net["messages"])
    by_code = load["by_code"]
    errors = sum(
        count for code, count in by_code.items() if code
    )
    record = dict(cell)
    record.update({
        "ok": bool(result["ok"]),
        "linearizable": bool(load["linearizable"]),
        "requests": load["requests"],
        "errors": errors,
        "shed": load["shed"],
        "stale_reads": net["stale_reads"],
        "net_messages": net["messages"],
        "net_lost": net["lost"],
        "net_partition_rejects": net["partition_rejects"],
        "error_rate": round(errors / requests, 6),
        "timeout_rate": round(
            by_code.get("RequestTimeout", 0) / requests, 6
        ),
        "unavailable_rate": round(
            by_code.get("ServiceUnavailable", 0) / requests, 6
        ),
        "stale_ratio": round(net["stale_reads"] / requests, 6),
        "mean_net_latency": round(
            net["latency_total"] / messages, 6
        ),
        "by_code": dict(by_code),
    })
    return record


def run_sweep(build, grid: SweepGrid | None = None,
              config: SweepConfig | None = None,
              progress=None) -> dict:
    """Run the noisy-replication scenario across every grid cell.

    ``progress`` (optional) is called with ``(index, total, record)``
    after each cell — the CLI uses it for live output.
    """
    from ..scenarios.geo import noisy_cross_region_replication

    grid = grid or SweepGrid()
    config = config or SweepConfig()
    records: list[dict] = []
    cells = grid.cells()
    for index, cell in enumerate(cells):
        result = noisy_cross_region_replication(
            build,
            seed=config.seed,
            loss=cell["loss"],
            base_rtt=cell["base_rtt"],
            partition_duration=cell["partition_duration"],
            workers=config.workers,
            requests_per_worker=config.requests_per_worker,
            tenants=config.tenants,
            **config.extra,
        )
        record = _cell_record(cell, result)
        records.append(record)
        if progress is not None:
            progress(index, len(cells), record)
    payload = {
        "schema": SWEEP_SCHEMA_VERSION,
        "service": getattr(build, "service", ""),
        "seed": config.seed,
        "grid": grid.as_dict(),
        "load": {
            "workers": config.workers,
            "requests_per_worker": config.requests_per_worker,
            "tenants": config.tenants,
        },
        "cells": records,
        "all_linearizable": all(r["linearizable"] for r in records),
        "all_ok": all(r["ok"] for r in records),
    }
    problems = validate_sweep(payload)
    if problems:
        raise ValueError(
            "sweep produced schema-invalid output: " + "; ".join(problems)
        )
    return payload


def validate_sweep(payload: dict) -> list[str]:
    """Schema-check one sweep document; empty list == valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["sweep payload is not a JSON object"]
    if payload.get("schema") != SWEEP_SCHEMA_VERSION:
        problems.append(
            f"schema is {payload.get('schema')!r}, "
            f"expected {SWEEP_SCHEMA_VERSION!r}"
        )
    grid = payload.get("grid")
    if not isinstance(grid, dict):
        problems.append("grid is missing")
        grid = {}
    expected_cells = 1
    for axis in ("losses", "rtts", "partition_durations"):
        values = grid.get(axis)
        if not isinstance(values, list) or not values:
            problems.append(f"grid.{axis} must be a non-empty list")
        else:
            expected_cells *= len(values)
            if any(not isinstance(v, (int, float)) for v in values):
                problems.append(f"grid.{axis} must be numeric")
    cells = payload.get("cells")
    if not isinstance(cells, list):
        problems.append("cells is missing")
        return problems
    if not problems and len(cells) != expected_cells:
        problems.append(
            f"expected {expected_cells} cells "
            f"(the grid's cross product), found {len(cells)}"
        )
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append(f"cells[{index}] is not an object")
            continue
        for key in _CELL_KEYS:
            if key not in cell:
                problems.append(f"cells[{index}] lacks {key!r}")
        for key in ("error_rate", "timeout_rate", "unavailable_rate",
                    "stale_ratio"):
            value = cell.get(key)
            if isinstance(value, (int, float)) and not (
                0.0 <= float(value) <= 1.0
            ):
                problems.append(
                    f"cells[{index}].{key} = {value} is not a rate"
                )
    return problems


def render_heatmap(payload: dict, metric: str = "error_rate",
                   partition_duration: float | None = None) -> str:
    """One (loss x RTT) slice of a sweep as an ASCII heatmap.

    Rows are loss values, columns are base RTTs; cells show the chosen
    metric at the requested partition duration (default: the largest
    swept, where the weather is worst).
    """
    grid = payload["grid"]
    durations = grid["partition_durations"]
    if partition_duration is None:
        partition_duration = max(durations)
    index = {
        (cell["loss"], cell["base_rtt"]): cell
        for cell in payload["cells"]
        if cell["partition_duration"] == partition_duration
    }
    lines = [
        f"{metric} @ partition_duration={partition_duration:g}s "
        f"(service={payload.get('service', '?')})"
    ]
    header = "loss \\ rtt " + "".join(
        f"{rtt * 1000.0:>9.0f}ms" for rtt in grid["rtts"]
    )
    lines.append(header)
    for loss in grid["losses"]:
        row = [f"{loss * 100.0:>9.1f}% "]
        for rtt in grid["rtts"]:
            cell = index.get((loss, rtt))
            if cell is None:
                row.append(f"{'-':>11}")
                continue
            value = cell.get(metric, 0.0)
            mark = "" if cell.get("linearizable") else "!"
            if isinstance(value, float) and value < 1:
                row.append(f"{value:>10.3f}{mark or ' '}")
            else:
                row.append(f"{value!s:>10}{mark or ' '}")
        lines.append("".join(row))
    lines.append(
        "('!' marks a cell that failed the linearizability check)"
    )
    return "\n".join(lines)
