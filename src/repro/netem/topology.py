"""Regions, zones and directed links: the static shape of the network.

Real clouds fail along *paths*: a caller in one region reaching a
resource homed in another crosses a link with its own round-trip
time, jitter, bandwidth and loss floor — and that link can degrade,
partition and heal while requests are in flight.  The topology layer
models exactly that shape on the virtual clock: named regions,
directed :class:`Link` objects carrying a static :class:`LinkSpec`
plus *dynamic* state (an RTT multiplier, extra loss, a partition
flag), and bookkeeping for fair bandwidth sharing across the
transfers currently riding each link.

Everything here is passive data; the decision core that consumes it
(seeded loss draws, latency charging) lives in
:mod:`repro.netem.engine`, and the scripted evolution of the dynamic
state lives in :mod:`repro.netem.timeline`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """The static parameters of one directed region-to-region link.

    ``base_rtt`` and ``jitter`` are virtual-clock seconds (one request/
    response exchange costs ``base_rtt + U[0, jitter)``); ``bandwidth``
    is payload megabytes per virtual second, shared fairly across
    concurrent transfers; ``loss`` is the per-message loss probability
    on a healthy link.
    """

    src: str
    dst: str
    base_rtt: float = 0.002
    jitter: float = 0.0005
    bandwidth: float = 1000.0
    loss: float = 0.0


#: What a same-region hop costs: a LAN round trip, effectively free
#: bandwidth, and no loss floor.
LOCAL_RTT = 0.0005


class Link:
    """One directed link: static spec plus mutable weather.

    The dynamic fields are what fault timelines move: ``rtt_multiplier``
    and ``extra_loss`` model degradation (congestion, a flapping
    middlebox), ``partitioned`` models a full connectivity cut.  Flow
    accounting (``begin_flow`` / ``end_flow``) tracks how many
    transfers currently share the link so the engine can charge each
    one its max-min fair share of the bandwidth.
    """

    __slots__ = (
        "spec", "rtt_multiplier", "extra_loss", "partitioned",
        "partition_windows", "_flows", "_lock",
    )

    def __init__(self, spec: LinkSpec):
        self.spec = spec
        self.rtt_multiplier = 1.0
        self.extra_loss = 0.0
        self.partitioned = False
        #: Closed ``(start, end)`` partition windows plus, while
        #: partitioned, one open ``(start, None)`` tail — the
        #: telemetry report renders these as the partition history.
        self.partition_windows: list[tuple[float, float | None]] = []
        self._flows = 0
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"{self.spec.src}->{self.spec.dst}"

    # -- weather -----------------------------------------------------------

    def effective_rtt(self, fraction: float) -> float:
        """The RTT one exchange pays, given a jitter draw in [0, 1)."""
        spec = self.spec
        return (spec.base_rtt + spec.jitter * fraction) * self.rtt_multiplier

    @property
    def effective_loss(self) -> float:
        return min(1.0, self.spec.loss + self.extra_loss)

    def degrade(self, rtt_multiplier: float = 1.0,
                extra_loss: float = 0.0) -> None:
        self.rtt_multiplier = max(1.0, float(rtt_multiplier))
        self.extra_loss = max(0.0, float(extra_loss))

    def restore(self) -> None:
        """Clear degradation (partitions heal separately)."""
        self.rtt_multiplier = 1.0
        self.extra_loss = 0.0

    def partition(self, now: float) -> None:
        if not self.partitioned:
            self.partitioned = True
            self.partition_windows.append((now, None))

    def heal(self, now: float) -> None:
        if self.partitioned:
            self.partitioned = False
            start, __ = self.partition_windows[-1]
            self.partition_windows[-1] = (start, now)

    # -- bandwidth sharing -------------------------------------------------

    def begin_flow(self) -> int:
        """Register a transfer; returns how many flows now share the
        link (this one included) — its fair-share divisor."""
        with self._lock:
            self._flows += 1
            return self._flows

    def end_flow(self) -> None:
        with self._lock:
            self._flows = max(0, self._flows - 1)

    @property
    def flows(self) -> int:
        with self._lock:
            return self._flows

    def transfer_seconds(self, size_mb: float, sharers: int) -> float:
        """Clock-seconds to move ``size_mb`` at the fair share of the
        link bandwidth among ``sharers`` concurrent transfers."""
        if size_mb <= 0 or self.spec.bandwidth <= 0:
            return 0.0
        return size_mb / (self.spec.bandwidth / max(1, sharers))


class NetworkTopology:
    """Named regions plus the directed links between them.

    Links not declared explicitly are synthesized on first use from
    ``default`` (or, for a same-region hop, from the LAN profile), so
    a topology is total: every (src, dst) pair resolves to a link.
    """

    def __init__(self, regions: "list[str] | tuple[str, ...]",
                 default: LinkSpec | None = None):
        if not regions:
            raise ValueError("a topology needs at least one region")
        self.regions = list(dict.fromkeys(regions))
        self.default = default or LinkSpec(src="", dst="")
        self._links: dict[tuple[str, str], Link] = {}
        self._lock = threading.Lock()

    def add_link(self, spec: LinkSpec) -> Link:
        link = Link(spec)
        self._links[(spec.src, spec.dst)] = link
        return link

    def connect(self, a: str, b: str, **spec_kwargs: object) -> None:
        """Declare the symmetric pair of directed links between two
        regions with identical parameters."""
        self.add_link(LinkSpec(src=a, dst=b, **spec_kwargs))
        self.add_link(LinkSpec(src=b, dst=a, **spec_kwargs))

    def link(self, src: str, dst: str) -> Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is not None:
            return link
        with self._lock:
            link = self._links.get(key)
            if link is None:
                if src == dst:
                    spec = LinkSpec(src=src, dst=dst, base_rtt=LOCAL_RTT,
                                    jitter=0.0001, bandwidth=10_000.0,
                                    loss=0.0)
                else:
                    spec = LinkSpec(
                        src=src, dst=dst,
                        base_rtt=self.default.base_rtt,
                        jitter=self.default.jitter,
                        bandwidth=self.default.bandwidth,
                        loss=self.default.loss,
                    )
                link = Link(spec)
                self._links[key] = link
        return link

    def links(self) -> list[Link]:
        with self._lock:
            return list(self._links.values())

    # -- pairwise weather ---------------------------------------------------

    def partition(self, a: str, b: str, now: float) -> None:
        """Cut both directions between two regions."""
        self.link(a, b).partition(now)
        self.link(b, a).partition(now)

    def heal(self, a: str, b: str, now: float) -> None:
        self.link(a, b).heal(now)
        self.link(b, a).heal(now)

    def degrade(self, a: str, b: str, rtt_multiplier: float = 1.0,
                extra_loss: float = 0.0) -> None:
        self.link(a, b).degrade(rtt_multiplier, extra_loss)
        self.link(b, a).degrade(rtt_multiplier, extra_loss)

    def restore(self, a: str, b: str) -> None:
        self.link(a, b).restore()
        self.link(b, a).restore()

    def partitioned(self, a: str, b: str) -> bool:
        if a == b:
            return False
        return self.link(a, b).partitioned or self.link(b, a).partitioned

    def partition_report(self) -> dict[str, list[tuple[float, float | None]]]:
        """Per-link partition windows (the outage history)."""
        return {
            link.name: list(link.partition_windows)
            for link in self.links()
            if link.partition_windows
        }


def uniform_topology(
    regions: "list[str] | tuple[str, ...]",
    base_rtt: float = 0.04,
    jitter: float = 0.01,
    bandwidth: float = 200.0,
    loss: float = 0.0,
) -> NetworkTopology:
    """All cross-region links identical — the sweep harness's knob set."""
    topology = NetworkTopology(
        regions,
        default=LinkSpec(src="", dst="", base_rtt=base_rtt, jitter=jitter,
                         bandwidth=bandwidth, loss=loss),
    )
    ordered = topology.regions
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            topology.connect(a, b, base_rtt=base_rtt, jitter=jitter,
                             bandwidth=bandwidth, loss=loss)
    return topology


#: The default three regions the geo scenarios place traffic across.
DEFAULT_REGIONS = ("us-east-1", "us-west-2", "eu-west-1")


def three_region_topology() -> NetworkTopology:
    """A realistic-ish three-region WAN: short hop coast-to-coast,
    long hop across the Atlantic."""
    topology = NetworkTopology(list(DEFAULT_REGIONS))
    topology.connect("us-east-1", "us-west-2",
                     base_rtt=0.065, jitter=0.008, bandwidth=400.0,
                     loss=0.0005)
    topology.connect("us-east-1", "eu-west-1",
                     base_rtt=0.080, jitter=0.010, bandwidth=250.0,
                     loss=0.001)
    topology.connect("us-west-2", "eu-west-1",
                     base_rtt=0.140, jitter=0.015, bandwidth=150.0,
                     loss=0.001)
    return topology
