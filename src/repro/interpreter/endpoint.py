"""A wire-protocol envelope over any backend.

Emulators "mimic the cloud by exposing identical API interfaces" (§2):
DevOps tooling talks a JSON envelope (action + parameters) and expects
request ids, typed error envelopes and consistent metadata.  This layer
wraps any backend — learned emulator, reference cloud, baseline — in
that shape, so a client cannot tell which it is speaking to except
through behaviour (which is the whole point of alignment).

The envelope follows the query-API convention::

    request:  {"Action": "CreateVpc", "Parameters": {"CidrBlock": ...}}
    success:  {"ResponseMetadata": {"RequestId": ...}, <data fields>}
    failure:  {"ResponseMetadata": {"RequestId": ...},
               "Error": {"Code": ..., "Message": ...}}

The endpoint is thread-safe: the serving layer shares one instance
across worker threads, so request-id allocation is serialized (each id
is still a pure function of the endpoint seed and its position in the
admission order — recorded traffic replays byte-identically).
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field

from .errors import ApiResponse


class ProtocolError(Exception):
    """The request envelope itself is malformed."""


class RequestIdSequence:
    """Deterministic, thread-safe request-id allocation.

    Ids are a hash of ``(seed, counter)``, formatted UUID-style.  The
    counter increment is atomic so concurrent callers never mint
    duplicate ids; the *sequence* of ids is fixed by the seed, and
    which request gets which id is fixed by admission order.
    """

    __slots__ = ("seed", "_counter", "_lock")

    def __init__(self, seed: int = 1):
        self.seed = seed
        self._counter = 0
        self._lock = threading.Lock()

    def next(self) -> str:
        with self._lock:
            self._counter += 1
            counter = self._counter
        digest = hashlib.sha256(
            f"{self.seed}:{counter}".encode()
        ).hexdigest()
        return (f"{digest[:8]}-{digest[8:12]}-{digest[12:16]}-"
                f"{digest[16:20]}-{digest[20:32]}")


@dataclass
class JsonEndpoint:
    """A JSON front door for one backend.

    Request ids are deterministic (a hash of the endpoint seed and the
    request counter) so recorded traffic replays byte-identically.
    """

    backend: object
    seed: int = 1
    #: Optional run sink; per-request spans and counters land here.
    telemetry: object | None = None
    _ids: RequestIdSequence = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._ids is None:
            self._ids = RequestIdSequence(self.seed)

    def _request_id(self) -> str:
        return self._ids.next()

    # -- dict envelope -----------------------------------------------------

    def dispatch(self, request: dict) -> dict:
        """Handle one decoded request envelope."""
        if not isinstance(request, dict):
            raise ProtocolError("request must be a JSON object")
        action = request.get("Action")
        if not isinstance(action, str) or not action:
            raise ProtocolError("request must carry a string 'Action'")
        parameters = request.get("Parameters", {})
        if parameters is None:
            parameters = {}
        if not isinstance(parameters, dict):
            raise ProtocolError("'Parameters' must be a JSON object")
        telemetry = self.telemetry
        if telemetry is None or getattr(telemetry, "obs", None) is not None:
            # Under the serving observability plane the front door has
            # already opened this request's root span; a second
            # per-request span here would only double the span count
            # the tail sampler is bounding.
            response = self.backend.invoke(action, parameters)
        else:
            with telemetry.span(
                "endpoint.request", kind="endpoint", action=action
            ) as span:
                response = self.backend.invoke(action, parameters)
                telemetry.metrics.counter("endpoint.requests").inc()
                if not response.success:
                    span.set("error_code", response.error_code)
                    telemetry.metrics.counter("endpoint.errors").inc()
        return self._envelope(response)

    def _envelope(self, response: ApiResponse) -> dict:
        body: dict = {
            "ResponseMetadata": {"RequestId": self._request_id()},
        }
        if response.success:
            body.update(response.data)
        else:
            body["Error"] = {
                "Code": response.error_code,
                "Message": response.error_message,
            }
            # Failure responses normally carry no data; the serving
            # layer uses the slot for throttle metadata (Retry-After
            # hints), which rides inside the error object the way the
            # cloud's own throttle annotations do.
            if response.data:
                body["Error"].update(response.data)
        return body

    # -- text envelope -----------------------------------------------------------

    def handle(self, payload: "str | bytes") -> str:
        """Handle one JSON-encoded request; always returns valid JSON.

        Envelope problems — undecodable bytes, unparsable JSON, a
        non-object top level, a missing or mistyped ``Action`` or
        ``Parameters`` — come back as a 400-style
        ``SerializationException`` rather than an exception: wire front
        doors don't crash on bad input.
        """
        if isinstance(payload, (bytes, bytearray)):
            try:
                payload = bytes(payload).decode("utf-8")
            except UnicodeDecodeError:
                return json.dumps(self._serialization_error(
                    "request body is not valid UTF-8"
                ))
        try:
            request = json.loads(payload)
        except (json.JSONDecodeError, ValueError) as error:
            message = getattr(error, "msg", str(error))
            return json.dumps(self._serialization_error(
                f"could not parse request: {message}"
            ))
        try:
            body = self.dispatch(request)
        except ProtocolError as error:
            body = self._serialization_error(str(error))
        return json.dumps(body)

    def _serialization_error(self, message: str) -> dict:
        return {
            "ResponseMetadata": {"RequestId": self._request_id()},
            "Error": {
                "Code": "SerializationException",
                "Message": message,
            },
        }

    @staticmethod
    def is_error(body: dict) -> bool:
        return "Error" in body
