"""A wire-protocol envelope over any backend.

Emulators "mimic the cloud by exposing identical API interfaces" (§2):
DevOps tooling talks a JSON envelope (action + parameters) and expects
request ids, typed error envelopes and consistent metadata.  This layer
wraps any backend — learned emulator, reference cloud, baseline — in
that shape, so a client cannot tell which it is speaking to except
through behaviour (which is the whole point of alignment).

The envelope follows the query-API convention::

    request:  {"Action": "CreateVpc", "Parameters": {"CidrBlock": ...}}
    success:  {"ResponseMetadata": {"RequestId": ...}, <data fields>}
    failure:  {"ResponseMetadata": {"RequestId": ...},
               "Error": {"Code": ..., "Message": ...}}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from .errors import ApiResponse


class ProtocolError(Exception):
    """The request envelope itself is malformed."""


@dataclass
class JsonEndpoint:
    """A JSON front door for one backend.

    Request ids are deterministic (a hash of the endpoint seed and the
    request counter) so recorded traffic replays byte-identically.
    """

    backend: object
    seed: int = 1
    #: Optional run sink; per-request spans and counters land here.
    telemetry: object | None = None
    _counter: int = field(default=0, repr=False)

    def _request_id(self) -> str:
        self._counter += 1
        digest = hashlib.sha256(
            f"{self.seed}:{self._counter}".encode()
        ).hexdigest()
        return (f"{digest[:8]}-{digest[8:12]}-{digest[12:16]}-"
                f"{digest[16:20]}-{digest[20:32]}")

    # -- dict envelope -----------------------------------------------------

    def dispatch(self, request: dict) -> dict:
        """Handle one decoded request envelope."""
        if not isinstance(request, dict):
            raise ProtocolError("request must be a JSON object")
        action = request.get("Action")
        if not isinstance(action, str) or not action:
            raise ProtocolError("request must carry a string 'Action'")
        parameters = request.get("Parameters", {})
        if parameters is None:
            parameters = {}
        if not isinstance(parameters, dict):
            raise ProtocolError("'Parameters' must be a JSON object")
        telemetry = self.telemetry
        if telemetry is None:
            response = self.backend.invoke(action, parameters)
        else:
            with telemetry.span(
                "endpoint.request", kind="endpoint", action=action
            ) as span:
                response = self.backend.invoke(action, parameters)
                telemetry.metrics.counter("endpoint.requests").inc()
                if not response.success:
                    span.set("error_code", response.error_code)
                    telemetry.metrics.counter("endpoint.errors").inc()
        return self._envelope(response)

    def _envelope(self, response: ApiResponse) -> dict:
        body: dict = {
            "ResponseMetadata": {"RequestId": self._request_id()},
        }
        if response.success:
            body.update(response.data)
        else:
            body["Error"] = {
                "Code": response.error_code,
                "Message": response.error_message,
            }
        return body

    # -- text envelope -----------------------------------------------------------

    def handle(self, payload: str) -> str:
        """Handle one JSON-encoded request; always returns valid JSON.

        Envelope problems come back as a 400-style ``SerializationError``
        rather than an exception: wire front doors don't crash on bad
        input.
        """
        try:
            request = json.loads(payload)
        except json.JSONDecodeError as error:
            return json.dumps({
                "ResponseMetadata": {"RequestId": self._request_id()},
                "Error": {
                    "Code": "SerializationException",
                    "Message": f"could not parse request: {error.msg}",
                },
            })
        try:
            body = self.dispatch(request)
        except ProtocolError as error:
            body = {
                "ResponseMetadata": {"RequestId": self._request_id()},
                "Error": {
                    "Code": "SerializationException",
                    "Message": str(error),
                },
            }
        return json.dumps(body)

    @staticmethod
    def is_error(body: dict) -> bool:
        return "Error" in body
