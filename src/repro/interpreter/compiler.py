"""Closure compilation of SM specs: the serve-path fast lane.

The paper frames the interpreter as "mapping the spec rules to code
blocks, leveraging the grammar" (§4.2).  The tree-walking
:class:`~repro.interpreter.evaluator.Evaluator` does that mapping on
every statement of every API call; this module does it **once**, at
spec-registration time, lowering each transition body into a flat
tuple of Python closures.

Lowering rules (each relative to the *owning* spec, whose static
shape is known at compile time):

- name resolution order (scope -> ``id`` -> state read -> enum
  constant -> error) collapses to pre-decided branches: whether an
  identifier is a state variable, is declared SM-typed (and therefore
  wrapped in a :class:`Handle`), or is an enum symbol is decided at
  compile time; only the scope probe stays dynamic;
- state reads/writes go straight to the transaction overlay, skipping
  the per-access ``Handle.spec`` lookup;
- builtins resolve to their implementation functions at compile time;
- assert messages pre-check for interpolation braces;
- cross-SM ``call`` sites pre-decide instantiate-vs-dispatch
  eligibility and re-enter compiled callees when available, falling
  back to the evaluator otherwise.

Compilation is semantics-preserving by construction where it applies
and *falls back* everywhere else: a transition that uses an unknown
construct is skipped (the evaluator remains the reference
implementation), and every compiled transition remembers the body it
was lowered from — if the body has been swapped since (alignment
repairs do this), :meth:`CompiledTransition.fresh` fails and the
caller takes the interpreted path instead of running stale code.
"""

from __future__ import annotations

from ..spec import ast
from .builtins import PURE_BUILTINS
from .errors import CloudError, INTERNAL_FAILURE
from .evaluator import (
    _is_enum_symbol,
    _plain,
    _SafeScope,
    _compare,
    evaluate_defaults,
    Evaluator,
    MAX_CALL_DEPTH,
)
from .machine import Handle


class Runtime:
    """Per-invocation context threaded through compiled closures.

    One is built per API call (it carries that call's transaction) and
    shared by every closure the call reaches, including compiled
    callees of cross-SM calls.
    """

    __slots__ = ("txn", "registry", "specs", "compiled")

    def __init__(self, txn, registry, specs, compiled: "CompiledModule"):
        self.txn = txn
        self.registry = registry
        self.specs = specs
        self.compiled = compiled

    def evaluator(self) -> Evaluator:
        """A reference evaluator over the same transaction (fallback)."""
        return Evaluator(self.txn, self.specs, self.registry)


class _SpecInfo:
    """Static facts about the owning spec, shared by its closures."""

    __slots__ = ("spec", "state_names", "sm_states", "handleish")

    def __init__(self, spec: ast.SMSpec):
        self.spec = spec
        self.state_names = frozenset(spec.state_names())
        self.sm_states = frozenset(
            decl.name for decl in spec.states if decl.type.kind == "sm"
        )
        # Parameter names that are SM-typed somewhere in this spec's
        # transitions: a string bound under such a name resolves to a
        # live instance's Handle (Evaluator._looks_like_handle).
        self.handleish = frozenset(
            param.name
            for transition in spec.transitions.values()
            for param in transition.params
            if param.type.kind == "sm"
        )


def _wrap_dynamic(rt: Runtime, owner: Handle, name: str, value):
    """Handle-wrap a state value whose owner's spec is only known at
    run time (attribute reads on foreign handles)."""
    declared = owner.spec.state_type(name)
    if (
        declared is not None
        and declared.kind == "sm"
        and isinstance(value, str)
        and value
        and rt.txn.instance(value) is not None
    ):
        return Handle(rt.txn, value)
    return value


# ---------------------------------------------------------------------------
# Expressions -> (rt, subject, scope) -> value
# ---------------------------------------------------------------------------

def _compile_expr(expr: ast.Expr, info: _SpecInfo):
    if isinstance(expr, ast.Literal):
        value = expr.value

        def run_literal(rt, subject, scope):
            return value

        return run_literal

    if isinstance(expr, ast.SelfRef):
        def run_self(rt, subject, scope):
            return subject

        return run_self

    if isinstance(expr, ast.Name):
        return _compile_name(expr.ident, info)

    if isinstance(expr, ast.Attr):
        return _compile_attr(expr, info)

    if isinstance(expr, ast.ListExpr):
        item_fs = tuple(_compile_expr(item, info) for item in expr.items)

        def run_list(rt, subject, scope):
            return [item(rt, subject, scope) for item in item_fs]

        return run_list

    if isinstance(expr, ast.Func):
        return _compile_func(expr, info)

    raise NotImplementedError(f"expression {type(expr).__name__}")


#: Sentinel for scope probes (a bound value may legitimately be None).
_ABSENT = object()


def _compile_name(ident: str, info: _SpecInfo):
    is_id = ident == "id"
    is_state = ident in info.state_names
    wrap = ident in info.sm_states
    handleish = ident in info.handleish
    is_enum = _is_enum_symbol(ident)

    def run_name(rt, subject, scope):
        value = scope.get(ident, _ABSENT)
        if value is not _ABSENT:
            if handleish and isinstance(value, str):
                if rt.txn.instance(value) is not None:
                    return Handle(rt.txn, value)
            return value
        if is_id:
            return subject.instance_id
        if is_state:
            value = rt.txn.get_state(subject.instance_id, ident)
            if (
                wrap
                and isinstance(value, str)
                and value
                and rt.txn.instance(value) is not None
            ):
                return Handle(rt.txn, value)
            return value
        if is_enum:
            return ident
        raise CloudError(INTERNAL_FAILURE, f"unresolved name {ident!r}")

    return run_name


def _compile_attr(expr: ast.Attr, info: _SpecInfo):
    attr = expr.attr

    # ``self.x``: the owner is the subject, whose spec is the owning
    # spec — the wrap decision is static, so the read collapses to a
    # transaction-overlay lookup (what Evaluator does dynamically via
    # Handle.get + _wrap_if_sm on the same spec).
    if isinstance(expr.base, ast.SelfRef):
        if attr == "id":
            def run_self_id(rt, subject, scope):
                return subject.instance_id

            return run_self_id
        wrap = attr in info.sm_states

        def run_self_attr(rt, subject, scope):
            value = rt.txn.get_state(subject.instance_id, attr)
            if (
                wrap
                and isinstance(value, str)
                and value
                and rt.txn.instance(value) is not None
            ):
                return Handle(rt.txn, value)
            return value

        return run_self_attr

    base_f = _compile_expr(expr.base, info)

    def run_attr(rt, subject, scope):
        base = base_f(rt, subject, scope)
        if isinstance(base, Handle):
            value = base.get(attr)
            return _wrap_dynamic(rt, base, attr, value)
        if isinstance(base, str):
            instance = rt.txn.instance(base)
            if instance is not None:
                return Handle(rt.txn, base).get(attr)
        if isinstance(base, dict):
            return base.get(attr)
        if base is None:
            return None
        raise CloudError(
            INTERNAL_FAILURE,
            f"cannot read .{attr} of {type(base).__name__}",
        )

    return run_attr


def _compile_func(expr: ast.Func, info: _SpecInfo):
    arg_fs = tuple(_compile_expr(arg, info) for arg in expr.args)
    name = expr.name

    if name == "new_id":
        def run_new_id(rt, subject, scope):
            args = [_plain(arg(rt, subject, scope)) for arg in arg_fs]
            prefix = str(args[0]) if args else subject.spec.name
            return rt.registry.new_id(prefix)

        return run_new_id

    if name == "now":
        def run_now(rt, subject, scope):
            for arg in arg_fs:
                _plain(arg(rt, subject, scope))
            return rt.registry.new_id("tick")

        return run_now

    impl = PURE_BUILTINS.get(name)
    if name == "exists" and len(arg_fs) == 1:
        # exists() is agnostic to Handle/list plaining: a Handle's id
        # is never None/"" (Handle.__eq__ compares ids to strings), so
        # the _plain round-trip is skippable.
        arg0 = arg_fs[0]

        def run_exists(rt, subject, scope):
            value = arg0(rt, subject, scope)
            return value is not None and value != ""

        return run_exists
    if impl is not None and len(arg_fs) == 1:
        arg0 = arg_fs[0]

        def run_builtin1(rt, subject, scope):
            return impl(_plain(arg0(rt, subject, scope)))

        return run_builtin1
    if impl is not None and len(arg_fs) == 2:
        arg0, arg1 = arg_fs

        def run_builtin2(rt, subject, scope):
            return impl(
                _plain(arg0(rt, subject, scope)),
                _plain(arg1(rt, subject, scope)),
            )

        return run_builtin2

    def run_builtin(rt, subject, scope):
        args = [_plain(arg(rt, subject, scope)) for arg in arg_fs]
        if impl is None:
            raise CloudError(INTERNAL_FAILURE, f"unknown builtin {name!r}")
        return impl(*args)

    return run_builtin


# ---------------------------------------------------------------------------
# Predicates -> (rt, subject, scope) -> bool
# ---------------------------------------------------------------------------

def _compile_pred(pred: ast.Pred, info: _SpecInfo):
    if isinstance(pred, ast.Truthy):
        expr_f = _compile_expr(pred.expr, info)

        def run_truthy(rt, subject, scope):
            value = expr_f(rt, subject, scope)
            return True if isinstance(value, Handle) else bool(value)

        return run_truthy

    if isinstance(pred, ast.Not):
        inner = _compile_pred(pred.pred, info)

        def run_not(rt, subject, scope):
            return not inner(rt, subject, scope)

        return run_not

    if isinstance(pred, ast.And):
        left = _compile_pred(pred.left, info)
        right = _compile_pred(pred.right, info)

        def run_and(rt, subject, scope):
            return left(rt, subject, scope) and right(rt, subject, scope)

        return run_and

    if isinstance(pred, ast.Or):
        left = _compile_pred(pred.left, info)
        right = _compile_pred(pred.right, info)

        def run_or(rt, subject, scope):
            return left(rt, subject, scope) or right(rt, subject, scope)

        return run_or

    if isinstance(pred, ast.Compare):
        left_f = _compile_expr(pred.left, info)
        right_f = _compile_expr(pred.right, info)
        op = pred.op
        if op == "==":
            # Comparisons against a literal (status == ACTIVE) fold the
            # constant side at compile time.
            if isinstance(pred.right, ast.Literal):
                const = _plain(pred.right.value)

                def run_eq_const(rt, subject, scope):
                    return _plain(left_f(rt, subject, scope)) == const

                return run_eq_const

            def run_eq(rt, subject, scope):
                return (
                    _plain(left_f(rt, subject, scope))
                    == _plain(right_f(rt, subject, scope))
                )

            return run_eq
        if op == "!=":
            if isinstance(pred.right, ast.Literal):
                const = _plain(pred.right.value)

                def run_ne_const(rt, subject, scope):
                    return _plain(left_f(rt, subject, scope)) != const

                return run_ne_const

            def run_ne(rt, subject, scope):
                return (
                    _plain(left_f(rt, subject, scope))
                    != _plain(right_f(rt, subject, scope))
                )

            return run_ne

        def run_cmp(rt, subject, scope):
            return _compare(
                op,
                _plain(left_f(rt, subject, scope)),
                _plain(right_f(rt, subject, scope)),
            )

        return run_cmp

    raise NotImplementedError(f"predicate {type(pred).__name__}")


# ---------------------------------------------------------------------------
# Statements -> (rt, subject, scope, payload, depth) -> None
# ---------------------------------------------------------------------------

def _compile_block(stmts, info: _SpecInfo):
    """Compile a statement list, fusing runs of consecutive plain reads.

    Describe bodies are dominated by back-to-back ``read`` statements;
    fusing a run into one step fetches the subject's state mapping
    once (:meth:`Transaction.state_of`) and pays one closure call for
    the whole run instead of one per read.
    """
    steps = []
    pending: list[tuple[str, str]] = []  # (state, var) plain-read run

    def flush():
        if not pending:
            return
        if len(pending) == 1:
            name, var = pending[0]
            steps.append(_compile_read(ast.Read(var=var, state=name), info))
        else:
            steps.append(_fused_reads(tuple(pending)))
        pending.clear()

    for stmt in stmts:
        if (
            isinstance(stmt, ast.Read)
            and stmt.state != "id"
            and stmt.state not in info.sm_states
        ):
            pending.append((stmt.state, stmt.var))
            continue
        flush()
        steps.append(_compile_stmt(stmt, info))
    flush()
    return tuple(steps)


def _fused_reads(pairs: tuple[tuple[str, str], ...]):
    def run_reads(rt, subject, scope, payload, depth):
        state = rt.txn.state_of(subject.instance_id)
        get = state.get
        if depth == 0:
            for name, var in pairs:
                value = get(name)
                scope[var] = value
                payload[var] = value
        else:
            for name, var in pairs:
                scope[var] = get(name)

    return run_reads


def _compile_stmt(stmt: ast.Stmt, info: _SpecInfo):
    if isinstance(stmt, ast.Read):
        return _compile_read(stmt, info)
    if isinstance(stmt, ast.Write):
        return _compile_write(stmt, info)
    if isinstance(stmt, ast.Emit):
        return _compile_emit(stmt, info)
    if isinstance(stmt, ast.Assert):
        return _compile_assert(stmt, info)
    if isinstance(stmt, ast.If):
        return _compile_if(stmt, info)
    if isinstance(stmt, ast.Call):
        return _compile_call(stmt, info)
    raise NotImplementedError(f"statement {type(stmt).__name__}")


def _compile_read(stmt: ast.Read, info: _SpecInfo):
    name, var = stmt.state, stmt.var

    if name == "id":
        def run_read_id(rt, subject, scope, payload, depth):
            value = subject.instance_id
            scope[var] = value
            if depth == 0:
                payload[var] = value

        return run_read_id

    if name not in info.sm_states:
        # Committed state only ever holds plain values (defaults are
        # literals; every write stores through ``_plain``), so a read
        # of a non-SM state needs no wrapping and no re-plaining.
        def run_read_plain(rt, subject, scope, payload, depth):
            value = rt.txn.get_state(subject.instance_id, name)
            scope[var] = value
            if depth == 0:
                payload[var] = value

        return run_read_plain

    def run_read(rt, subject, scope, payload, depth):
        raw = rt.txn.get_state(subject.instance_id, name)
        if raw and isinstance(raw, str) and rt.txn.instance(raw) is not None:
            value = Handle(rt.txn, raw)
        else:
            value = raw
        scope[var] = value
        if depth == 0:
            # ``_plain`` of the wrapped handle is exactly the raw id.
            payload[var] = raw

    return run_read


def _compile_write(stmt: ast.Write, info: _SpecInfo):
    name = stmt.state
    value_f = _compile_expr(stmt.value, info)

    def run_write(rt, subject, scope, payload, depth):
        value = value_f(rt, subject, scope)
        rt.txn.set_state(subject.instance_id, name, _plain(value))

    return run_write


def _compile_emit(stmt: ast.Emit, info: _SpecInfo):
    key = stmt.key
    value_f = _compile_expr(stmt.value, info)

    def run_emit(rt, subject, scope, payload, depth):
        value = value_f(rt, subject, scope)
        if depth == 0:
            payload[key] = _plain(value)

    return run_emit


def _compile_assert(stmt: ast.Assert, info: _SpecInfo):
    pred_f = _compile_pred(stmt.pred, info)
    code = stmt.error_code
    template = stmt.message
    interpolates = bool(template) and "{" in template

    def run_assert(rt, subject, scope, payload, depth):
        if pred_f(rt, subject, scope):
            return
        message = template
        if interpolates:
            try:
                message = template.format_map(_SafeScope(subject, scope))
            except Exception:
                message = template
        raise CloudError(code, message)

    return run_assert


def _compile_if(stmt: ast.If, info: _SpecInfo):
    pred_f = _compile_pred(stmt.pred, info)
    then_steps = _compile_block(stmt.then, info)
    else_steps = _compile_block(stmt.orelse, info)

    def run_if(rt, subject, scope, payload, depth):
        branch = then_steps if pred_f(rt, subject, scope) else else_steps
        for step in branch:
            step(rt, subject, scope, payload, depth)

    return run_if


def _compile_call(stmt: ast.Call, info: _SpecInfo):
    arg_fs = tuple(_compile_expr(arg, info) for arg in stmt.args)
    transition_name = stmt.transition

    # Instantiate-eligibility (Evaluator._exec_call): a Name target that
    # is not a state variable of the owning spec but names a known SM
    # type creates a fresh instance — only the scope probe is dynamic.
    target_ident = (
        stmt.target.ident if isinstance(stmt.target, ast.Name) else None
    )
    may_instantiate = (
        target_ident is not None
        and target_ident != "id"
        and target_ident not in info.state_names
    )
    target_f = _compile_expr(stmt.target, info)
    rendered_target = stmt.target.render()

    def run_call(rt, subject, scope, payload, depth):
        args = [arg(rt, subject, scope) for arg in arg_fs]
        if (
            may_instantiate
            and target_ident not in scope
            and target_ident in rt.specs
        ):
            target = _instantiate(rt, target_ident, subject)
        else:
            value = target_f(rt, subject, scope)
            if not isinstance(value, Handle):
                if isinstance(value, str):
                    if rt.txn.instance(value) is None:
                        raise CloudError(
                            INTERNAL_FAILURE,
                            f"call target {value!r} not found",
                        )
                    value = Handle(rt.txn, value)
                else:
                    raise CloudError(
                        INTERNAL_FAILURE,
                        f"call target {rendered_target} is not an SM"
                        " reference",
                    )
            target = value
        callee_spec = target.spec
        callee = callee_spec.transitions.get(transition_name)
        if callee is None:
            raise CloudError(
                INTERNAL_FAILURE,
                f"no transition {transition_name} on SM {callee_spec.name}",
            )
        bound = {
            param.name: args[index] if index < len(args) else None
            for index, param in enumerate(callee.params)
        }
        compiled = rt.compiled.lookup(callee_spec.name, transition_name)
        if compiled is not None and compiled.fresh(callee):
            compiled.run(rt, target, bound, depth=depth + 1)
        else:
            rt.evaluator().run_transition(
                target, callee, bound, depth=depth + 1
            )
        if callee.category == "destroy":
            rt.txn.mark_deleted(target.instance_id)

    return run_call


def _instantiate(rt: Runtime, sm_name: str, parent: Handle) -> Handle:
    spec = rt.specs[sm_name]
    compiled_spec = rt.compiled.specs.get(sm_name)
    if compiled_spec is not None and compiled_spec.spec is spec:
        defaults = compiled_spec.defaults()
    else:
        defaults = evaluate_defaults(spec)
    parent_id = parent.instance_id if spec.parent else ""
    instance = rt.registry.create(spec, defaults, parent_id=parent_id)
    rt.txn.create(instance)
    return Handle(rt.txn, instance.id)


# ---------------------------------------------------------------------------
# Effect analysis
# ---------------------------------------------------------------------------

def _expr_has_effects(expr: ast.Expr) -> bool:
    """``new_id``/``now`` advance registry counters — the only way an
    expression can have an effect."""
    if isinstance(expr, ast.Func):
        if expr.name in ("new_id", "now"):
            return True
        return any(_expr_has_effects(arg) for arg in expr.args)
    if isinstance(expr, ast.Attr):
        return _expr_has_effects(expr.base)
    if isinstance(expr, ast.ListExpr):
        return any(_expr_has_effects(item) for item in expr.items)
    return False


def _pred_has_effects(pred: ast.Pred) -> bool:
    if isinstance(pred, ast.Truthy):
        return _expr_has_effects(pred.expr)
    if isinstance(pred, ast.Not):
        return _pred_has_effects(pred.pred)
    if isinstance(pred, (ast.And, ast.Or)):
        return _pred_has_effects(pred.left) or _pred_has_effects(pred.right)
    if isinstance(pred, ast.Compare):
        return _expr_has_effects(pred.left) or _expr_has_effects(pred.right)
    return True  # unknown predicate: assume the worst


def _body_has_effects(stmts) -> bool:
    """True when executing ``stmts`` could mutate registry or overlay.

    Writes and cross-SM calls are effects; so is any expression using
    ``new_id``/``now``.  Reads, asserts and emits only touch the scope
    and the response payload.
    """
    for stmt in stmts:
        if isinstance(stmt, (ast.Write, ast.Call)):
            return True
        if isinstance(stmt, ast.Read):
            continue
        if isinstance(stmt, ast.Assert):
            if _pred_has_effects(stmt.pred):
                return True
        elif isinstance(stmt, ast.Emit):
            if _expr_has_effects(stmt.value):
                return True
        elif isinstance(stmt, ast.If):
            if (
                _pred_has_effects(stmt.pred)
                or _body_has_effects(stmt.then)
                or _body_has_effects(stmt.orelse)
            ):
                return True
        else:
            return True  # unknown statement: assume the worst
    return False


# ---------------------------------------------------------------------------
# Compiled containers
# ---------------------------------------------------------------------------

class CompiledTransition:
    """One transition body lowered to a flat tuple of step closures."""

    __slots__ = (
        "name", "category", "pure", "_steps", "_source", "_body", "_stub",
    )

    def __init__(self, transition: ast.Transition, steps):
        self.name = transition.name
        self.category = transition.category
        self._steps = tuple(steps)
        self._source = transition
        self._body = transition.body
        self._stub = transition.is_stub
        #: Statically effect-free: running this transition cannot touch
        #: registry or overlay state, so the dispatcher may skip the
        #: transaction entirely (describe fast route).
        self.pure = not _body_has_effects(transition.body)

    def fresh(self, transition: ast.Transition) -> bool:
        """True while ``transition`` still matches what was compiled.

        Alignment repairs swap transition bodies in place; a stale
        compiled form must not run, so callers fall back to the
        evaluator whenever this returns False.
        """
        return (
            transition is self._source
            and transition.body is self._body
            and transition.is_stub == self._stub
        )

    def run(self, rt: Runtime, subject: Handle, args: dict,
            depth: int = 0, collect: dict | None = None) -> dict:
        if depth > MAX_CALL_DEPTH:
            raise CloudError(
                INTERNAL_FAILURE, "cross-SM call depth exceeded"
            )
        if self._stub:
            raise CloudError(
                INTERNAL_FAILURE,
                f"transition {self.name} is an unlinked stub",
            )
        payload: dict = collect if collect is not None else {}
        # Both call sites (dispatch and compiled cross-SM calls) build
        # ``args`` fresh per invocation and never read it afterwards,
        # so the scope may alias it instead of copying.
        scope = args
        for step in self._steps:
            step(rt, subject, scope, payload, depth)
        return payload


#: Tags for the per-spec defaults prototype: which entries must be
#: rebuilt fresh per instance (shared mutables would alias state).
_SCALAR, _LIST, _MAP = 0, 1, 2


class CompiledSpec:
    """Compiled transitions plus a precomputed defaults prototype."""

    __slots__ = ("spec", "transitions", "_default_items")

    def __init__(self, spec: ast.SMSpec,
                 transitions: dict[str, CompiledTransition]):
        self.spec = spec
        self.transitions = transitions
        items = []
        for name, value in evaluate_defaults(spec).items():
            if isinstance(value, list):
                kind = _LIST
            elif isinstance(value, dict):
                kind = _MAP
            else:
                kind = _SCALAR
            items.append((name, value, kind))
        self._default_items = tuple(items)

    def defaults(self) -> dict[str, object]:
        """Initial state for a fresh instance (mutables rebuilt)."""
        out: dict[str, object] = {}
        for name, value, kind in self._default_items:
            if kind == _LIST:
                value = list(value)
            elif kind == _MAP:
                value = dict(value)
            out[name] = value
        return out


class CompiledModule:
    """Every compilable transition of a module, lowered once."""

    __slots__ = ("module", "specs", "skipped")

    def __init__(self, module: ast.SpecModule,
                 specs: dict[str, CompiledSpec], skipped: list[str]):
        self.module = module
        self.specs = specs
        #: ``sm.transition`` names that could not be lowered and run on
        #: the evaluator instead (diagnosable, never silent breakage).
        self.skipped = skipped

    def lookup(self, sm_name: str,
               transition_name: str) -> CompiledTransition | None:
        spec = self.specs.get(sm_name)
        if spec is None:
            return None
        return spec.transitions.get(transition_name)


def compile_module(module: ast.SpecModule) -> CompiledModule:
    """Lower every transition of ``module`` that the compiler covers.

    Unknown constructs are not errors: the affected transition is
    recorded in ``skipped`` and keeps running on the evaluator.
    """
    specs: dict[str, CompiledSpec] = {}
    skipped: list[str] = []
    for sm_name, spec in module.machines.items():
        info = _SpecInfo(spec)
        transitions: dict[str, CompiledTransition] = {}
        for t_name, transition in spec.transitions.items():
            try:
                steps = _compile_block(transition.body, info)
            except NotImplementedError:
                skipped.append(f"{sm_name}.{t_name}")
                continue
            transitions[t_name] = CompiledTransition(transition, steps)
        specs[sm_name] = CompiledSpec(spec, transitions)
    return CompiledModule(module, specs, skipped)
