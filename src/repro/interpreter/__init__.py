"""The emulator framework: executes SM specs as a mock cloud (§4.2).

The framework is the "one-time engineering effort" the paper describes:
a generic interpreter for the SM grammar.  All service-specific
behaviour comes from specs; nothing here knows what a VPC is.
"""

from .builtins import PURE_BUILTINS
from .compiler import (
    compile_module,
    CompiledModule,
    CompiledTransition,
)
from .emulator import Emulator, normalize_key
from .endpoint import JsonEndpoint, ProtocolError
from .errors import (
    ApiResponse,
    CloudError,
    default_notfound_code,
    DEPENDENCY_VIOLATION,
    INTERNAL_FAILURE,
    INVALID_PARAMETER,
    MISSING_PARAMETER,
    UNKNOWN_API,
)
from .evaluator import Evaluator, evaluate_defaults, MAX_CALL_DEPTH
from .machine import Handle, MachineInstance, Registry, Transaction

__all__ = [
    "ApiResponse",
    "CloudError",
    "compile_module",
    "CompiledModule",
    "CompiledTransition",
    "default_notfound_code",
    "DEPENDENCY_VIOLATION",
    "Emulator",
    "Evaluator",
    "evaluate_defaults",
    "Handle",
    "INTERNAL_FAILURE",
    "INVALID_PARAMETER",
    "JsonEndpoint",
    "MachineInstance",
    "ProtocolError",
    "MAX_CALL_DEPTH",
    "MISSING_PARAMETER",
    "normalize_key",
    "PURE_BUILTINS",
    "Registry",
    "Transaction",
    "UNKNOWN_API",
]
