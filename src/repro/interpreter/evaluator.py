"""Transition-body evaluation: the heart of the emulator framework.

The interpreter maps the grammar's four primitives to state effects
(§4.2: "It maps the spec rules to code blocks, leveraging the
grammar").  Evaluation happens inside a transaction; a failed assert
raises :class:`CloudError`, which the emulator turns into a failed API
response with nothing committed.
"""

from __future__ import annotations

from ..spec import ast
from .builtins import PURE_BUILTINS
from .errors import CloudError, INTERNAL_FAILURE
from .machine import Handle, Transaction

#: Hard bound on cross-SM call nesting.  Generated specs could contain
#: mutually recursive calls; the framework fails them deterministically
#: instead of overflowing the stack.
MAX_CALL_DEPTH = 16


def _is_enum_symbol(name: str) -> bool:
    return name.replace("_", "").isupper()


def _truthy(value: object) -> bool:
    if isinstance(value, Handle):
        return True
    return bool(value)


def _plain(value: object) -> object:
    """Convert a runtime value to its storable/response form."""
    if value is None:
        return value
    cls = value.__class__
    if cls is str or cls is int or cls is bool or cls is float:
        return value  # the overwhelmingly common case — already plain
    if isinstance(value, Handle):
        return value.instance_id
    if isinstance(value, list):
        return [_plain(item) for item in value]
    return value


#: Sentinel distinguishing "state variable absent" from a None value.
_MISSING = object()


class Evaluator:
    """Evaluates transitions of one spec module against a transaction."""

    def __init__(self, txn: Transaction, specs: dict[str, ast.SMSpec], registry):
        self.txn = txn
        self.specs = specs
        self.registry = registry

    # -- public entry ---------------------------------------------------------

    def run_transition(
        self,
        subject: Handle,
        transition: ast.Transition,
        args: dict[str, object],
        depth: int = 0,
        collect: dict | None = None,
    ) -> dict:
        """Execute ``transition`` on ``subject``; return the response payload."""
        if depth > MAX_CALL_DEPTH:
            raise CloudError(INTERNAL_FAILURE, "cross-SM call depth exceeded")
        if transition.is_stub:
            raise CloudError(
                INTERNAL_FAILURE,
                f"transition {transition.name} is an unlinked stub",
            )
        payload: dict = collect if collect is not None else {}
        scope: dict[str, object] = dict(args)
        for stmt in transition.body:
            self._exec(stmt, subject, scope, payload, depth)
        return payload

    # -- statements -------------------------------------------------------------

    def _exec(
        self,
        stmt: ast.Stmt,
        subject: Handle,
        scope: dict[str, object],
        payload: dict,
        depth: int,
    ) -> None:
        if isinstance(stmt, ast.Read):
            value = self._read_state(subject, stmt.state)
            scope[stmt.var] = value
            if depth == 0:
                payload[stmt.var] = _plain(value)
            return
        if isinstance(stmt, ast.Write):
            value = self._eval(stmt.value, subject, scope)
            subject.set(stmt.state, _plain(value))
            return
        if isinstance(stmt, ast.Emit):
            value = self._eval(stmt.value, subject, scope)
            if depth == 0:
                payload[stmt.key] = _plain(value)
            return
        if isinstance(stmt, ast.Assert):
            if not self._eval_pred(stmt.pred, subject, scope):
                message = self._interpolate(stmt.message, subject, scope)
                raise CloudError(stmt.error_code, message)
            return
        if isinstance(stmt, ast.If):
            branch = (
                stmt.then
                if self._eval_pred(stmt.pred, subject, scope)
                else stmt.orelse
            )
            for inner in branch:
                self._exec(inner, subject, scope, payload, depth)
            return
        if isinstance(stmt, ast.Call):
            self._exec_call(stmt, subject, scope, depth)
            return
        raise CloudError(INTERNAL_FAILURE, f"unknown statement {type(stmt).__name__}")

    def _exec_call(
        self, stmt: ast.Call, subject: Handle, scope: dict[str, object], depth: int
    ) -> None:
        args = [self._eval(arg, subject, scope) for arg in stmt.args]
        # A call target naming an SM *type* creates a new instance of it
        # and runs the named transition on the fresh machine (how
        # CreateDefaultVPC can call CreateSubnet, §4.2).
        if (
            isinstance(stmt.target, ast.Name)
            and stmt.target.ident not in scope
            and self._read_state_quiet(subject, stmt.target.ident) is _MISSING
            and stmt.target.ident in self.specs
        ):
            target = self._instantiate(stmt.target.ident, parent=subject)
        else:
            value = self._eval(stmt.target, subject, scope)
            if not isinstance(value, Handle):
                if isinstance(value, str):
                    instance = self.txn.instance(value)
                    if instance is None:
                        raise CloudError(
                            INTERNAL_FAILURE, f"call target {value!r} not found"
                        )
                    value = Handle(self.txn, value)
                else:
                    raise CloudError(
                        INTERNAL_FAILURE,
                        f"call target {stmt.target.render()} is not an SM reference",
                    )
            target = value
        callee_spec = target.spec
        callee = callee_spec.transitions.get(stmt.transition)
        if callee is None:
            raise CloudError(
                INTERNAL_FAILURE,
                f"no transition {stmt.transition} on SM {callee_spec.name}",
            )
        bound = {
            param.name: args[index] if index < len(args) else None
            for index, param in enumerate(callee.params)
        }
        self.run_transition(target, callee, bound, depth=depth + 1)
        if callee.category == "destroy":
            self.txn.mark_deleted(target.id)

    def _instantiate(self, sm_name: str, parent: Handle | None = None) -> Handle:
        spec = self.specs[sm_name]
        defaults = evaluate_defaults(spec)
        parent_id = parent.id if parent is not None and spec.parent else ""
        instance = self.registry.create(spec, defaults, parent_id=parent_id)
        self.txn.create(instance)
        return Handle(self.txn, instance.id)

    # -- expressions ------------------------------------------------------------

    def _read_state(self, subject: Handle, name: str) -> object:
        value = subject.get(name)
        return self._wrap_if_sm(subject, name, value)

    def _read_state_quiet(self, subject: Handle, name: str) -> object:
        if name in subject.spec.state_names() or name == "id":
            return subject.get(name)
        return _MISSING

    def _wrap_if_sm(self, subject: Handle, name: str, value: object) -> object:
        declared = subject.spec.state_type(name)
        if (
            declared is not None
            and declared.kind == "sm"
            and isinstance(value, str)
            and value
        ):
            if self.txn.instance(value) is not None:
                return Handle(self.txn, value)
        return value

    def _eval(self, expr: ast.Expr, subject: Handle, scope: dict[str, object]):
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.SelfRef):
            return subject
        if isinstance(expr, ast.Name):
            ident = expr.ident
            if ident in scope:
                value = scope[ident]
                if isinstance(value, str) and self._looks_like_handle(subject, ident):
                    resolved = self.txn.instance(value)
                    if resolved is not None:
                        return Handle(self.txn, value)
                return value
            if ident == "id":
                return subject.id
            quiet = self._read_state_quiet(subject, ident)
            if quiet is not _MISSING:
                return self._wrap_if_sm(subject, ident, quiet)
            if _is_enum_symbol(ident):
                return ident
            raise CloudError(INTERNAL_FAILURE, f"unresolved name {ident!r}")
        if isinstance(expr, ast.Attr):
            base = self._eval(expr.base, subject, scope)
            if isinstance(base, Handle):
                value = base.get(expr.attr)
                return self._wrap_if_sm(base, expr.attr, value)
            if isinstance(base, str):
                instance = self.txn.instance(base)
                if instance is not None:
                    return Handle(self.txn, base).get(expr.attr)
            if isinstance(base, dict):
                return base.get(expr.attr)
            if base is None:
                return None
            raise CloudError(
                INTERNAL_FAILURE, f"cannot read .{expr.attr} of {type(base).__name__}"
            )
        if isinstance(expr, ast.ListExpr):
            return [self._eval(item, subject, scope) for item in expr.items]
        if isinstance(expr, ast.Func):
            return self._eval_func(expr, subject, scope)
        raise CloudError(INTERNAL_FAILURE, f"unknown expression {type(expr).__name__}")

    def _looks_like_handle(self, subject: Handle, name: str) -> bool:
        for transition in subject.spec.transitions.values():
            for param in transition.params:
                if param.name == name and param.type.kind == "sm":
                    return True
        return False

    def _eval_func(self, expr: ast.Func, subject: Handle, scope: dict[str, object]):
        args = [_plain(self._eval(arg, subject, scope)) for arg in expr.args]
        if expr.name == "new_id":
            prefix = str(args[0]) if args else subject.spec.name
            return self.registry.new_id(prefix)
        if expr.name == "now":
            return self.registry.new_id("tick")
        impl = PURE_BUILTINS.get(expr.name)
        if impl is None:
            raise CloudError(INTERNAL_FAILURE, f"unknown builtin {expr.name!r}")
        return impl(*args)

    # -- predicates ----------------------------------------------------------------

    def _eval_pred(
        self, pred: ast.Pred, subject: Handle, scope: dict[str, object]
    ) -> bool:
        if isinstance(pred, ast.Truthy):
            return _truthy(self._eval(pred.expr, subject, scope))
        if isinstance(pred, ast.Not):
            return not self._eval_pred(pred.pred, subject, scope)
        if isinstance(pred, ast.And):
            return self._eval_pred(pred.left, subject, scope) and self._eval_pred(
                pred.right, subject, scope
            )
        if isinstance(pred, ast.Or):
            return self._eval_pred(pred.left, subject, scope) or self._eval_pred(
                pred.right, subject, scope
            )
        if isinstance(pred, ast.Compare):
            left = _plain(self._eval(pred.left, subject, scope))
            right = _plain(self._eval(pred.right, subject, scope))
            return _compare(pred.op, left, right)
        raise CloudError(INTERNAL_FAILURE, f"unknown predicate {type(pred).__name__}")

    def _interpolate(
        self, template: str, subject: Handle, scope: dict[str, object]
    ) -> str:
        if not template or "{" not in template:
            return template
        values = _SafeScope(subject, scope)
        try:
            return template.format_map(values)
        except Exception:
            return template


class _SafeScope:
    """Mapping for message templates: scope, then state, then the name."""

    def __init__(self, subject: Handle, scope: dict[str, object]):
        self.subject = subject
        self.scope = scope

    def __getitem__(self, key: str) -> object:
        if key in self.scope:
            return _plain(self.scope[key])
        if key == "id":
            return self.subject.id
        if key in self.subject.spec.state_names():
            return _plain(self.subject.get(key))
        return "{" + key + "}"


def _compare(op: str, left: object, right: object) -> bool:
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "in":
        if right is None:
            return False
        return left in right if isinstance(right, (list, tuple, set, str, dict)) else False
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:
        return False
    raise CloudError(INTERNAL_FAILURE, f"unknown comparison {op!r}")


def evaluate_defaults(spec: ast.SMSpec) -> dict[str, object]:
    """Initial state for a fresh instance of ``spec``.

    Defaults must be literals or enum symbols; anything else initializes
    to null, matching how cloud attributes are absent until set.
    """
    defaults: dict[str, object] = {}
    for decl in spec.states:
        value: object = None
        if isinstance(decl.default, ast.Literal):
            value = decl.default.value
        elif isinstance(decl.default, ast.Name):
            value = decl.default.ident
        elif isinstance(decl.default, ast.ListExpr) and not decl.default.items:
            value = []
        if value is None and decl.type.kind == "list":
            value = []
        if value is None and decl.type.kind == "map":
            value = {}
        defaults[decl.name] = value
    return defaults
