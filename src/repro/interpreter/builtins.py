"""Implementations of the spec language's builtin functions.

The builtins give predicates the domain vocabulary that cloud
constraints need (CIDR arithmetic, membership, existence) while keeping
the grammar itself tiny.  Everything here is pure; ``new_id`` and
``now`` take their effects from the evaluation context so that emulator
runs are deterministic and replayable.
"""

from __future__ import annotations

import ipaddress
from functools import lru_cache


@lru_cache(maxsize=4096)
def _parse_network(value: str) -> ipaddress.IPv4Network | None:
    """Parse-and-memoize a CIDR string (``None`` when invalid).

    CIDR predicates dominate constraint checking (every subnet create
    compares its block against all tracked siblings), and the same few
    strings are parsed over and over; `ipaddress` parsing is by far
    the most expensive thing a builtin does.
    """
    try:
        return ipaddress.IPv4Network(value, strict=False)
    except ValueError:
        return None


def valid_cidr(value: object) -> bool:
    """True when ``value`` is a syntactically valid IPv4 CIDR block."""
    if not isinstance(value, str):
        return False
    return _parse_network(value) is not None and "/" in value


@lru_cache(maxsize=4096)
def _valid_ip_str(value: str) -> bool:
    try:
        ipaddress.IPv4Address(value)
    except ValueError:
        return False
    return True


def valid_ip(value: object) -> bool:
    """True when ``value`` is a valid IPv4 address."""
    if not isinstance(value, str):
        return False
    return _valid_ip_str(value)


def prefix_len(value: object) -> int:
    """Prefix length of a CIDR block; -1 when the block is invalid.

    Returning a sentinel instead of raising keeps predicates total,
    which symbolic execution (§4.3) depends on.
    """
    if not valid_cidr(value):
        return -1
    return _parse_network(value).prefixlen


def cidr_within(inner: object, outer: object) -> bool:
    """True when CIDR ``inner`` is wholly contained in CIDR ``outer``."""
    if not (valid_cidr(inner) and valid_cidr(outer)):
        return False
    return _parse_network(inner).subnet_of(_parse_network(outer))


def cidr_overlaps(left: object, right: object) -> bool:
    """True when two CIDR blocks overlap."""
    if not (valid_cidr(left) and valid_cidr(right)):
        return False
    return _parse_network(left).overlaps(_parse_network(right))


def length(value: object) -> int:
    """``len`` over lists, maps and strings; 0 for null."""
    if value is None:
        return 0
    if isinstance(value, (list, dict, str, tuple, set)):
        return len(value)
    return 0


def contains(container: object, item: object) -> bool:
    """Membership over lists/maps/strings; false for null containers."""
    if container is None:
        return False
    if isinstance(container, dict):
        return item in container
    if isinstance(container, (list, tuple, set, str)):
        return item in container
    return False


def exists(value: object) -> bool:
    """True when a value is present (non-null, non-empty-string)."""
    return value is not None and value != ""


def lookup(mapping: object, key: object) -> object:
    """Map lookup that is total (null on missing key / non-map)."""
    if isinstance(mapping, dict):
        return mapping.get(key)
    return None


def concat(*parts: object) -> str:
    """String concatenation; nulls render as empty strings."""
    return "".join("" if part is None else str(part) for part in parts)


def cidr_overlaps_any(block: object, blocks: object) -> bool:
    """True when ``block`` overlaps any CIDR in the list ``blocks``.

    The grammar has no loops (by design), so membership-style CIDR
    checks against a sibling list are a builtin.
    """
    if not isinstance(blocks, (list, tuple)):
        return False
    return any(cidr_overlaps(block, other) for other in blocks)


def append(items: object, item: object) -> list:
    """Return a new list with ``item`` appended (lists are values)."""
    base = list(items) if isinstance(items, (list, tuple)) else []
    base.append(item)
    return base


def remove(items: object, item: object) -> list:
    """Return a new list with the first occurrence of ``item`` removed."""
    base = list(items) if isinstance(items, (list, tuple)) else []
    if item in base:
        base.remove(item)
    return base


def put(mapping: object, key: object, value: object) -> dict:
    """Return a new map with ``key`` set to ``value``."""
    base = dict(mapping) if isinstance(mapping, dict) else {}
    base[key] = value
    return base


def drop(mapping: object, key: object) -> dict:
    """Return a new map without ``key``."""
    base = dict(mapping) if isinstance(mapping, dict) else {}
    base.pop(key, None)
    return base


#: Pure builtins keyed by their spec-language name.  ``new_id`` and
#: ``now`` are context-bound and provided by the evaluator.
PURE_BUILTINS = {
    "valid_cidr": valid_cidr,
    "valid_ip": valid_ip,
    "prefix_len": prefix_len,
    "cidr_within": cidr_within,
    "cidr_overlaps": cidr_overlaps,
    "cidr_overlaps_any": cidr_overlaps_any,
    "len": length,
    "contains": contains,
    "exists": exists,
    "lookup": lookup,
    "concat": concat,
    "append": append,
    "remove": remove,
    "put": put,
    "drop": drop,
}
