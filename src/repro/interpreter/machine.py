"""Runtime state machines, transactions and handles.

Every cloud resource is one :class:`MachineInstance` — an SM spec plus
its current state variables (§3).  Transitions execute inside a
:class:`Transaction` so that a failed ``assert`` rolls back *all* state
effects, including those made through cross-SM ``call``s: cloud APIs
are atomic, and the paper's alignment methodology assumes failed calls
leave no trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spec import ast
from .errors import CloudError, INTERNAL_FAILURE


@dataclass
class MachineInstance:
    """One live resource: identity, spec, and committed state."""

    id: str
    spec: ast.SMSpec
    state: dict[str, object] = field(default_factory=dict)
    parent_id: str = ""

    @property
    def type_name(self) -> str:
        return self.spec.name


class Transaction:
    """Copy-on-write overlay over a registry for one API invocation.

    Reads see pending writes; :meth:`commit` publishes writes, creations
    and deletions atomically.  Abandoning the transaction (on a
    :class:`CloudError`) leaves the registry untouched.
    """

    def __init__(self, registry: "Registry"):
        self.registry = registry
        self._writes: dict[str, dict[str, object]] = {}
        self._created: dict[str, MachineInstance] = {}
        self._deleted: set[str] = set()

    # -- instance access -----------------------------------------------------

    def instance(self, instance_id: str) -> MachineInstance | None:
        if instance_id in self._deleted:
            return None
        if instance_id in self._created:
            return self._created[instance_id]
        return self.registry.instances.get(instance_id)

    def get_state(self, instance_id: str, name: str) -> object:
        pending = self._writes.get(instance_id)
        if pending is not None and name in pending:
            return pending[name]
        instance = self.instance(instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        return instance.state.get(name)

    def state_of(self, instance_id: str) -> dict[str, object]:
        """The instance's state as one mapping (overlay merged in).

        Compiled fused reads fetch this once per run of consecutive
        reads instead of paying the per-name overlay lookup.  The
        merge only copies when the transaction has pending writes for
        the instance; the result must be treated as read-only.
        """
        instance = self.instance(instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        pending = self._writes.get(instance_id)
        if pending:
            return {**instance.state, **pending}
        return instance.state

    def set_state(self, instance_id: str, name: str, value: object) -> None:
        if self.instance(instance_id) is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        self._writes.setdefault(instance_id, {})[name] = value

    def create(self, instance: MachineInstance) -> None:
        self._created[instance.id] = instance

    def mark_deleted(self, instance_id: str) -> None:
        self._deleted.add(instance_id)

    def is_created_here(self, instance_id: str) -> bool:
        return instance_id in self._created

    # -- lifecycle -------------------------------------------------------------

    def commit(self) -> None:
        for instance in self._created.values():
            self.registry.instances[instance.id] = instance
        for instance_id, writes in self._writes.items():
            if instance_id in self._deleted:
                continue
            target = self.registry.instances.get(instance_id)
            if target is None:
                target = self._created.get(instance_id)
            if target is not None:
                target.state.update(writes)
        for instance_id in self._deleted:
            self.registry.instances.pop(instance_id, None)


class ReadOnlyView:
    """A transaction-shaped, zero-overlay view over a registry.

    The compiled fast path uses one (shared, stateless) instance per
    emulator to dispatch statically effect-free transitions — mostly
    describes — without paying for a :class:`Transaction` that could
    never accumulate writes.  It implements exactly the read subset of
    the transaction interface that such transitions can reach.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: "Registry"):
        self.registry = registry

    def instance(self, instance_id: str) -> MachineInstance | None:
        return self.registry.instances.get(instance_id)

    def get_state(self, instance_id: str, name: str) -> object:
        instance = self.registry.instances.get(instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        return instance.state.get(name)

    def state_of(self, instance_id: str) -> dict[str, object]:
        instance = self.registry.instances.get(instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        return instance.state

    def is_created_here(self, instance_id: str) -> bool:
        return False


class Handle:
    """A transaction-scoped reference to a machine instance.

    This is what ``self`` and SM-typed values evaluate to inside a
    transition body; attribute access reads through the transaction
    overlay so cross-SM calls observe each other's pending writes.
    """

    __slots__ = ("txn", "instance_id")

    def __init__(self, txn: Transaction, instance_id: str):
        self.txn = txn
        self.instance_id = instance_id

    @property
    def id(self) -> str:
        return self.instance_id

    @property
    def spec(self) -> ast.SMSpec:
        instance = self.txn.instance(self.instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling handle {self.instance_id}")
        return instance.spec

    def get(self, name: str) -> object:
        if name == "id":
            return self.instance_id
        return self.txn.get_state(self.instance_id, name)

    def set(self, name: str, value: object) -> None:
        self.txn.set_state(self.instance_id, name, value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Handle):
            return self.instance_id == other.instance_id
        if isinstance(other, str):
            return self.instance_id == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.instance_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Handle({self.instance_id})"


class Registry:
    """All live resources of one emulated cloud, plus ID generation.

    IDs are deterministic per resource type (``vpc-00000001``), so two
    runs of the same DevOps program produce identical traces — a
    property both the tests and the alignment differ rely on.
    """

    def __init__(self):
        self.instances: dict[str, MachineInstance] = {}
        self._counters: dict[str, int] = {}
        #: resource id -> home region, for network-realistic serving
        #: (:mod:`repro.netem`).  Empty unless a regional front door is
        #: placing resources; snapshots carry it only when non-empty,
        #: so non-regional runs stay byte-identical to before.
        self.placements: dict[str, str] = {}

    def new_id(self, sm_name: str) -> str:
        count = self._counters.get(sm_name, 0) + 1
        self._counters[sm_name] = count
        prefix = "".join(part[0] for part in sm_name.split("_")) if len(
            sm_name
        ) > 12 else sm_name
        return f"{prefix}-{count:08d}"

    def create(
        self, spec: ast.SMSpec, defaults: dict[str, object], parent_id: str = ""
    ) -> MachineInstance:
        instance = MachineInstance(
            id=self.new_id(spec.name),
            spec=spec,
            state=dict(defaults),
            parent_id=parent_id,
        )
        return instance

    def place(self, instance_id: str, region: str) -> None:
        """Record (or move) a resource's home region."""
        if region:
            self.placements[instance_id] = region
        else:
            self.placements.pop(instance_id, None)

    def region_of(self, instance_id: str, default: str = "") -> str:
        return self.placements.get(instance_id, default)

    def get(self, instance_id: str) -> MachineInstance | None:
        return self.instances.get(instance_id)

    def of_type(self, sm_name: str) -> list[MachineInstance]:
        return [
            instance
            for instance in self.instances.values()
            if instance.type_name == sm_name
        ]

    def children_of(self, instance_id: str) -> list[MachineInstance]:
        return [
            instance
            for instance in self.instances.values()
            if instance.parent_id == instance_id
        ]

    def __len__(self) -> int:
        return len(self.instances)
