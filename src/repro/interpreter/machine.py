"""Runtime state machines, transactions and handles.

Every cloud resource is one :class:`MachineInstance` — an SM spec plus
its current state variables (§3).  Transitions execute inside a
:class:`Transaction` so that a failed ``assert`` rolls back *all* state
effects, including those made through cross-SM ``call``s: cloud APIs
are atomic, and the paper's alignment methodology assumes failed calls
leave no trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..spec import ast
from .errors import CloudError, INTERNAL_FAILURE


@dataclass
class MachineInstance:
    """One live resource: identity, spec, and committed state."""

    id: str
    spec: ast.SMSpec
    state: dict[str, object] = field(default_factory=dict)
    parent_id: str = ""

    @property
    def type_name(self) -> str:
        return self.spec.name


class Transaction:
    """Copy-on-write overlay over a registry for one API invocation.

    Reads see pending writes; :meth:`commit` publishes writes, creations
    and deletions atomically.  Abandoning the transaction (on a
    :class:`CloudError`) leaves the registry untouched.

    ``registry`` may also be a pinned :class:`RegistryVersion` for
    overlay *reads* that are never committed (the reference evaluation
    the drift monitor runs against a version); such transactions must
    never reach :meth:`commit`.
    """

    def __init__(self, registry: "Registry | RegistryVersion"):
        self.registry = registry
        self._writes: dict[str, dict[str, object]] = {}
        self._created: dict[str, MachineInstance] = {}
        self._deleted: set[str] = set()

    # -- instance access -----------------------------------------------------

    def instance(self, instance_id: str) -> MachineInstance | None:
        if instance_id in self._deleted:
            return None
        if instance_id in self._created:
            return self._created[instance_id]
        return self.registry.instances.get(instance_id)

    def get_state(self, instance_id: str, name: str) -> object:
        pending = self._writes.get(instance_id)
        if pending is not None and name in pending:
            return pending[name]
        instance = self.instance(instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        return instance.state.get(name)

    def state_of(self, instance_id: str) -> dict[str, object]:
        """The instance's state as one mapping (overlay merged in).

        Compiled fused reads fetch this once per run of consecutive
        reads instead of paying the per-name overlay lookup.  The
        merge only copies when the transaction has pending writes for
        the instance; the result must be treated as read-only.
        """
        instance = self.instance(instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        pending = self._writes.get(instance_id)
        if pending:
            return {**instance.state, **pending}
        return instance.state

    def set_state(self, instance_id: str, name: str, value: object) -> None:
        if self.instance(instance_id) is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        self._writes.setdefault(instance_id, {})[name] = value

    def create(self, instance: MachineInstance) -> None:
        self._created[instance.id] = instance

    def mark_deleted(self, instance_id: str) -> None:
        self._deleted.add(instance_id)

    def is_created_here(self, instance_id: str) -> bool:
        return instance_id in self._created

    # -- lifecycle -------------------------------------------------------------

    def commit(self) -> None:
        """Publish writes, creations and deletions atomically.

        Commit is copy-on-write: an instance that existed before this
        transaction is *replaced* by a fresh :class:`MachineInstance`
        carrying the merged state, never mutated in place.  A
        published :class:`RegistryVersion` therefore shares untouched
        instances with the live registry structurally, and a pinned
        reader can never observe a half-applied commit — the MVCC
        serve path depends on it.  (State *values* are already safe to
        share: the spec language treats lists and maps as values, so
        builtins return fresh objects instead of mutating.)
        """
        registry = self.registry
        instances = registry.instances
        for instance in self._created.values():
            instances[instance.id] = instance
        for instance_id, writes in self._writes.items():
            if instance_id in self._deleted:
                continue
            if instance_id in self._created:
                # Created in this same transaction: the object is
                # fresh, no published version can reference it yet.
                self._created[instance_id].state.update(writes)
                continue
            target = instances.get(instance_id)
            if target is not None:
                # Replacing at an existing key keeps dict (creation)
                # order, which snapshots and dependency scans rely on.
                instances[instance_id] = MachineInstance(
                    id=target.id,
                    spec=target.spec,
                    state={**target.state, **writes},
                    parent_id=target.parent_id,
                )
        for instance_id in self._deleted:
            instances.pop(instance_id, None)
        if self._created or self._writes or self._deleted:
            registry.mutations += 1


class ReadOnlyView:
    """A transaction-shaped, zero-overlay view over a registry.

    The compiled fast path uses one (shared, stateless) instance per
    emulator to dispatch statically effect-free transitions — mostly
    describes — without paying for a :class:`Transaction` that could
    never accumulate writes.  It implements exactly the read subset of
    the transaction interface that such transitions can reach.

    ``registry`` may be the live :class:`Registry` or a pinned
    :class:`RegistryVersion` — only the ``instances`` map is read, so
    the MVCC serve path reuses this view unchanged over immutable
    versions.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: "Registry | RegistryVersion"):
        self.registry = registry

    def instance(self, instance_id: str) -> MachineInstance | None:
        return self.registry.instances.get(instance_id)

    def get_state(self, instance_id: str, name: str) -> object:
        instance = self.registry.instances.get(instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        return instance.state.get(name)

    def state_of(self, instance_id: str) -> dict[str, object]:
        instance = self.registry.instances.get(instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling reference {instance_id}")
        return instance.state

    def is_created_here(self, instance_id: str) -> bool:
        return False


class Handle:
    """A transaction-scoped reference to a machine instance.

    This is what ``self`` and SM-typed values evaluate to inside a
    transition body; attribute access reads through the transaction
    overlay so cross-SM calls observe each other's pending writes.
    """

    __slots__ = ("txn", "instance_id")

    def __init__(self, txn: Transaction, instance_id: str):
        self.txn = txn
        self.instance_id = instance_id

    @property
    def id(self) -> str:
        return self.instance_id

    @property
    def spec(self) -> ast.SMSpec:
        instance = self.txn.instance(self.instance_id)
        if instance is None:
            raise CloudError(INTERNAL_FAILURE, f"dangling handle {self.instance_id}")
        return instance.spec

    def get(self, name: str) -> object:
        if name == "id":
            return self.instance_id
        return self.txn.get_state(self.instance_id, name)

    def set(self, name: str, value: object) -> None:
        self.txn.set_state(self.instance_id, name, value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Handle):
            return self.instance_id == other.instance_id
        if isinstance(other, str):
            return self.instance_id == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.instance_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Handle({self.instance_id})"


class RegistryVersion:
    """One immutable published registry state (MVCC read snapshot).

    Built by :meth:`Registry.publish` under the serve layer's writer
    mutex and handed to readers, which dispatch against it with zero
    locking.  The ``instances`` map is a shallow copy of the live
    registry's — safe because :meth:`Transaction.commit` replaces
    rather than mutates committed instances — so publishing is O(live
    instances) pointer copies, and consecutive versions share every
    untouched instance structurally.

    ``wal_seq`` is stamped by the owning emulator at publish time so a
    snapshot dumped from a pinned version carries the correct recovery
    cursor.  ``_view``/``_rt`` cache the read-only dispatch plumbing
    for the compiled pure route (built lazily by the first reader; the
    benign publish race just builds it twice).
    """

    __slots__ = (
        "version", "instances", "counters", "placements", "wal_seq",
        "_view", "_rt",
    )

    def __init__(self, version: int, instances: dict[str, MachineInstance],
                 counters: dict[str, int], placements: dict[str, str]):
        self.version = version
        self.instances = instances
        self.counters = counters
        self.placements = placements
        self.wal_seq = 0
        self._view = None
        self._rt = None

    # -- the Registry read surface (duck-typed) ------------------------------

    def get(self, instance_id: str) -> MachineInstance | None:
        return self.instances.get(instance_id)

    def of_type(self, sm_name: str) -> list[MachineInstance]:
        return [
            instance
            for instance in self.instances.values()
            if instance.type_name == sm_name
        ]

    def children_of(self, instance_id: str) -> list[MachineInstance]:
        return [
            instance
            for instance in self.instances.values()
            if instance.parent_id == instance_id
        ]

    def region_of(self, instance_id: str, default: str = "") -> str:
        return self.placements.get(instance_id, default)

    def __len__(self) -> int:
        return len(self.instances)

    # -- mutation surface: refused loudly ------------------------------------

    def _immutable(self, op: str):
        raise RuntimeError(
            f"registry version {self.version} is immutable: {op} must "
            "run against the live registry under the writer mutex"
        )

    def new_id(self, sm_name: str) -> str:
        self._immutable("new_id")

    def create(self, spec, defaults, parent_id: str = ""):
        self._immutable("create")

    def place(self, instance_id: str, region: str) -> None:
        self._immutable("place")


class Registry:
    """All live resources of one emulated cloud, plus ID generation.

    IDs are deterministic per resource type (``vpc-00000001``), so two
    runs of the same DevOps program produce identical traces — a
    property both the tests and the alignment differ rely on.

    The registry is also the MVCC publication point: every observable
    mutation bumps ``mutations``, and :meth:`publish` turns the
    current state into an immutable :class:`RegistryVersion` (cached
    while nothing changed).  Publishing is only ever done by the serve
    layer's single writer; plain single-threaded use never pays for
    it.
    """

    def __init__(self):
        self.instances: dict[str, MachineInstance] = {}
        self._counters: dict[str, int] = {}
        #: resource id -> home region, for network-realistic serving
        #: (:mod:`repro.netem`).  Empty unless a regional front door is
        #: placing resources; snapshots carry it only when non-empty,
        #: so non-regional runs stay byte-identical to before.
        self.placements: dict[str, str] = {}
        #: Monotonic mutation tick: bumped by ID allocation, commit
        #: and placement, so :meth:`publish` knows when the cached
        #: version is still current.
        self.mutations = 0
        #: The number of the most recently published version.  The
        #: emulator carries it across :meth:`reset`/``restore`` so the
        #: serve layer's version chain stays monotonic.
        self.version = 0
        self._published: RegistryVersion | None = None
        self._published_tick = -1

    def publish(self) -> RegistryVersion:
        """The current state as an immutable version (cached).

        Must be called with writes excluded (the serve layer's writer
        mutex); readers then pin the returned object and never touch
        the live registry again.
        """
        published = self._published
        if published is not None and self._published_tick == self.mutations:
            return published
        self.version += 1
        published = RegistryVersion(
            self.version, dict(self.instances), dict(self._counters),
            dict(self.placements),
        )
        self._published = published
        self._published_tick = self.mutations
        return published

    def new_id(self, sm_name: str) -> str:
        count = self._counters.get(sm_name, 0) + 1
        self._counters[sm_name] = count
        self.mutations += 1
        prefix = "".join(part[0] for part in sm_name.split("_")) if len(
            sm_name
        ) > 12 else sm_name
        return f"{prefix}-{count:08d}"

    def create(
        self, spec: ast.SMSpec, defaults: dict[str, object], parent_id: str = ""
    ) -> MachineInstance:
        instance = MachineInstance(
            id=self.new_id(spec.name),
            spec=spec,
            state=dict(defaults),
            parent_id=parent_id,
        )
        return instance

    def place(self, instance_id: str, region: str) -> None:
        """Record (or move) a resource's home region."""
        if region:
            self.placements[instance_id] = region
        else:
            self.placements.pop(instance_id, None)
        self.mutations += 1

    def region_of(self, instance_id: str, default: str = "") -> str:
        return self.placements.get(instance_id, default)

    def get(self, instance_id: str) -> MachineInstance | None:
        return self.instances.get(instance_id)

    def of_type(self, sm_name: str) -> list[MachineInstance]:
        return [
            instance
            for instance in self.instances.values()
            if instance.type_name == sm_name
        ]

    def children_of(self, instance_id: str) -> list[MachineInstance]:
        return [
            instance
            for instance in self.instances.values()
            if instance.parent_id == instance_id
        ]

    def __len__(self) -> int:
        return len(self.instances)
