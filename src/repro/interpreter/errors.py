"""Cloud-style errors and API responses.

Both the learned emulator and the reference cloud speak this response
type, which is what makes differential alignment (§4.3) a pure data
comparison.  Error *codes* are part of the contract (client tooling
switches on them); error *messages* are for humans and may differ
(§4.3's hypothesis), so alignment compares codes only.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ApiResponse:
    """The uniform result of one cloud API invocation."""

    success: bool
    data: dict = field(default_factory=dict)
    error_code: str = ""
    error_message: str = ""

    @classmethod
    def ok(cls, data: dict | None = None) -> "ApiResponse":
        return cls(success=True, data=dict(data or {}))

    @classmethod
    def fail(cls, code: str, message: str = "") -> "ApiResponse":
        return cls(success=False, error_code=code, error_message=message)

    def outcome(self) -> tuple[bool, str]:
        """The part of a response that alignment compares."""
        return (self.success, self.error_code if not self.success else "")


class CloudError(Exception):
    """An API failure carrying a cloud error code.

    Raised inside transition evaluation (failed ``assert``) and by the
    framework itself (unknown API, resource not found, bad parameters).
    The emulator converts it to a failed :class:`ApiResponse`; state
    changes of the failing transition are rolled back atomically.
    """

    def __init__(self, code: str, message: str = ""):
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}" if message else code)

    def to_response(self) -> ApiResponse:
        return ApiResponse.fail(self.code, self.message)


# Framework-level error codes (AWS-flavoured defaults).
UNKNOWN_API = "InvalidAction"
MISSING_PARAMETER = "MissingParameter"
INVALID_PARAMETER = "InvalidParameterValue"
DEPENDENCY_VIOLATION = "DependencyViolation"
INTERNAL_FAILURE = "InternalFailure"


def default_notfound_code(sm_name: str) -> str:
    """AWS-style not-found code for a resource type.

    ``vpc`` → ``InvalidVpcID.NotFound``; multi-word resource names are
    camel-cased (``internet_gateway`` → ``InvalidInternetGatewayID.NotFound``).
    Services that use a different convention (DynamoDB's
    ``ResourceNotFoundException``) override this per-module via the
    extraction pipeline, which reads the code from the documentation.
    """
    camel = "".join(part.capitalize() for part in sm_name.split("_"))
    return f"Invalid{camel}ID.NotFound"
