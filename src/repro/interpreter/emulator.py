"""The emulator front-end: cloud API in, API response out.

This is the component a DevOps program talks to instead of the real
cloud.  It dispatches each API call to the owning SM's transition
(via the module's transition index), manages instance lifecycle
(create/destroy categories), binds request parameters, and wraps
evaluation in a transaction so failures roll back atomically.
"""

from __future__ import annotations

from ..resilience.errors import TransientServiceError
from ..resilience.policy import Deadline
from ..spec import ast
from .errors import (
    ApiResponse,
    CloudError,
    default_notfound_code,
    INVALID_PARAMETER,
    MISSING_PARAMETER,
    UNKNOWN_API,
)
from .evaluator import Evaluator, evaluate_defaults
from .machine import Handle, Registry, Transaction


def normalize_key(key: str) -> str:
    """Normalize a parameter key: ``VpcId`` == ``vpc_id`` == ``vpcid``."""
    return key.replace("_", "").replace("-", "").lower()


class Emulator:
    """Executes a spec module as a mock cloud.

    Parameters
    ----------
    module:
        The executable specification (one service's SMs).
    notfound_codes:
        Per-resource-type overrides for the not-found error code, as
        extracted from documentation (e.g. DynamoDB uses
        ``ResourceNotFoundException`` instead of the EC2-style
        ``InvalidVpcID.NotFound``).
    """

    def __init__(
        self,
        module: ast.SpecModule,
        notfound_codes: dict[str, str] | None = None,
        telemetry=None,
    ):
        self.module = module
        self.notfound_codes = dict(notfound_codes or {})
        self.registry = Registry()
        self._index = module.transition_index()
        #: Optional run sink; ``None`` keeps the dispatch hot path
        #: exactly as fast as an un-instrumented emulator.
        self._telemetry = telemetry

    # -- public API ------------------------------------------------------------

    def api_names(self) -> list[str]:
        """Every public cloud API this emulator responds to."""
        return sorted(
            name for name in self._index if not name.startswith("_")
        )

    def supports(self, api: str) -> bool:
        return api in self._index and not api.startswith("_")

    def reset(self) -> None:
        """Drop all emulated resources (fresh mock cloud)."""
        self.registry = Registry()

    def invoke(
        self,
        api: str,
        params: dict | None = None,
        deadline: Deadline | None = None,
    ) -> ApiResponse:
        """Invoke a cloud API against the mock backend.

        ``deadline`` bounds the call the way a client-side timeout
        does: an already-expired deadline fails with ``RequestTimeout``
        before dispatch (and before any state changes), matching the
        fail-fast semantics the resilience layer's injected timeouts
        have.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._invoke(api, params, deadline)
        with telemetry.span(
            "emulator.invoke", kind="api_call", api=api
        ) as span:
            response = self._invoke(api, params, deadline)
            telemetry.metrics.counter("emulator.calls").inc()
            if not response.success:
                span.set("error_code", response.error_code)
                telemetry.metrics.counter(
                    "emulator.errors", code=response.error_code
                ).inc()
        return response

    def _invoke(
        self,
        api: str,
        params: dict | None,
        deadline: Deadline | None,
    ) -> ApiResponse:
        params = params or {}
        if deadline is not None and deadline.expired():
            return ApiResponse.fail(
                "RequestTimeout",
                f"The call to {api} exceeded its deadline.",
            )
        entry = self._index.get(api)
        if api.startswith("_"):
            entry = None  # helper transitions are not externally callable
        if entry is None:
            return ApiResponse.fail(
                UNKNOWN_API, f"The action {api} is not valid for this endpoint."
            )
        sm_name, transition = entry
        spec = self.module.machines[sm_name]
        # List-class APIs: describe transitions with no parameters
        # enumerate all instances of the resource type.
        if transition.category == "describe" and not transition.params:
            ids = sorted(
                instance.id for instance in self.registry.of_type(sm_name)
            )
            return ApiResponse.ok({"ids": ids, "count": len(ids)})
        txn = Transaction(self.registry)
        evaluator = Evaluator(txn, self.module.machines, self.registry)
        try:
            subject, args = self._bind(spec, transition, params, txn)
            payload = evaluator.run_transition(subject, transition, args)
            if transition.category == "destroy":
                txn.mark_deleted(subject.id)
            if transition.category == "create" or txn.is_created_here(subject.id):
                payload.setdefault("id", subject.id)
                payload.setdefault(f"{sm_name}_id", subject.id)
        except CloudError as error:
            return error.to_response()
        except TransientServiceError as error:
            # An injected (or transport-level) fault inside dispatch:
            # pass its cloud error code through unchanged so resilient
            # clients classify it correctly; the transaction is simply
            # not committed, so state rolls back atomically.
            return ApiResponse.fail(error.code, error.message)
        txn.commit()
        return ApiResponse.ok(payload)

    # -- binding ---------------------------------------------------------------

    def _notfound(self, sm_name: str) -> str:
        return self.notfound_codes.get(sm_name, default_notfound_code(sm_name))

    def _bind(
        self,
        spec: ast.SMSpec,
        transition: ast.Transition,
        params: dict,
        txn: Transaction,
    ) -> tuple[Handle, dict[str, object]]:
        """Resolve the subject instance and bind request parameters."""
        request = {normalize_key(key): value for key, value in params.items()}
        args: dict[str, object] = {}
        for param in transition.params:
            value = request.get(normalize_key(param.name))
            if value is not None and param.type.kind == "sm":
                value = self._resolve_reference(param.type.sm_name, value, txn)
            # Scalar parameters are deliberately not type-checked here:
            # cloud APIs validate *semantics* (via the documented
            # checks), and a framework-level type error would diverge
            # from cloud behaviour the documentation never promises.
            args[param.name] = value

        if transition.category == "create":
            parent_id = self._find_parent(spec, args)
            instance = self.registry.create(
                spec, evaluate_defaults(spec), parent_id=parent_id
            )
            txn.create(instance)
            return Handle(txn, instance.id), args

        subject_id = self._subject_id(spec, transition, request, args)
        if subject_id is None:
            raise CloudError(
                MISSING_PARAMETER,
                f"The request must contain the parameter {spec.name}_id",
            )
        if isinstance(subject_id, Handle):
            return subject_id, args
        instance = txn.instance(str(subject_id))
        if instance is None or instance.type_name != spec.name:
            raise CloudError(
                self._notfound(spec.name),
                f"The {spec.name} ID '{subject_id}' does not exist",
            )
        return Handle(txn, instance.id), args

    def _resolve_reference(self, sm_name: str, value: object, txn: Transaction):
        if isinstance(value, Handle):
            return value
        if not isinstance(value, str):
            raise CloudError(
                INVALID_PARAMETER, f"Expected a resource identifier, got {value!r}"
            )
        instance = txn.instance(value)
        if instance is None or (sm_name and instance.type_name != sm_name):
            raise CloudError(
                self._notfound(sm_name or "resource"),
                f"The ID '{value}' does not exist",
            )
        return Handle(txn, instance.id)

    def _find_parent(self, spec: ast.SMSpec, args: dict[str, object]) -> str:
        if not spec.parent:
            return ""
        for value in args.values():
            if isinstance(value, Handle) and value.spec.name == spec.parent:
                return value.id
        return ""

    def _subject_id(
        self,
        spec: ast.SMSpec,
        transition: ast.Transition,
        request: dict,
        args: dict[str, object],
    ):
        id_key = normalize_key(f"{spec.name}_id")
        # Preferred: a declared parameter named <sm>_id.
        for param in transition.params:
            if normalize_key(param.name) == id_key and args.get(param.name):
                return args[param.name]
        # Next: a declared parameter typed SM<own-type>.
        for param in transition.params:
            if (
                param.type.kind == "sm"
                and param.type.sm_name == spec.name
                and isinstance(args.get(param.name), Handle)
            ):
                return args[param.name]
        # Last resort: the raw request carries the id even though the
        # generated signature omitted it (a fault alignment can detect).
        return request.get(id_key)
