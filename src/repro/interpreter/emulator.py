"""The emulator front-end: cloud API in, API response out.

This is the component a DevOps program talks to instead of the real
cloud.  It dispatches each API call to the owning SM's transition
(via a dispatch table precomputed at construction), manages instance
lifecycle (create/destroy categories), binds request parameters, and
wraps evaluation in a transaction so failures roll back atomically.

Two execution paths share the same dispatch and binding code:

- the default ``compile=True`` path runs transition bodies lowered to
  Python closures (:mod:`repro.interpreter.compiler`);
- ``compile=False`` keeps everything on the tree-walking
  :class:`~repro.interpreter.evaluator.Evaluator`, the reference
  implementation the compiler must match observably.
"""

from __future__ import annotations

from functools import lru_cache

from ..durability.journal import DurabilityStats
from ..durability.snapshot import restore_registry, snapshot_registry
from ..durability.wal import MutationLog, replay_mutations
from ..resilience.chaos import kill_point
from ..resilience.errors import TransientServiceError
from ..resilience.policy import Deadline
from ..spec import ast
from .compiler import compile_module, CompiledModule, Runtime
from .errors import (
    ApiResponse,
    CloudError,
    default_notfound_code,
    INVALID_PARAMETER,
    MISSING_PARAMETER,
    UNKNOWN_API,
)
from .evaluator import Evaluator, evaluate_defaults
from .machine import Handle, ReadOnlyView, Registry, Transaction


@lru_cache(maxsize=4096)
def normalize_key(key: str) -> str:
    """Normalize a parameter key: ``VpcId`` == ``vpc_id`` == ``vpcid``.

    Memoized: the same few dozen parameter names arrive on every call,
    and request keys come from a similarly small client vocabulary
    (the cache is bounded in case they do not).
    """
    return key.replace("_", "").replace("-", "").lower()


class _DispatchEntry:
    """Everything ``invoke`` needs about one API, resolved once.

    Hoists the per-call work the old dispatch loop repeated on every
    invocation: spec lookup, category tests, parameter-name
    normalization, subject-resolution strategy, and the not-found
    error code.
    """

    __slots__ = (
        "api", "sm_name", "spec", "transition", "bare_describe",
        "is_create", "is_destroy", "param_plan", "id_key", "id_params",
        "self_params", "notfound", "compiled", "pure_compiled",
    )

    def __init__(self, api: str, sm_name: str, spec: ast.SMSpec,
                 transition: ast.Transition, notfound: str, compiled):
        self.api = api
        self.sm_name = sm_name
        self.spec = spec
        self.transition = transition
        self.notfound = notfound
        self.compiled = compiled
        self.bare_describe = (
            transition.category == "describe" and not transition.params
        )
        self.is_create = transition.category == "create"
        self.is_destroy = transition.category == "destroy"
        # Effect-free non-lifecycle transitions may dispatch without a
        # transaction (creates allocate, destroys mark-delete — both
        # need one regardless of the body).
        self.pure_compiled = (
            compiled
            if (
                compiled is not None
                and compiled.pure
                and not self.is_create
                and not self.is_destroy
            )
            else None
        )
        self.param_plan = tuple(
            (
                param.name,
                normalize_key(param.name),
                param.type.kind == "sm",
                param.type.sm_name,
            )
            for param in transition.params
        )
        self.id_key = normalize_key(f"{spec.name}_id")
        self.id_params = tuple(
            param.name for param in transition.params
            if normalize_key(param.name) == self.id_key
        )
        self.self_params = tuple(
            param.name for param in transition.params
            if param.type.kind == "sm" and param.type.sm_name == spec.name
        )


class Emulator:
    """Executes a spec module as a mock cloud.

    Parameters
    ----------
    module:
        The executable specification (one service's SMs).
    notfound_codes:
        Per-resource-type overrides for the not-found error code, as
        extracted from documentation (e.g. DynamoDB uses
        ``ResourceNotFoundException`` instead of the EC2-style
        ``InvalidVpcID.NotFound``).
    compile:
        Lower transition bodies to closures at construction (default).
        Transitions the compiler cannot lower — or whose bodies are
        mutated after construction — transparently run on the
        evaluator instead.
    compiled:
        A :func:`compile_module` result for this same ``module``, to
        share between emulator instances (closures are stateless, so
        e.g. sharded differential passes compile once per round, not
        once per shard).  Overrides ``compile``.
    wal:
        Optional write-ahead mutation log (a
        :class:`~repro.durability.wal.MutationLog` or a path to one).
        Every mutating call is logged before its transaction commits,
        so :meth:`recover` from the latest :meth:`snapshot` replays the
        emulator to its exact pre-crash state.
    """

    def __init__(
        self,
        module: ast.SpecModule,
        notfound_codes: dict[str, str] | None = None,
        telemetry=None,
        compile: bool = True,
        compiled: CompiledModule | None = None,
        wal: "MutationLog | str | None" = None,
        mvcc: bool = True,
    ):
        self.module = module
        #: Whether the serving layer may read this emulator through
        #: pinned registry versions with zero locking.  ``mvcc=False``
        #: keeps the RW-lock fallback in
        #: :class:`~repro.serve.concurrency.ConcurrentEmulator`.
        #: Single-threaded use ignores the flag entirely — nothing is
        #: published until a concurrency wrapper asks for a version.
        self.mvcc = bool(mvcc)
        self.notfound_codes = dict(notfound_codes or {})
        self.registry = Registry()
        self._index = module.transition_index()
        self._compiled: CompiledModule | None = (
            compiled if compiled is not None
            else compile_module(module) if compile
            else None
        )
        self._dispatch: dict[str, _DispatchEntry] = {}
        for api, (sm_name, transition) in self._index.items():
            if api.startswith("_"):
                continue  # helper transitions are not externally callable
            self._dispatch[api] = _DispatchEntry(
                api, sm_name, module.machines[sm_name], transition,
                self._notfound(sm_name),
                self._compiled.lookup(sm_name, api)
                if self._compiled is not None else None,
            )
        self._roview = ReadOnlyView(self.registry)
        self._ro_rt = (
            Runtime(
                self._roview, self.registry, module.machines, self._compiled
            )
            if self._compiled is not None
            else None
        )
        #: Optional run sink; ``None`` keeps the dispatch hot path
        #: exactly as fast as an un-instrumented emulator.
        self._telemetry = telemetry
        #: Durability accounting (WAL appends, replayed mutations).
        self.durability = DurabilityStats()
        if wal is None:
            self._wal: MutationLog | None = None
        elif isinstance(wal, MutationLog):
            self._wal = wal
            self.durability = wal.stats
        else:
            self._wal = MutationLog(wal, stats=self.durability)
        self._wal_seq = self._wal.seq if self._wal is not None else 0

    # -- public API ------------------------------------------------------------

    @property
    def compiled(self) -> bool:
        """Whether this emulator runs the compiled fast path."""
        return self._compiled is not None

    def api_names(self) -> list[str]:
        """Every public cloud API this emulator responds to."""
        return sorted(self._dispatch)

    def supports(self, api: str) -> bool:
        return api in self._dispatch

    def read_only(self, api: str) -> bool:
        """Whether ``api`` can never mutate the registry.

        True for bare describes (list-class APIs), for transitions the
        compiler proved effect-free (the pure route), and for unknown
        APIs (which fail before touching state).  The serving layer
        uses this to route read traffic through a shared lock while
        writes serialize — the classification must therefore be
        *conservative*: a transition whose compiled body has gone
        stale (mutated after construction) re-classifies as a write.
        """
        entry = self._dispatch.get(api)
        if entry is None:
            return True
        if entry.bare_describe:
            return True
        pure = entry.pure_compiled
        return pure is not None and pure.fresh(entry.transition)

    def reset(self) -> None:
        """Drop all emulated resources (fresh mock cloud)."""
        prior = self.registry.version
        self.registry = Registry()
        # Carry the published-version counter across the swap so the
        # serve layer's version chain stays monotonic over resets.
        self.registry.version = prior
        self._rebind_registry()
        if self._wal is not None:
            self._wal_seq = self._wal.log_reset()

    def _rebind_registry(self) -> None:
        self._roview = ReadOnlyView(self.registry)
        if self._compiled is not None:
            self._ro_rt = Runtime(
                self._roview, self.registry, self.module.machines,
                self._compiled,
            )

    # -- durability ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A versioned, restorable dump of all live resource state.

        Carries the WAL sequence it covers, so :meth:`recover` knows
        which logged mutations the snapshot already includes.
        """
        return snapshot_registry(self.registry, wal_seq=self._wal_seq)

    def restore(self, snapshot: dict) -> None:
        """Replace all live state with a snapshot's (same module).

        Restoring never mutates a published version: the registry
        object is swapped wholesale, so readers pinned to an older
        version keep reading it untouched, and the next publish comes
        out as a *new* (still monotonically numbered) version.
        """
        prior = self.registry.version
        self.registry = restore_registry(snapshot, self.module.machines)
        self.registry.version = prior
        self._rebind_registry()
        self._wal_seq = snapshot.get("wal_seq", 0)

    def recover(self, snapshot: dict, records: list[dict] | None = None
                ) -> int:
        """Restore a snapshot, then replay the WAL tail beyond it.

        Returns the number of mutations replayed.  Replay runs with
        the WAL detached (replayed calls are already in the log); the
        attached log keeps appending new mutations afterwards.
        """
        if records is None:
            records = self._wal.records if self._wal is not None else []
        self.restore(snapshot)
        wal, self._wal = self._wal, None
        try:
            replayed = replay_mutations(
                self, records, after_seq=snapshot.get("wal_seq", 0),
                stats=self.durability,
            )
        finally:
            self._wal = wal
        if wal is not None:
            self._wal_seq = wal.seq
        if self._telemetry is not None and replayed:
            self._telemetry.metrics.counter(
                "durability.replayed_mutations"
            ).inc(replayed)
        return replayed

    # -- MVCC ------------------------------------------------------------------

    @property
    def wal_seq(self) -> int:
        """The sequence of the last WAL record this state includes."""
        return self._wal_seq

    def publish_version(self):
        """Publish (or reuse) the current registry state as an
        immutable :class:`~repro.interpreter.machine.RegistryVersion`.

        Must be called with writers excluded — the serve layer does so
        under its writer mutex after every mutating dispatch.  The
        returned version is stamped with the WAL cursor it covers, so
        a snapshot dumped from it recovers correctly.
        """
        version = self.registry.publish()
        version.wal_seq = self._wal_seq
        return version

    def _version_runtime(self, version):
        """The (view, runtime) pair for pure dispatch at a version.

        Cached on the version object itself: a version is immutable
        and belongs to exactly one registry, so the cache can never go
        stale.  Two readers racing to build it is benign — both
        results are equivalent and the attribute stores are atomic.
        """
        rt = version._rt
        if rt is None or rt.compiled is not self._compiled:
            view = ReadOnlyView(version)
            rt = Runtime(view, version, self.module.machines,
                         self._compiled)
            version._view = view
            version._rt = rt
        return version._view, version._rt

    def invoke_at(self, version, api: str,
                  params: dict | None = None) -> ApiResponse:
        """Invoke a *read-only* cloud API against a pinned version.

        The lock-free serve read path: bare describes enumerate the
        version's instances, the compiled pure route dispatches
        against a read-only view of it, and nothing here ever touches
        the live registry, a lock, or the ID allocator.  The caller
        classified ``api`` via :meth:`read_only` before pinning; a
        body whose compiled form went stale between classification and
        dispatch falls back to an *uncommitted* evaluator pass over
        the version — observably identical for an effect-free body.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._invoke_at(version, api, params)
        with telemetry.span(
            "emulator.invoke", kind="api_call", api=api
        ) as span:
            response = self._invoke_at(version, api, params)
            telemetry.metrics.counter("emulator.calls").inc()
            if not response.success:
                span.set("error_code", response.error_code)
                telemetry.metrics.counter(
                    "emulator.errors", code=response.error_code
                ).inc()
        return response

    def _invoke_at(self, version, api: str,
                   params: dict | None) -> ApiResponse:
        params = params or {}
        entry = self._dispatch.get(api)
        if entry is None:
            return ApiResponse.fail(
                UNKNOWN_API,
                f"The action {api} is not valid for this endpoint.",
            )
        if entry.bare_describe:
            ids = sorted(
                instance.id
                for instance in version.of_type(entry.sm_name)
            )
            return ApiResponse.ok({"ids": ids, "count": len(ids)})
        pure = entry.pure_compiled
        if (
            pure is not None
            and pure.fresh(entry.transition)
            and self._compiled is not None
        ):
            view, rt = self._version_runtime(version)
            try:
                subject, args = self._bind(entry, params, view)
                payload = pure.run(rt, subject, args)
            except CloudError as error:
                return error.to_response()
            except TransientServiceError as error:
                return ApiResponse.fail(error.code, error.message)
            return ApiResponse(True, payload)
        # Stale-compiled or uncompiled read: reference semantics over
        # an overlay that is never committed.
        txn = Transaction(version)
        try:
            subject, args = self._bind(entry, params, txn)
            evaluator = Evaluator(txn, self.module.machines, version)
            payload = evaluator.run_transition(
                subject, entry.transition, args
            )
        except CloudError as error:
            return error.to_response()
        except TransientServiceError as error:
            return ApiResponse.fail(error.code, error.message)
        return ApiResponse(True, payload)

    def invoke(
        self,
        api: str,
        params: dict | None = None,
        deadline: Deadline | None = None,
    ) -> ApiResponse:
        """Invoke a cloud API against the mock backend.

        ``deadline`` bounds the call the way a client-side timeout
        does: an already-expired deadline fails with ``RequestTimeout``
        before dispatch (and before any state changes), matching the
        fail-fast semantics the resilience layer's injected timeouts
        have.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._invoke(api, params, deadline)
        with telemetry.span(
            "emulator.invoke", kind="api_call", api=api
        ) as span:
            response = self._invoke(api, params, deadline)
            telemetry.metrics.counter("emulator.calls").inc()
            if not response.success:
                span.set("error_code", response.error_code)
                telemetry.metrics.counter(
                    "emulator.errors", code=response.error_code
                ).inc()
        return response

    def reference_invoke(self, api: str, params: dict | None = None,
                         at=None) -> ApiResponse:
        """Run one API through the tree-walking evaluator, read-only.

        The reference semantics for drift monitoring: the compiled
        routes (pure closures and compiled transitions) are bypassed
        entirely and the transition runs under the
        :class:`Evaluator` on an *uncommitted* transaction, so the
        call can never mutate the registry.  Intended for read-only
        APIs — the serve path's drift monitor compares this against
        the live compiled dispatch over one pinned version (``at``, a
        :class:`~repro.interpreter.machine.RegistryVersion`) so no
        concurrent writer can fake a divergence; without ``at`` it
        reads the live registry (see
        :meth:`ConcurrentEmulator.drift_check
        <repro.serve.concurrency.ConcurrentEmulator.drift_check>`).
        """
        params = params or {}
        source = self.registry if at is None else at
        entry = self._dispatch.get(api)
        if entry is None:
            return ApiResponse.fail(
                UNKNOWN_API,
                f"The action {api} is not valid for this endpoint.",
            )
        if entry.bare_describe:
            ids = sorted(
                instance.id
                for instance in source.of_type(entry.sm_name)
            )
            return ApiResponse.ok({"ids": ids, "count": len(ids)})
        txn = Transaction(source)
        try:
            subject, args = self._bind(entry, params, txn)
            evaluator = Evaluator(txn, self.module.machines, source)
            payload = evaluator.run_transition(
                subject, entry.transition, args
            )
        except CloudError as error:
            return error.to_response()
        except TransientServiceError as error:
            return ApiResponse.fail(error.code, error.message)
        # Deliberately no commit: reference evaluation observes, never
        # mutates.
        return ApiResponse(True, payload)

    def _invoke(
        self,
        api: str,
        params: dict | None,
        deadline: Deadline | None,
    ) -> ApiResponse:
        params = params or {}
        if deadline is not None and deadline.expired():
            return ApiResponse.fail(
                "RequestTimeout",
                f"The call to {api} exceeded its deadline.",
            )
        entry = self._dispatch.get(api)
        if entry is None:
            return ApiResponse.fail(
                UNKNOWN_API, f"The action {api} is not valid for this endpoint."
            )
        # List-class APIs: describe transitions with no parameters
        # enumerate all instances of the resource type.
        if entry.bare_describe:
            ids = sorted(
                instance.id
                for instance in self.registry.of_type(entry.sm_name)
            )
            return ApiResponse.ok({"ids": ids, "count": len(ids)})
        pure = entry.pure_compiled
        if pure is not None and pure.fresh(entry.transition):
            # Effect-free body: dispatch against the shared read-only
            # view — no transaction to build, nothing to commit.
            try:
                subject, args = self._bind(entry, params, self._roview)
                payload = pure.run(self._ro_rt, subject, args)
            except CloudError as error:
                return error.to_response()
            except TransientServiceError as error:
                return ApiResponse.fail(error.code, error.message)
            # ``payload`` is freshly built per call; constructing the
            # response directly skips ``ok``'s defensive copy.
            return ApiResponse(True, payload)
        txn = Transaction(self.registry)
        try:
            subject, args = self._bind(entry, params, txn)
            compiled = entry.compiled
            if compiled is not None and compiled.fresh(entry.transition):
                rt = Runtime(
                    txn, self.registry, self.module.machines, self._compiled
                )
                payload = compiled.run(rt, subject, args)
            else:
                evaluator = Evaluator(
                    txn, self.module.machines, self.registry
                )
                payload = evaluator.run_transition(
                    subject, entry.transition, args
                )
            if entry.is_destroy:
                txn.mark_deleted(subject.id)
            if entry.is_create or txn.is_created_here(subject.id):
                payload.setdefault("id", subject.id)
                payload.setdefault(f"{entry.sm_name}_id", subject.id)
        except CloudError as error:
            return error.to_response()
        except TransientServiceError as error:
            # An injected (or transport-level) fault inside dispatch:
            # pass its cloud error code through unchanged so resilient
            # clients classify it correctly; the transaction is simply
            # not committed, so state rolls back atomically.
            return ApiResponse.fail(error.code, error.message)
        # Write-ahead: the mutation is durably logged before it becomes
        # visible.  A crash in the window between the two (the
        # ``mid-transition-commit`` kill site) recovers by replaying
        # the logged intent — never a committed-but-unlogged call.
        if self._wal is not None:
            self._wal_seq = self._wal.log(api, params)
        kill_point("mid-transition-commit")
        txn.commit()
        return ApiResponse(True, payload)

    # -- binding ---------------------------------------------------------------

    def _notfound(self, sm_name: str) -> str:
        return self.notfound_codes.get(sm_name, default_notfound_code(sm_name))

    def _defaults(self, entry: _DispatchEntry) -> dict[str, object]:
        if self._compiled is not None:
            compiled_spec = self._compiled.specs.get(entry.sm_name)
            if compiled_spec is not None and compiled_spec.spec is entry.spec:
                return compiled_spec.defaults()
        return evaluate_defaults(entry.spec)

    def _bind(
        self,
        entry: _DispatchEntry,
        params: dict,
        txn: Transaction | ReadOnlyView,
    ) -> tuple[Handle, dict[str, object]]:
        """Resolve the subject instance and bind request parameters."""
        request = {normalize_key(key): value for key, value in params.items()}
        args: dict[str, object] = {}
        for name, norm, is_sm, sm_ref in entry.param_plan:
            value = request.get(norm)
            if value is not None and is_sm:
                value = self._resolve_reference(sm_ref, value, txn)
            # Scalar parameters are deliberately not type-checked here:
            # cloud APIs validate *semantics* (via the documented
            # checks), and a framework-level type error would diverge
            # from cloud behaviour the documentation never promises.
            args[name] = value

        if entry.is_create:
            parent_id = self._find_parent(entry.spec, args)
            instance = self.registry.create(
                entry.spec, self._defaults(entry), parent_id=parent_id
            )
            txn.create(instance)
            return Handle(txn, instance.id), args

        subject_id = self._subject_id(entry, request, args)
        if subject_id is None:
            raise CloudError(
                MISSING_PARAMETER,
                f"The request must contain the parameter {entry.spec.name}_id",
            )
        if isinstance(subject_id, Handle):
            return subject_id, args
        instance = txn.instance(str(subject_id))
        if instance is None or instance.type_name != entry.spec.name:
            raise CloudError(
                entry.notfound,
                f"The {entry.spec.name} ID '{subject_id}' does not exist",
            )
        return Handle(txn, instance.id), args

    def _resolve_reference(self, sm_name: str, value: object,
                           txn: Transaction | ReadOnlyView):
        if isinstance(value, Handle):
            return value
        if not isinstance(value, str):
            raise CloudError(
                INVALID_PARAMETER, f"Expected a resource identifier, got {value!r}"
            )
        instance = txn.instance(value)
        if instance is None or (sm_name and instance.type_name != sm_name):
            raise CloudError(
                self._notfound(sm_name or "resource"),
                f"The ID '{value}' does not exist",
            )
        return Handle(txn, instance.id)

    def _find_parent(self, spec: ast.SMSpec, args: dict[str, object]) -> str:
        if not spec.parent:
            return ""
        for value in args.values():
            if isinstance(value, Handle) and value.spec.name == spec.parent:
                return value.id
        return ""

    def _subject_id(
        self,
        entry: _DispatchEntry,
        request: dict,
        args: dict[str, object],
    ):
        # Preferred: a declared parameter named <sm>_id.
        for name in entry.id_params:
            if args.get(name):
                return args[name]
        # Next: a declared parameter typed SM<own-type>.
        for name in entry.self_params:
            if isinstance(args.get(name), Handle):
                return args[name]
        # Last resort: the raw request carries the id even though the
        # generated signature omitted it (a fault alignment can detect).
        return request.get(entry.id_key)
