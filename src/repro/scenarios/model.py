"""Trace model: DevOps-program-like API call sequences.

A trace is the unit of the paper's accuracy evaluation (§5): a short
sequence of cloud API calls with data dependencies (later steps use
identifiers returned by earlier ones).  The same trace runs against
any backend — reference cloud, learned emulator, baselines — and the
alignment comparator decides whether the responses match.

Identifier flow is symbolic: a step may ``bind`` a name, and later
parameters reference it as ``$name``; each backend resolves the symbol
to its own concrete identifier, so backends with different id schemes
are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interpreter.errors import ApiResponse


@dataclass(frozen=True)
class TraceStep:
    """One API invocation in a trace."""

    api: str
    params: dict = field(default_factory=dict)
    #: Symbol to bind this step's returned resource id to.
    bind: str = ""
    #: The author's intent, for documentation and sanity checks; the
    #: comparator uses the reference cloud, not this flag.
    expect_success: bool | None = None


@dataclass(frozen=True)
class Trace:
    """A named API call sequence within one service."""

    name: str
    service: str
    scenario: str  # provisioning | state_updates | edge_cases
    steps: tuple[TraceStep, ...]
    description: str = ""


@dataclass
class StepResult:
    """The outcome of one step on one backend."""

    api: str
    response: ApiResponse
    resolved_params: dict = field(default_factory=dict)


@dataclass
class TraceRun:
    """A full trace execution on one backend."""

    trace: Trace
    results: list[StepResult] = field(default_factory=list)
    #: symbol -> concrete id, as assigned by this backend.
    env: dict[str, str] = field(default_factory=dict)


def _resolve(value: object, env: dict[str, str]) -> object:
    if isinstance(value, str) and value.startswith("$"):
        symbol = value[1:]
        if symbol not in env:
            raise KeyError(f"trace references unbound symbol ${symbol}")
        return env[symbol]
    if isinstance(value, list):
        return [_resolve(item, env) for item in value]
    return value


def run_trace(backend, trace: Trace, reset: bool = True) -> TraceRun:
    """Execute a trace against a backend, threading bound identifiers.

    A step that binds a symbol but fails (or returns no id) binds an
    obviously-dangling identifier so downstream steps still execute —
    both backends see the same dangling value, keeping runs comparable.
    """
    if reset:
        backend.reset()
    run = TraceRun(trace=trace)
    for step in trace.steps:
        params = {
            key: _resolve(value, run.env)
            for key, value in step.params.items()
        }
        response = backend.invoke(step.api, params)
        run.results.append(
            StepResult(api=step.api, response=response,
                       resolved_params=params)
        )
        if step.bind:
            bound = ""
            if response.success:
                bound = str(
                    response.data.get("id")
                    or response.data.get(f"{step.bind}_id")
                    or ""
                )
            run.env[step.bind] = bound or f"dangling-{step.bind}"
    return run
