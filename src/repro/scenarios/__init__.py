"""Evaluation scenarios: the traces behind Fig. 3 and §5, the
geo-distributed serving scenarios behind ``repro sweep``, and the
process-fault shard failover drill."""

from .catalog import (
    azure_traces,
    basic_functionality_trace,
    evaluation_traces,
    gcp_traces,
)
from .geo import (
    GEO_SCENARIOS,
    multi_region_failover,
    noisy_cross_region_replication,
    partition_heal_convergence,
    run_geo_scenarios,
)
from .model import run_trace, StepResult, Trace, TraceRun, TraceStep
from .shardfault import (
    SHARD_SCENARIOS,
    run_shard_scenarios,
    shard_worker_failover,
)

__all__ = [
    "azure_traces",
    "basic_functionality_trace",
    "evaluation_traces",
    "gcp_traces",
    "GEO_SCENARIOS",
    "multi_region_failover",
    "noisy_cross_region_replication",
    "partition_heal_convergence",
    "run_geo_scenarios",
    "run_shard_scenarios",
    "run_trace",
    "SHARD_SCENARIOS",
    "shard_worker_failover",
    "StepResult",
    "Trace",
    "TraceRun",
    "TraceStep",
]
