"""Evaluation scenarios: the traces behind Fig. 3 and §5."""

from .catalog import (
    azure_traces,
    basic_functionality_trace,
    evaluation_traces,
    gcp_traces,
)
from .model import run_trace, StepResult, Trace, TraceRun, TraceStep

__all__ = [
    "azure_traces",
    "basic_functionality_trace",
    "evaluation_traces",
    "gcp_traces",
    "run_trace",
    "StepResult",
    "Trace",
    "TraceRun",
    "TraceStep",
]
