"""Evaluation scenarios: the traces behind Fig. 3 and §5, the
geo-distributed serving scenarios behind ``repro sweep``, and the
process-fault shard failover drill."""

from .catalog import (
    azure_traces,
    basic_functionality_trace,
    evaluation_traces,
    gcp_traces,
)
from .fairness import (
    FAIRNESS_SCENARIOS,
    drive_fair_load,
    noisy_neighbor,
    shard_kill_inheritance,
)
from .geo import (
    GEO_SCENARIOS,
    multi_region_failover,
    noisy_cross_region_replication,
    partition_heal_convergence,
    run_geo_scenarios,
)
from .model import run_trace, StepResult, Trace, TraceRun, TraceStep
from .shardfault import (
    SHARD_SCENARIOS,
    run_shard_scenarios,
    shard_worker_failover,
)

__all__ = [
    "azure_traces",
    "basic_functionality_trace",
    "drive_fair_load",
    "evaluation_traces",
    "FAIRNESS_SCENARIOS",
    "gcp_traces",
    "GEO_SCENARIOS",
    "noisy_neighbor",
    "shard_kill_inheritance",
    "multi_region_failover",
    "noisy_cross_region_replication",
    "partition_heal_convergence",
    "run_geo_scenarios",
    "run_shard_scenarios",
    "run_trace",
    "SHARD_SCENARIOS",
    "shard_worker_failover",
    "StepResult",
    "Trace",
    "TraceRun",
    "TraceStep",
]
