"""Process-fault serving scenarios: a shard worker dies mid-workload.

The geo scenarios make the *network* misbehave; this one kills a
serving **process** and grades the failover end to end, returning the
same plain result-dict shape (an ``ok`` verdict plus the evidence):

- healthy phase: a create and a read land on the tenant's shard;
- failover phase: the owning worker is SIGKILLed mid-traffic — the
  very next write must shed ``ServiceUnavailable`` with a
  ``RetryAfterSeconds`` hint and the ``ShardUnavailable`` marker
  (never a hang, never a stack trace);
- recovered phase: within a bounded wall-clock window the supervisor
  restarts the worker from its snapshot + write-attempt log, the
  recovered registry must be byte-identical to the pre-kill snapshot,
  and the retried write must land;
- verdict: the extended linearizability check over the merged
  per-shard attempt logs, with every recovery self-check folded in.

Like the geo catalog, the scenario drives a caller-supplied build
(``build.module`` + ``build.make_backend``) through a discovered
create+read workload, so it runs against any learned emulator.
"""

from __future__ import annotations

import time

from ..serve.loadgen import _canonical
from ..serve.shard import ShardedFrontDoor
from ..telemetry import Telemetry
from .geo import _invoke, _probe_workload


def shard_worker_failover(build, seed: int = 7, shards: int = 2,
                          data_dir=None, trace: str | None = None,
                          failover_budget_s: float = 30.0) -> dict:
    """Kill a tenant's shard worker, grade the shed + the recovery."""
    telemetry = Telemetry(service=build.service)
    front = ShardedFrontDoor(
        build.module, build.make_backend, shards=shards,
        data_dir=data_dir, telemetry=telemetry,
        snapshot_interval=4, seed=seed,
    )
    tenant = "shard-drill"
    result = {"name": "shard_worker_failover", "phases": {},
              "shards": shards}
    try:
        creates, read_api, read_params = _probe_workload(build, seed)
        result["workload"] = {"create": creates[0][0], "read": read_api}
        supervisor = front.supervisor
        shard = supervisor.shard_for(tenant)
        result["shard"] = shard

        # Phase 1: healthy — a write and a read land on the shard.
        body, create_code = _invoke(front, tenant, *creates[0])
        __, read_code = _invoke(front, tenant, read_api, read_params)
        result["phases"]["healthy"] = {
            "create_code": create_code, "read_code": read_code,
            "resource": body.get("id", ""),
        }
        before = supervisor.snapshot(shard, tenant)

        # Phase 2: the worker dies — the next write sheds with a
        # Retry-After hint instead of hanging on a dead pipe.
        supervisor.kill(shard)
        shed_body, shed_code = _invoke(front, tenant, *creates[1])
        shed_error = shed_body.get("Error") or {}
        result["phases"]["failover"] = {
            "write_code": shed_code,
            "shard_unavailable": shed_error.get("ShardUnavailable") is True,
            "retry_after": shed_error.get("RetryAfterSeconds", 0.0),
        }

        # Phase 3: bounded recovery — the supervisor restarts the
        # worker; its registry must match the pre-kill snapshot
        # byte-for-byte before the retried write lands.
        deadline = time.monotonic() + failover_budget_s
        recovered = False
        while time.monotonic() < deadline:
            if supervisor.alive(shard) and supervisor.generation(shard):
                recovered = True
                break
            time.sleep(0.05)
        after = supervisor.snapshot(shard, tenant) if recovered else None
        identical = (
            after is not None
            and _canonical(after) == _canonical(before)
        )
        __, retry_code = _invoke(front, tenant, *creates[1])
        restart = (supervisor.restart_log or [{}])[-1]
        result["phases"]["recovered"] = {
            "restarted": recovered,
            "byte_identical": identical,
            "write_code": retry_code,
            "recovery_seconds": restart.get("recovery_seconds", 0.0),
            "replayed": restart.get("replayed", 0),
        }

        ok, mismatches = front.verify_linearizable()
        result["linearizable"] = ok
        result["mismatches"] = mismatches
        result["restarts"] = supervisor.restarts
        result["ok"] = (
            create_code == ""
            and read_code == ""
            and shed_code == "ServiceUnavailable"
            and result["phases"]["failover"]["shard_unavailable"]
            and result["phases"]["failover"]["retry_after"] > 0
            and recovered
            and identical
            and retry_code == ""
            and ok
        )
        if trace:
            from ..telemetry.export import write_trace

            write_trace(telemetry, trace)
        return result
    finally:
        front.close()


SHARD_SCENARIOS = (shard_worker_failover,)


def run_shard_scenarios(build, seed: int = 7) -> list[dict]:
    """Every process-fault scenario, in catalog order."""
    return [scenario(build, seed=seed) for scenario in SHARD_SCENARIOS]
