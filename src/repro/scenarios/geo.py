"""Geo-distributed serving scenarios: failover, convergence, noise.

These scenarios exercise the network-realistic serving path
(:mod:`repro.netem`) end to end, each returning a plain result dict
with an ``ok`` verdict and the evidence behind it:

- :func:`multi_region_failover` — a client far from its data keeps
  reading through a partition (stale, from its local replica) while
  its writes bounce with region-appropriate errors, then writes again
  after the heal;
- :func:`partition_heal_convergence` — a replica region isolated
  mid-write-burst diverges, and the first post-heal sync converges it;
  the proof is a byte-level registry snapshot diff
  (:func:`repro.durability.snapshot.registry_diff`), not an assertion;
- :func:`noisy_cross_region_replication` — seeded loss, degraded RTT
  and scripted partitions under concurrent multi-tenant load, with the
  serial-replay linearizability check as the pass bar.  This is the
  scenario the sweep harness (:mod:`repro.netem.sweep`) runs per grid
  cell.

Every scenario builds its own front door over a caller-supplied build
(``build.module`` + ``build.make_backend``), so they run against any
learned emulator without touching global state.
"""

from __future__ import annotations

import random

from ..netem.engine import NetEm
from ..netem.placement import Placer
from ..netem.timeline import FaultTimeline, partition_window, seeded_partitions
from ..netem.topology import (
    DEFAULT_REGIONS,
    three_region_topology,
    uniform_topology,
)
from ..resilience.policy import VirtualClock
from ..serve.frontdoor import FrontDoor
from ..serve.loadgen import LoadGenerator
from ..telemetry import Telemetry


def _frontdoor(build, netem, telemetry, client_regions=None,
               home_region=None, replication_lag=0.25, seed=7,
               rate=200.0, burst=100.0, placer=None):
    return FrontDoor(
        build.module, build.make_backend,
        clock=netem.clock, telemetry=telemetry,
        network=netem, home_region=home_region,
        client_regions=client_regions,
        replication_lag=replication_lag,
        placer=placer,
        rate=rate, burst=burst, seed=seed,
    )


def _single_home_placer(seed: int) -> Placer:
    """All un-hinted creates land at the primary region — the shape
    that makes a cross-region partition actually stand between a
    remote client and its data."""
    return Placer(DEFAULT_REGIONS, seed=seed,
                  default_region="us-east-1", data_gravity=False)


def _invoke(front, tenant, api, params):
    body = front.dispatch(
        {"Action": api, "Parameters": params}, api_key=tenant
    )
    error = body.get("Error")
    return body, (error or {}).get("Code", "")


def _probe_workload(build, seed: int, creates_needed: int = 6):
    """Discover a driveable single-resource workload for any service.

    Registry IDs are deterministic, so a sequence of creates proved
    against a scratch emulator replays identically inside a scenario:
    the probe returns ``creates_needed`` validated ``(api, params)``
    creates plus one read that succeeds against the first created
    resource.  Raises if the module offers nothing driveable — a
    convergence scenario over a service it cannot exercise should
    fail loudly, not vacuously pass.
    """
    from ..interpreter.emulator import normalize_key
    from ..netem.placement import REGION_HINT_KEYS
    from ..serve.loadgen import _TrafficModel

    scratch = build.make_backend()
    model = _TrafficModel(build.module, scratch.read_only)
    rng = random.Random(seed * 9973 + 11)
    for create_api in model.creates:
        probe = build.make_backend()
        __, transition = model._index[create_api]
        creates: list[tuple[str, dict]] = []
        first_id = ""
        for __attempt in range(creates_needed * 4):
            # Region-ish params are pinned to the scenarios' home
            # region: a synthesized location hint would otherwise
            # route the create to an arbitrary region and defeat the
            # single-home shape the partition tests rely on.
            params = {
                param.name: (
                    "us-east-1"
                    if normalize_key(param.name) in REGION_HINT_KEYS
                    else model._value(rng, param, {})
                )
                for param in transition.params
            }
            response = probe.invoke(create_api, params)
            created = response.data.get("id") if response.success else None
            if isinstance(created, str) and created:
                creates.append((create_api, params))
                first_id = first_id or created
                if len(creates) >= creates_needed:
                    break
        if len(creates) < creates_needed:
            continue
        ids = {model.owning_sm(create_api): [first_id]}
        for read_api in model.reads:
            __, read_transition = model._index[read_api]
            read_params = {
                param.name: model._value(rng, param, ids)
                for param in read_transition.params
            }
            if probe.invoke(read_api, read_params).success:
                return creates, read_api, read_params
    raise ValueError(
        f"no driveable create+read workload found for "
        f"{build.service!r}; the geo scenarios cannot run against it"
    )


def multi_region_failover(build, seed: int = 7,
                          trace: str | None = None) -> dict:
    """A remote client rides out a partition on stale reads.

    The tenant's client sits in ``eu-west-1`` while its resources live
    in the home region ``us-east-1``.  Mid-run the transatlantic link
    partitions: writes must fail with ``ServiceUnavailable`` naming
    the unreachable region, reads must keep answering from the local
    replica (marked ``Stale``), and after the heal writes must land
    again.
    """
    clock = VirtualClock()
    telemetry = Telemetry(service=build.service, clock=clock)
    timeline = FaultTimeline(
        partition_window("us-east-1", "eu-west-1", start=10.0,
                         duration=20.0)
    )
    netem = NetEm(three_region_topology(), clock=clock,
                  timeline=timeline, seed=seed, telemetry=telemetry)
    front = _frontdoor(
        build, netem, telemetry, seed=seed,
        home_region="us-east-1",
        client_regions={"geo": "eu-west-1"},
        replication_lag=0.5,
        placer=_single_home_placer(seed),
    )

    creates, read_api, read_params = _probe_workload(build, seed)
    result = {"name": "multi_region_failover", "phases": {},
              "workload": {"create": creates[0][0], "read": read_api}}
    # Phase 1: healthy — create a resource, read it back
    # authoritatively.
    body, code = _invoke(front, "geo", *creates[0])
    resource = body.get("id", "")
    __, read_code = _invoke(front, "geo", read_api, read_params)
    result["phases"]["healthy"] = {
        "create_code": code, "read_code": read_code,
        "resource": resource,
    }
    # Let the replica catch up, then cross into the partition window.
    clock.sleep(2.0)
    front.invoke(read_api, read_params, api_key="geo")
    clock.sleep(10.0)

    # Phase 2: partitioned — writes bounce, reads go stale.
    __, write_code = _invoke(front, "geo", *creates[1])
    read_body, read_code = _invoke(front, "geo", read_api, read_params)
    result["phases"]["partitioned"] = {
        "write_code": write_code,
        "read_code": read_code,
        "read_stale": read_body.get("Stale") is True,
        "replica_region": read_body.get("ReplicaRegion", ""),
    }

    # Phase 3: healed — the client retries the bounced write, and it
    # lands.
    clock.sleep(25.0)
    __, heal_code = _invoke(front, "geo", *creates[1])
    result["phases"]["healed"] = {"write_code": heal_code}
    result["stale_reads"] = netem.stats.stale_reads
    result["partition_rejects"] = netem.stats.partition_rejects
    result["partition_windows"] = netem.topology.partition_report()
    result["ok"] = (
        code == ""
        and write_code == "ServiceUnavailable"
        and result["phases"]["partitioned"]["read_stale"]
        and heal_code == ""
    )
    if trace:
        from ..telemetry.export import write_trace

        write_trace(telemetry, trace)
    return result


def partition_heal_convergence(build, seed: int = 7,
                               partition_duration: float = 15.0,
                               trace: str | None = None) -> dict:
    """Divergence under partition, byte-identical registries after.

    Writes land at the home region while ``us-west-2`` is cut off;
    its replica freezes.  After the heal, one sync must converge every
    replica: the proof is :meth:`ReplicaSet.divergence`, which diffs
    full registry dumps (instances, state, ID counters, placements)
    via :func:`repro.durability.snapshot.registry_diff`.
    """
    clock = VirtualClock()
    telemetry = Telemetry(service=build.service, clock=clock)
    timeline = FaultTimeline(
        partition_window("us-east-1", "us-west-2", start=5.0,
                         duration=partition_duration)
    )
    netem = NetEm(three_region_topology(), clock=clock,
                  timeline=timeline, seed=seed, telemetry=telemetry)
    front = _frontdoor(
        build, netem, telemetry, seed=seed,
        home_region="us-east-1",
        client_regions={"geo": "us-east-1"},
        replication_lag=0.1,
        placer=_single_home_placer(seed),
    )

    creates, __read_api, __read_params = _probe_workload(build, seed)
    __, code = _invoke(front, "geo", *creates[0])
    clock.sleep(6.0)  # enter the partition window
    for api, params in creates[1:5]:
        _invoke(front, "geo", api, params)
    tenant = front.router.get("geo")
    replicas = front.region_gate.tenant_net("geo").replicas
    during = replicas.divergence(tenant.emulator)

    clock.sleep(partition_duration + 5.0)  # past the heal
    replicas.sync(netem, clock.now())
    after = replicas.divergence(tenant.emulator)

    if trace:
        from ..telemetry.export import write_trace

        write_trace(telemetry, trace)
    return {
        "name": "partition_heal_convergence",
        "first_create_code": code,
        "diverged_during_partition": "us-west-2" in during,
        "divergence_during": {
            region: diffs[:3] for region, diffs in during.items()
        },
        "divergence_after_heal": after,
        "replications": netem.stats.replications,
        "partition_windows": netem.topology.partition_report(),
        "ok": code == "" and "us-west-2" in during and not after,
    }


def noisy_cross_region_replication(
    build,
    seed: int = 7,
    loss: float = 0.05,
    base_rtt: float = 0.04,
    partition_duration: float = 10.0,
    workers: int = 4,
    requests_per_worker: int = 60,
    tenants: int = 2,
    obs: bool = True,
    slos: "list | None" = None,
    slo_period: float = 1440.0,
    sample_keep: float = 0.05,
    drift_rate: float = 0.0,
    trace: str | None = None,
    capture: dict | None = None,
) -> dict:
    """Concurrent multi-tenant load over a hostile WAN, proved safe.

    Every cross-region link carries ``loss`` and ``base_rtt``; seeded
    partitions open and close through the run.  The pass bar is the
    serving layer's own: the admitted log, replayed serially, must
    reproduce the live registry byte-for-byte — zero linearizability
    violations no matter what the network dropped.

    With ``obs`` (the default) the run carries a full
    :class:`~repro.obs.ObsPlane`: per-tenant SLOs over ``slo_period``
    virtual seconds (or caller-supplied ``slos``), tail sampling at
    ``sample_keep``, and optional evaluator ``drift_rate``.  The
    plane's summary lands in ``load.obs``; passing ``capture`` (a
    dict) hands back the live plane/netem/front-door objects so
    ``repro top --record`` can replay the dashboard, and ``trace``
    exports the schema-2 JSONL.
    """
    clock = VirtualClock()
    telemetry = Telemetry(service=build.service, clock=clock)
    topology = uniform_topology(
        DEFAULT_REGIONS,
        base_rtt=base_rtt, jitter=base_rtt / 4, loss=loss,
    )
    offered_rate = 100.0
    # The partition schedule must land inside the run's *virtual*
    # span: each request advances the clock by its pace plus roughly
    # one RTT, so the horizon is derived from the load shape rather
    # than fixed.
    total_requests = workers * requests_per_worker
    horizon = total_requests * (1.0 / offered_rate + 2.0 * base_rtt)
    timeline = FaultTimeline(seeded_partitions(
        topology.regions, seed=seed, horizon=horizon,
        duration=partition_duration,
        period=max(0.001, horizon / 3.0),
    ))
    netem = NetEm(topology, clock=clock, timeline=timeline, seed=seed,
                  telemetry=telemetry)
    plane = None
    if obs:
        from ..obs import default_slos, ObsPlane

        tenant_names = [f"tenant-{index}" for index in range(tenants)]
        plane = ObsPlane(
            telemetry, seed=seed,
            slos=(slos if slos is not None
                  else default_slos(tenant_names, period=slo_period)),
            sample_keep=sample_keep,
            drift_rate=drift_rate,
        )
    front = _frontdoor(build, netem, telemetry, seed=seed,
                       replication_lag=0.25)
    generator = LoadGenerator(
        front, seed=seed, workers=workers,
        requests_per_worker=requests_per_worker,
        tenants=tenants, offered_rate=offered_rate,
    )
    report = generator.run(verify=True)
    if capture is not None:
        capture.update(
            plane=plane, netem=netem, frontdoor=front,
            telemetry=telemetry, clock=clock,
        )
    if trace:
        from ..telemetry.export import write_trace

        write_trace(telemetry, trace)
    return {
        "name": "noisy_cross_region_replication",
        "load": report.as_dict(),
        "net": netem.stats.as_dict(),
        "partition_windows": netem.topology.partition_report(),
        "ok": bool(report.linearizable),
    }


#: The geo scenario catalog, in run order.
GEO_SCENARIOS = (
    multi_region_failover,
    partition_heal_convergence,
    noisy_cross_region_replication,
)


def run_geo_scenarios(build, seed: int = 7) -> list[dict]:
    """Run the full geo catalog; each entry carries its own verdict."""
    return [scenario(build, seed=seed) for scenario in GEO_SCENARIOS]
