"""The evaluation traces: 3 scenarios x 4 traces (Fig. 3), the §5 basic-
functionality DevOps program, and the Azure multi-cloud traces.

The three scenarios follow §5 exactly: *provisioning*, *state updates*,
and *edge cases that target subtle underspecified checks*.  The edge
cases encode the paper's own examples: DeleteVpc with an attached
internet gateway, StartInstances on a running instance, a /29 subnet
prefix, and DNS hostnames on a VPC without DNS support.
"""

from __future__ import annotations

from .model import Trace, TraceStep

S = TraceStep


def _provisioning() -> list[Trace]:
    network = Trace(
        name="provision_network",
        service="ec2",
        scenario="provisioning",
        description="VPC + subnet + internet gateway, the §5 motivating "
                    "workflow.",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.0.0.0/16"}, bind="vpc"),
            S("CreateSubnet",
              {"VpcId": "$vpc", "CidrBlock": "10.0.1.0/24",
               "AvailabilityZone": "us-east-1a"}, bind="subnet"),
            S("CreateInternetGateway", {}, bind="igw"),
            S("AttachInternetGateway",
              {"InternetGatewayId": "$igw", "VpcId": "$vpc"}),
            S("DescribeVpcAttribute", {"VpcId": "$vpc"}),
            S("DescribeSubnets", {"SubnetId": "$subnet"}),
        ),
    )
    compute = Trace(
        name="provision_compute",
        service="ec2",
        scenario="provisioning",
        description="Instance launch plus an Elastic IP association.",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.1.0.0/16"}, bind="vpc"),
            S("CreateSubnet",
              {"VpcId": "$vpc", "CidrBlock": "10.1.0.0/24"}, bind="subnet"),
            S("RunInstances",
              {"SubnetId": "$subnet", "ImageId": "ami-12345678",
               "InstanceType": "t2.micro"}, bind="instance"),
            S("AllocateAddress", {}, bind="eip"),
            S("AssociateAddress",
              {"ElasticIpId": "$eip", "InstanceId": "$instance"}),
            S("DescribeInstances", {"InstanceId": "$instance"}),
        ),
    )
    firewall = Trace(
        name="provision_firewall",
        service="network_firewall",
        scenario="provisioning",
        description="Rule group -> policy -> firewall, the service Moto "
                    "barely covers.",
        steps=(
            S("CreateRuleGroup",
              {"GroupName": "web-rules", "Type": "STATEFUL",
               "Capacity": 100}, bind="rule_group"),
            S("CreateFirewallPolicy",
              {"PolicyName": "policy-1", "RuleGroupId": "$rule_group"},
              bind="firewall_policy"),
            S("CreateFirewall",
              {"FirewallName": "fw-1", "FirewallPolicyId": "$firewall_policy"},
              bind="firewall"),
            S("DescribeFirewall", {"FirewallId": "$firewall"}),
        ),
    )
    database = Trace(
        name="provision_database",
        service="dynamodb",
        scenario="provisioning",
        description="Table creation plus basic item traffic.",
        steps=(
            S("CreateTable",
              {"TableName": "orders", "BillingMode": "PAY_PER_REQUEST"},
              bind="table"),
            S("PutItem",
              {"TableId": "$table", "ItemKey": "order-1",
               "ItemValue": "pending"}),
            S("GetItem", {"TableId": "$table", "ItemKey": "order-1"}),
            S("DescribeTable", {"TableId": "$table"}),
        ),
    )
    return [network, compute, firewall, database]


def _state_updates() -> list[Trace]:
    subnet_attribute = Trace(
        name="update_subnet_attribute",
        service="ec2",
        scenario="state_updates",
        description="The §5 basic-functionality program: enable "
                    "MapPublicIpOnLaunch on a subnet.",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.2.0.0/16"}, bind="vpc"),
            S("CreateSubnet",
              {"VpcId": "$vpc", "CidrBlock": "10.2.3.0/24"}, bind="subnet"),
            S("ModifySubnetAttribute",
              {"SubnetId": "$subnet", "MapPublicIpOnLaunch": True}),
            S("DescribeSubnets", {"SubnetId": "$subnet"}),
        ),
    )
    instance_lifecycle = Trace(
        name="update_instance_lifecycle",
        service="ec2",
        scenario="state_updates",
        description="Stop, retype, recredit and restart an instance — "
                    "exercises InstanceTenancy/CreditSpecification state.",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.3.0.0/16"}, bind="vpc"),
            S("CreateSubnet",
              {"VpcId": "$vpc", "CidrBlock": "10.3.0.0/24"}, bind="subnet"),
            S("RunInstances",
              {"SubnetId": "$subnet", "ImageId": "ami-12345678",
               "InstanceType": "t2.micro",
               "CreditSpecification": "unlimited"}, bind="instance"),
            S("StopInstances", {"InstanceId": "$instance"}),
            S("ModifyInstanceAttribute",
              {"InstanceId": "$instance", "InstanceType": "m5.large"}),
            S("ModifyInstanceCreditSpecification",
              {"InstanceId": "$instance", "CreditSpecification": "standard"}),
            S("DescribeInstances", {"InstanceId": "$instance"}),
        ),
    )
    vpc_dns = Trace(
        name="update_vpc_dns",
        service="ec2",
        scenario="state_updates",
        description="Enable DNS support then DNS hostnames (legal order).",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.4.0.0/16"}, bind="vpc"),
            S("ModifyVpcAttribute",
              {"VpcId": "$vpc", "EnableDnsSupport": True}),
            S("ModifyVpcAttribute",
              {"VpcId": "$vpc", "EnableDnsHostnames": True}),
            S("DescribeVpcAttribute", {"VpcId": "$vpc"}),
            S("DescribeVpcs", {"VpcId": "$vpc"}),
        ),
    )
    firewall_protection = Trace(
        name="update_firewall_protection",
        service="network_firewall",
        scenario="state_updates",
        description="Toggle delete protection around a DeleteFirewall.",
        steps=(
            S("CreateFirewallPolicy", {"PolicyName": "p2"},
              bind="firewall_policy"),
            S("CreateFirewall",
              {"FirewallName": "fw-2",
               "FirewallPolicyId": "$firewall_policy"}, bind="firewall"),
            S("UpdateFirewallDeleteProtection",
              {"FirewallId": "$firewall", "DeleteProtection": True}),
            S("DeleteFirewall", {"FirewallId": "$firewall"},
              expect_success=False),
            S("UpdateFirewallDeleteProtection",
              {"FirewallId": "$firewall", "DeleteProtection": False}),
            S("DeleteFirewall", {"FirewallId": "$firewall"}),
        ),
    )
    return [subnet_attribute, instance_lifecycle, vpc_dns,
            firewall_protection]


def _edge_cases() -> list[Trace]:
    delete_vpc = Trace(
        name="edge_delete_vpc_dependency",
        service="ec2",
        scenario="edge_cases",
        description="DeleteVpc with an attached internet gateway must fail "
                    "with DependencyViolation (the Moto bug of §2).",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.5.0.0/16"}, bind="vpc"),
            S("CreateInternetGateway", {}, bind="igw"),
            S("AttachInternetGateway",
              {"InternetGatewayId": "$igw", "VpcId": "$vpc"}),
            S("DeleteVpc", {"VpcId": "$vpc"}, expect_success=False),
            S("DescribeVpcs", {"VpcId": "$vpc"}),
        ),
    )
    start_running = Trace(
        name="edge_start_running_instance",
        service="ec2",
        scenario="edge_cases",
        description="StartInstances on a running instance must return "
                    "IncorrectInstanceState, not silent success (§5).",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.6.0.0/16"}, bind="vpc"),
            S("CreateSubnet",
              {"VpcId": "$vpc", "CidrBlock": "10.6.0.0/24"}, bind="subnet"),
            S("RunInstances",
              {"SubnetId": "$subnet", "ImageId": "ami-12345678",
               "InstanceType": "t2.micro"}, bind="instance"),
            S("StartInstances", {"InstanceId": "$instance"},
              expect_success=False),
        ),
    )
    invalid_prefix = Trace(
        name="edge_invalid_subnet_prefix",
        service="ec2",
        scenario="edge_cases",
        description="A /29 subnet must be rejected even though its CIDR "
                    "doesn't conflict (§5's shallow-validation example).",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.7.0.0/16"}, bind="vpc"),
            S("CreateSubnet",
              {"VpcId": "$vpc", "CidrBlock": "10.7.0.0/29"},
              expect_success=False),
            S("CreateSubnet",
              {"VpcId": "$vpc", "CidrBlock": "10.7.1.0/24"}, bind="subnet"),
            S("CreateSubnet",
              {"VpcId": "$vpc", "CidrBlock": "10.7.1.0/24"},
              expect_success=False),
        ),
    )
    dns_context = Trace(
        name="edge_dns_context",
        service="ec2",
        scenario="edge_cases",
        description="Enabling DNS hostnames while DNS support is disabled "
                    "must fail (§5's resource-context example).",
        steps=(
            S("CreateVpc", {"CidrBlock": "10.8.0.0/16"}, bind="vpc"),
            S("ModifyVpcAttribute",
              {"VpcId": "$vpc", "EnableDnsSupport": False}),
            S("ModifyVpcAttribute",
              {"VpcId": "$vpc", "EnableDnsHostnames": True},
              expect_success=False),
        ),
    )
    return [delete_vpc, start_running, invalid_prefix, dns_context]


def evaluation_traces() -> list[Trace]:
    """The 12 traces behind Fig. 3 (3 scenarios x 4 traces)."""
    return _provisioning() + _state_updates() + _edge_cases()


def basic_functionality_trace() -> Trace:
    """The §5 basic-functionality DevOps program."""
    return _state_updates()[0]


def gcp_traces() -> list[Trace]:
    """Traces for the GCP replication of the multi-cloud experiment."""
    provision = Trace(
        name="gcp_provision_network",
        service="gcp_compute",
        scenario="provisioning",
        description="Network + subnetwork + instance + static address.",
        steps=(
            S("networks_insert", {"Ipv4Range": "10.0.0.0/16"},
              bind="network"),
            S("subnetworks_insert",
              {"NetworkId": "$network", "IpCidrRange": "10.0.1.0/24",
               "Region": "us-central1"}, bind="subnetwork"),
            S("instances_insert",
              {"SubnetworkId": "$subnetwork", "MachineType": "e2-micro",
               "Region": "us-central1"}, bind="instance"),
            S("addresses_insert", {"Region": "us-central1"},
              bind="address"),
            S("addresses_attach",
              {"AddressId": "$address", "InstanceId": "$instance"}),
            S("instances_get", {"InstanceId": "$instance"}),
        ),
    )
    lifecycle = Trace(
        name="gcp_instance_lifecycle",
        service="gcp_compute",
        scenario="state_updates",
        description="Stop, resize, restart a Compute Engine instance.",
        steps=(
            S("networks_insert", {"Ipv4Range": "10.1.0.0/16"},
              bind="network"),
            S("subnetworks_insert",
              {"NetworkId": "$network", "IpCidrRange": "10.1.0.0/24",
               "Region": "us-central1"}, bind="subnetwork"),
            S("instances_insert",
              {"SubnetworkId": "$subnetwork", "MachineType": "e2-micro"},
              bind="instance"),
            S("instances_stop", {"InstanceId": "$instance"}),
            S("instances_setMachineType",
              {"InstanceId": "$instance", "MachineType": "n2-standard-2"}),
            S("instances_start", {"InstanceId": "$instance"}),
            S("instances_get", {"InstanceId": "$instance"}),
        ),
    )
    delete_in_use = Trace(
        name="gcp_edge_network_in_use",
        service="gcp_compute",
        scenario="edge_cases",
        description="Deleting a network that still has subnetworks must "
                    "fail; so must an out-of-range subnetwork.",
        steps=(
            S("networks_insert", {"Ipv4Range": "10.2.0.0/16"},
              bind="network"),
            S("subnetworks_insert",
              {"NetworkId": "$network", "IpCidrRange": "10.2.0.0/24",
               "Region": "us-central1"}, bind="subnetwork"),
            S("networks_delete", {"NetworkId": "$network"},
              expect_success=False),
            S("subnetworks_insert",
              {"NetworkId": "$network", "IpCidrRange": "192.168.0.0/24",
               "Region": "us-central1"}, expect_success=False),
        ),
    )
    region_mismatch = Trace(
        name="gcp_edge_region_mismatch",
        service="gcp_compute",
        scenario="edge_cases",
        description="Attaching an address to an instance in another "
                    "region must fail; starting a running instance must "
                    "fail.",
        steps=(
            S("networks_insert", {"Ipv4Range": "10.3.0.0/16"},
              bind="network"),
            S("subnetworks_insert",
              {"NetworkId": "$network", "IpCidrRange": "10.3.0.0/24",
               "Region": "us-central1"}, bind="subnetwork"),
            S("instances_insert",
              {"SubnetworkId": "$subnetwork", "MachineType": "e2-micro",
               "Region": "us-central1"}, bind="instance"),
            S("addresses_insert", {"Region": "europe-west1"},
              bind="address"),
            S("addresses_attach",
              {"AddressId": "$address", "InstanceId": "$instance"},
              expect_success=False),
            S("instances_start", {"InstanceId": "$instance"},
              expect_success=False),
        ),
    )
    return [provision, lifecycle, delete_in_use, region_mismatch]


def azure_traces() -> list[Trace]:
    """The Azure traces for the §5 multi-cloud replication."""
    provision = Trace(
        name="azure_provision_network",
        service="azure_network",
        scenario="provisioning",
        description="VNet + subnet + public IP + NIC association.",
        steps=(
            S("createOrUpdateVirtualNetwork",
              {"AddressSpace": "10.0.0.0/16", "Location": "eastus"},
              bind="virtual_network"),
            S("createOrUpdateSubnet",
              {"VirtualNetworkId": "$virtual_network",
               "AddressPrefix": "10.0.1.0/24"}, bind="subnet"),
            S("createOrUpdatePublicIPAddress",
              {"Location": "eastus", "AllocationMethod": "Static"},
              bind="public_ip_address"),
            S("createOrUpdateNetworkInterface",
              {"SubnetId": "$subnet", "Location": "eastus"},
              bind="network_interface"),
            S("associatePublicIPAddress",
              {"NetworkInterfaceId": "$network_interface",
               "PublicIpAddressId": "$public_ip_address"}),
            S("getNetworkInterface",
              {"NetworkInterfaceId": "$network_interface"}),
        ),
    )
    vm_lifecycle = Trace(
        name="azure_vm_lifecycle",
        service="azure_network",
        scenario="state_updates",
        description="VM create, deallocate, resize, restart.",
        steps=(
            S("createOrUpdateVirtualNetwork",
              {"AddressSpace": "10.1.0.0/16", "Location": "westus"},
              bind="virtual_network"),
            S("createOrUpdateSubnet",
              {"VirtualNetworkId": "$virtual_network",
               "AddressPrefix": "10.1.0.0/24"}, bind="subnet"),
            S("createOrUpdateNetworkInterface",
              {"SubnetId": "$subnet", "Location": "westus"},
              bind="network_interface"),
            S("createOrUpdateVirtualMachine",
              {"NetworkInterfaceId": "$network_interface",
               "VmSize": "Standard_B1s", "Location": "westus"},
              bind="virtual_machine"),
            S("deallocateVirtualMachine",
              {"VirtualMachineId": "$virtual_machine"}),
            S("resizeVirtualMachine",
              {"VirtualMachineId": "$virtual_machine",
               "VmSize": "Standard_B2s"}),
            S("startVirtualMachine",
              {"VirtualMachineId": "$virtual_machine"}),
            S("getVirtualMachine",
              {"VirtualMachineId": "$virtual_machine"}),
        ),
    )
    location_mismatch = Trace(
        name="azure_edge_location_mismatch",
        service="azure_network",
        scenario="edge_cases",
        description="Associating a public IP from another location must "
                    "fail; deleting a VNet with subnets must fail.",
        steps=(
            S("createOrUpdateVirtualNetwork",
              {"AddressSpace": "10.2.0.0/16", "Location": "eastus"},
              bind="virtual_network"),
            S("createOrUpdateSubnet",
              {"VirtualNetworkId": "$virtual_network",
               "AddressPrefix": "10.2.0.0/24"}, bind="subnet"),
            S("createOrUpdateNetworkInterface",
              {"SubnetId": "$subnet", "Location": "eastus"},
              bind="network_interface"),
            S("createOrUpdatePublicIPAddress",
              {"Location": "westus"}, bind="public_ip_address"),
            S("associatePublicIPAddress",
              {"NetworkInterfaceId": "$network_interface",
               "PublicIpAddressId": "$public_ip_address"},
              expect_success=False),
            S("deleteVirtualNetwork",
              {"VirtualNetworkId": "$virtual_network"},
              expect_success=False),
        ),
    )
    vm_constraints = Trace(
        name="azure_edge_vm_constraints",
        service="azure_network",
        scenario="edge_cases",
        description="Overlapping subnets and deleting a running VM must "
                    "both be rejected.",
        steps=(
            S("createOrUpdateVirtualNetwork",
              {"AddressSpace": "10.3.0.0/16", "Location": "eastus"},
              bind="virtual_network"),
            S("createOrUpdateSubnet",
              {"VirtualNetworkId": "$virtual_network",
               "AddressPrefix": "10.3.0.0/24"}, bind="subnet"),
            S("createOrUpdateSubnet",
              {"VirtualNetworkId": "$virtual_network",
               "AddressPrefix": "10.3.0.0/25"}, expect_success=False),
            S("createOrUpdateNetworkInterface",
              {"SubnetId": "$subnet", "Location": "eastus"},
              bind="network_interface"),
            S("createOrUpdateVirtualMachine",
              {"NetworkInterfaceId": "$network_interface",
               "VmSize": "Standard_B1s", "Location": "eastus"},
              bind="virtual_machine"),
            S("deleteVirtualMachine",
              {"VirtualMachineId": "$virtual_machine"},
              expect_success=False),
        ),
    )
    return [provision, vm_lifecycle, location_mismatch, vm_constraints]
