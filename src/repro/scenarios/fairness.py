"""The noisy-neighbor fairness drill behind the holistic allocator.

The scenario answers the question the allocator exists for: when one
tenant floods at ten times everyone else's rate, do the victims keep
the goodput and latency they had when the aggressor was away?

It runs two phases against *fresh* fair front doors with the same
pool configuration:

- **isolated** — the victims alone, each offered its steady rate;
- **contended** — the same victim traffic (same seeds, same request
  streams) plus the aggressor flooding at ``aggressor_mult`` times a
  victim's rate.

Per victim it grades goodput retention (contended admitted / isolated
admitted) and tail latency (contended p99 against twice the isolated
p99, floored so a zero-latency isolated phase cannot fail the bound
on noise), then re-proves linearizability for both phases — fairness
that corrupts the registry would be worse than no fairness.

With ``kill_shard=True`` the drill instead runs on a sharded fair
front door, kills one worker mid-run (no auto-restart), and grades
**budget inheritance**: the dead shard's tenants collapse to the
floor grant, the survivors inherit the freed budget, and aggregate
goodput must retain at least ~0.7 of the pre-kill rate — without
inheritance a 2-shard kill pins retention near 0.5.

The driver is single-threaded and event-ordered on the virtual clock
(a heap of per-client next-fire instants), so every run is exactly
reproducible: ratios in CI gate real regressions, not scheduling
noise.  Clients honor Retry-After with full jitter and re-offer shed
requests up to ``max_attempts`` times, so a request's latency is its
honest time-to-outcome including backoff.
"""

from __future__ import annotations

import heapq
import random

from ..serve.allocation import AllocationConfig
from ..serve.frontdoor import FrontDoor
from ..serve.loadgen import (
    SHED_CODES,
    _TrafficModel,
    verify_linearizable,
)
from ..telemetry import Telemetry


def _percentile(values: list, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def drive_fair_load(
    front,
    clients: list,
    seconds: float,
    seed: int = 7,
    read_ratio: float = 0.6,
    deadline: float | None = None,
    retry_shed: bool = False,
    max_attempts: int = 5,
    max_retry_after: float = 5.0,
) -> dict:
    """Drive ``clients`` (``[(tenant, rate), ...]``) for ``seconds``
    of virtual time, single-threaded and deterministic.

    Each client offers requests at its rate; a shed answer is retried
    after a full-jittered Retry-After wait (marked ``Retry: true``
    when ``retry_shed``), up to ``max_attempts`` tries.  Returns
    per-tenant ``{offered, admitted, shed, expired, retry_exhausted,
    gave_up, goodput_rps, p50_s, p99_s}`` plus the elapsed window.
    """
    probe = front.emulator_factory()
    model = _TrafficModel(front.module, probe.read_only)
    clock = front.clock
    start = clock.now()
    horizon = start + seconds
    heap: list = []
    state: dict[str, dict] = {}
    for index, (tenant, rate) in enumerate(clients):
        entry = {
            "rng": random.Random(seed * 1_000_003 + index * 7_919),
            "rate": float(rate),
            "ids": {},
            "next_at": start + (index + 1) * 1e-4,
            "pending": None,
            "attempts": 0,
            "first_at": 0.0,
            "latencies": [],
            "stats": {
                "offered": 0, "admitted": 0, "shed": 0,
                "expired": 0, "retry_exhausted": 0, "gave_up": 0,
            },
        }
        state[tenant] = entry
        heapq.heappush(heap, (entry["next_at"], index, tenant))
    while heap:
        at, index, tenant = heapq.heappop(heap)
        if at > horizon:
            continue
        entry = state[tenant]
        now = clock.now()
        if at > now:
            clock.sleep(at - now)
            now = clock.now()
        rng = entry["rng"]
        retrying = entry["pending"] is not None
        if not retrying:
            entry["pending"] = model.request(
                rng, read_ratio, entry["ids"]
            )
            entry["attempts"] = 0
            entry["first_at"] = now
            entry["stats"]["offered"] += 1
        api, params, __ = entry["pending"]
        envelope = {"Action": api, "Parameters": params}
        if deadline is not None:
            envelope["DeadlineSeconds"] = deadline
        if retrying and retry_shed:
            envelope["Retry"] = True
        entry["attempts"] += 1
        body = front.dispatch(envelope, api_key=tenant)
        error = body.get("Error") or {}
        code = error.get("Code", "")
        stats = entry["stats"]
        done = True
        if error.get("RetryBudgetExhausted") is True:
            stats["retry_exhausted"] += 1
        hint = error.get("RetryAfterSeconds")
        # A *serving-layer* shed always carries the Retry-After hint;
        # injected chaos faults reuse the same codes but never the
        # hint, and they fire *after* admission — they are admitted
        # work that failed, not unfairness, so they must not count
        # against a tenant's goodput ratio.
        is_shed = (
            code in SHED_CODES
            and isinstance(hint, (int, float)) and hint > 0
        )
        if error.get("ExpiredBeforeDispatch") is True:
            stats["expired"] += 1
        elif is_shed:
            if entry["attempts"] < max_attempts:
                cap = min(float(hint), max_retry_after)
                wait = max(rng.uniform(0.0, cap), 1e-6)
                heapq.heappush(heap, (now + wait, index, tenant))
                done = False
            else:
                stats["shed"] += 1
                stats["gave_up"] += 1
        else:
            stats["admitted"] += 1
            if not error:
                created = body.get("id")
                if isinstance(created, str) and created:
                    sm = model.owning_sm(api)
                    entry["ids"].setdefault(sm, []).append(created)
        if done:
            entry["latencies"].append(now - entry["first_at"])
            entry["pending"] = None
            entry["next_at"] += 1.0 / entry["rate"]
            heapq.heappush(
                heap, (max(entry["next_at"], now), index, tenant)
            )
    elapsed = max(clock.now() - start, 1e-9)
    tenants = {}
    for tenant, entry in state.items():
        stats = dict(entry["stats"])
        stats["goodput_rps"] = round(stats["admitted"] / elapsed, 3)
        stats["p50_s"] = round(_percentile(entry["latencies"], 0.50), 6)
        stats["p99_s"] = round(_percentile(entry["latencies"], 0.99), 6)
        tenants[tenant] = stats
    return {"elapsed_s": round(elapsed, 6), "tenants": tenants}


def _fair_front(build, pool_rate: float, pool_burst: float,
                seed: int, chaos: str | None = None,
                weights: dict | None = None, shards: int = 0,
                data_dir=None, auto_restart: bool = True):
    telemetry = Telemetry(service=build.service)
    wrap = None
    if chaos:
        from ..resilience.chaos import (
            ChaosEngine,
            ChaosProxy,
            resolve_profile,
        )

        engine = ChaosEngine(resolve_profile(chaos), seed=seed)
        wrap = lambda backend: ChaosProxy(backend, engine)  # noqa: E731
    allocation = AllocationConfig(
        total_rate=pool_rate, total_burst=pool_burst,
        weights=dict(weights or {}),
    )
    if shards:
        from ..serve.shard import ShardedFrontDoor

        return ShardedFrontDoor(
            build.module, build.make_backend, shards=shards,
            data_dir=data_dir, telemetry=telemetry, wrap=wrap,
            seed=seed, allocation=allocation,
            auto_restart=auto_restart,
        )
    return FrontDoor(
        build.module, build.make_backend, telemetry=telemetry,
        wrap=wrap, seed=seed, allocation=allocation,
    )


def _verify(front) -> tuple[bool, list[str]]:
    verifier = getattr(front, "verify_linearizable", None)
    if callable(verifier):
        return verifier()
    return verify_linearizable(front)


def noisy_neighbor(
    build,
    seed: int = 7,
    chaos: str | None = None,
    victims: int = 3,
    victim_rate: float = 20.0,
    aggressor_mult: float = 10.0,
    seconds: float = 20.0,
    goodput_floor: float = 0.9,
    p99_ceiling: float = 2.0,
) -> dict:
    """Grade victim isolation under a 10x noisy-neighbor flood."""
    victim_names = [f"victim-{index}" for index in range(victims)]
    pool_rate = victim_rate * (victims + 1)
    pool_burst = pool_rate * 0.4
    result = {
        "name": "noisy_neighbor",
        "chaos": chaos or "off",
        "pool_rate": pool_rate,
        "victims": victims,
        "victim_rate": victim_rate,
        "aggressor_mult": aggressor_mult,
        "phases": {},
    }

    front = _fair_front(build, pool_rate, pool_burst, seed, chaos=chaos)
    isolated = drive_fair_load(
        front, [(name, victim_rate) for name in victim_names],
        seconds, seed=seed,
    )
    iso_ok, iso_mismatches = _verify(front)
    result["phases"]["isolated"] = isolated

    front = _fair_front(build, pool_rate, pool_burst, seed, chaos=chaos)
    clients = [(name, victim_rate) for name in victim_names]
    clients.append(("aggressor", victim_rate * aggressor_mult))
    contended = drive_fair_load(front, clients, seconds, seed=seed)
    con_ok, con_mismatches = _verify(front)
    result["phases"]["contended"] = contended
    result["allocation"] = front.allocator.snapshot()
    result["allocation_history"] = list(front.allocator.history)

    ratios = {}
    p99_bounds = {}
    for name in victim_names:
        iso = isolated["tenants"][name]
        con = contended["tenants"][name]
        ratios[name] = round(
            con["admitted"] / max(1, iso["admitted"]), 4
        )
        p99_bounds[name] = (
            con["p99_s"] <= max(p99_ceiling * iso["p99_s"], 1e-3)
        )
    result["victim_goodput_ratios"] = ratios
    result["victim_p99_ok"] = p99_bounds
    result["linearizable"] = iso_ok and con_ok
    result["mismatches"] = iso_mismatches + con_mismatches
    result["ok"] = (
        min(ratios.values()) >= goodput_floor
        and all(p99_bounds.values())
        and result["linearizable"]
    )
    return result


def shard_kill_inheritance(
    build,
    seed: int = 7,
    shards: int = 2,
    tenants_per_shard: int = 2,
    tenant_rate: float = 15.0,
    seconds: float = 16.0,
    retention_floor: float = 0.7,
    data_dir=None,
) -> dict:
    """Kill a shard mid-run; survivors must inherit its budget.

    Every tenant floods at twice its fair share, so pre-kill the pool
    is fully subscribed.  After the kill the dead shard's tenants are
    pinned to the floor grant and the survivors — still flooding —
    can only regain aggregate goodput if the freed budget actually
    flows to them: retention above ``retention_floor`` is the
    inheritance proof (no inheritance pins it near ``1/shards``).
    """
    from ..serve.shard import shard_for

    by_shard: dict[int, list[str]] = {index: [] for index in range(shards)}
    probe = 0
    while any(
        len(names) < tenants_per_shard for names in by_shard.values()
    ):
        name = f"tenant-{probe}"
        owner = shard_for(name, shards)
        if len(by_shard[owner]) < tenants_per_shard:
            by_shard[owner].append(name)
        probe += 1
    tenant_names = [
        name for names in by_shard.values() for name in names
    ]
    pool_rate = tenant_rate * len(tenant_names)
    front = _fair_front(
        build, pool_rate, pool_rate * 0.4, seed, shards=shards,
        data_dir=data_dir, auto_restart=False,
    )
    result = {
        "name": "shard_kill_inheritance",
        "shards": shards,
        "pool_rate": pool_rate,
        "tenants": {
            str(index): list(names)
            for index, names in by_shard.items()
        },
        "phases": {},
    }
    try:
        # Flood at 2x fair share: the pool is the bottleneck, so any
        # freed budget is immediately usable by whoever receives it.
        clients = [
            (name, tenant_rate * 2.0) for name in tenant_names
        ]
        pre = drive_fair_load(
            front, clients, seconds / 2.0, seed=seed
        )
        result["phases"]["pre_kill"] = pre

        killed = 0
        front.supervisor.kill(killed)
        result["killed_shard"] = killed

        post = drive_fair_load(
            front, clients, seconds / 2.0, seed=seed + 1
        )
        result["phases"]["post_kill"] = post

        pre_rate = sum(
            stats["admitted"] for stats in pre["tenants"].values()
        ) / pre["elapsed_s"]
        post_rate = sum(
            stats["admitted"] for stats in post["tenants"].values()
        ) / post["elapsed_s"]
        result["pre_kill_rps"] = round(pre_rate, 3)
        result["post_kill_rps"] = round(post_rate, 3)
        retention = post_rate / max(pre_rate, 1e-9)
        result["throughput_retention"] = round(retention, 4)
        result["allocation"] = front.allocator.snapshot()
        result["allocation_history"] = list(front.allocator.history)

        ok, mismatches = front.verify_linearizable()
        result["linearizable"] = ok
        result["mismatches"] = mismatches
        result["ok"] = retention >= retention_floor and ok
        return result
    finally:
        front.close()


FAIRNESS_SCENARIOS = (noisy_neighbor, shard_kill_inheritance)
