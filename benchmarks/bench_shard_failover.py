"""Sharded serving under worker death: the failover cost, measured.

Three numbers quantify what the crash-tolerance tentpole actually
buys (``BENCH_shard_failover.json``):

1. **Failover latency** — SIGKILL a shard's worker mid-traffic and
   time the window from the kill to the first successful request
   against the restarted process.  Every response inside the window
   must shed with ``ServiceUnavailable`` + a Retry-After hint (the
   router never hangs a client on a dead pipe), and the window itself
   is bounded: detection + spawn + snapshot restore + attempt-log
   replay, not an operator page.

2. **Recovery time** — the supervisor's own restart accounting
   (``recovery_seconds`` per restart, replayed attempt count), split
   out so regressions in WAL replay show up independently of
   detection latency.

3. **Surviving-shard throughput dip** — reads against the *other*
   shard, measured concurrently with the kill/recovery cycle, must
   stay within a bounded fraction of the pre-kill baseline.  Failure
   isolation is the point of sharding; a dying neighbor must not
   drag the fleet down.
"""

import threading
import time

from repro.serve import ShardedFrontDoor
from repro.serve.loadgen import _canonical

#: The surviving shard must keep at least this fraction of its
#: pre-kill read throughput while its neighbor is being repaired.
MIN_SURVIVOR_FRACTION = 0.25

#: Failover must complete (first post-restart success) within this
#: wall-clock bound — generous for CI noise, absurd for production.
MAX_FAILOVER_SECONDS = 30.0


def _make_front(build, tmp_path, shards=2):
    return ShardedFrontDoor(
        build.module, build.make_backend, shards=shards,
        data_dir=tmp_path, snapshot_interval=8,
        rate=1e9, burst=1e9, max_concurrent=64, queue_depth=256,
    )


def _tenants_on_distinct_shards(front, count=2):
    """API keys placed on ``count`` different shards, deterministically."""
    keys, seen = [], set()
    index = 0
    while len(keys) < count:
        key = f"bench-{index}"
        shard = front.supervisor.shard_for(key)
        if shard not in seen:
            seen.add(shard)
            keys.append(key)
        index += 1
    return keys


def _warm(front, key):
    created = front.invoke(
        "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, api_key=key
    )
    assert created.success
    return created.data["id"]


def _read_rate(front, key, vpc, seconds):
    """Wall-clock read throughput against one tenant for ``seconds``."""
    deadline = time.perf_counter() + seconds
    done = 0
    while time.perf_counter() < deadline:
        response = front.invoke(
            "DescribeVpcs", {"VpcId": vpc}, api_key=key
        )
        if response.success:
            done += 1
    return done / seconds


def test_failover_latency_is_bounded(learned_builds, bench_metrics,
                                     tmp_path):
    build = learned_builds["ec2"]
    with _make_front(build, tmp_path) as front:
        victim_key, = _tenants_on_distinct_shards(front, count=1)
        vpc = _warm(front, victim_key)
        shard = front.supervisor.shard_for(victim_key)
        # A little write history so recovery replays a real log tail.
        for __ in range(12):
            created = front.invoke(
                "CreateSubnet",
                {"VpcId": vpc, "CidrBlock": "10.0.1.0/24"},
                api_key=victim_key,
            )
            assert created.success
            front.invoke(
                "DeleteSubnet", {"SubnetId": created.data["id"]},
                api_key=victim_key,
            )
        before = front.supervisor.snapshot(shard, victim_key)

        killed_at = time.perf_counter()
        front.supervisor.kill(shard)
        sheds = 0
        hints = []
        while True:
            response = front.invoke(
                "DescribeVpcs", {"VpcId": vpc}, api_key=victim_key
            )
            if response.success:
                break
            assert response.error_code == "ServiceUnavailable", (
                response.error_code
            )
            sheds += 1
            hints.append(response.data.get("RetryAfterSeconds"))
            assert time.perf_counter() - killed_at < MAX_FAILOVER_SECONDS
            time.sleep(0.02)
        failover = time.perf_counter() - killed_at

        # Recovery restored the exact pre-kill registry (no writes
        # raced the kill, so byte-identity must hold).
        after = front.supervisor.snapshot(shard, victim_key)
        assert _canonical(after) == _canonical(before)
        assert all(isinstance(h, float) and h > 0 for h in hints)
        restart = front.supervisor.restart_log[-1]
        ok, mismatches = front.verify_linearizable()
        assert ok, mismatches

        print(f"\nshard failover: {failover * 1000:.0f}ms to first "
              f"post-restart success ({sheds} shed in-window), "
              f"recovery {restart['recovery_seconds'] * 1000:.0f}ms, "
              f"{restart['replayed']} attempts replayed")
        bench_metrics.gauge("failover_wall_seconds", round(failover, 4))
        bench_metrics.gauge("failover_sheds_in_window", sheds)
        bench_metrics.gauge("recovery_seconds",
                            restart["recovery_seconds"])
        bench_metrics.gauge("recovery_replayed_attempts",
                            restart["replayed"])
        assert failover < MAX_FAILOVER_SECONDS


def test_surviving_shard_throughput_dip_is_bounded(learned_builds,
                                                   bench_metrics,
                                                   tmp_path):
    build = learned_builds["ec2"]
    with _make_front(build, tmp_path) as front:
        victim_key, survivor_key = _tenants_on_distinct_shards(front)
        victim_vpc = _warm(front, victim_key)
        survivor_vpc = _warm(front, survivor_key)
        victim_shard = front.supervisor.shard_for(victim_key)

        baseline = _read_rate(front, survivor_key, survivor_vpc,
                              seconds=1.0)

        rates = {}

        def survivor_load():
            rates["during"] = _read_rate(
                front, survivor_key, survivor_vpc, seconds=2.0
            )

        loader = threading.Thread(target=survivor_load)
        loader.start()
        time.sleep(0.2)
        front.supervisor.kill(victim_shard)
        # Drive the failover from a client thread, like a real fleet.
        while True:
            response = front.invoke(
                "DescribeVpcs", {"VpcId": victim_vpc},
                api_key=victim_key,
            )
            if response.success:
                break
            time.sleep(0.02)
        loader.join()

        dip = rates["during"] / baseline if baseline else 0.0
        print(f"\nsurviving shard: {baseline:,.0f}/s before kill, "
              f"{rates['during']:,.0f}/s during failover "
              f"({dip:.2f}x of baseline)")
        bench_metrics.gauge("survivor_read_per_s_baseline",
                            round(baseline, 1))
        bench_metrics.gauge("survivor_read_per_s_during_failover",
                            round(rates["during"], 1))
        bench_metrics.gauge("survivor_throughput_fraction",
                            round(dip, 3))
        bench_metrics.gauge("restarts", front.supervisor.restarts)
        assert front.supervisor.restarts >= 1
        assert dip >= MIN_SURVIVOR_FRACTION, (
            f"surviving shard kept only {dip:.2f}x of its baseline "
            f"throughput during a neighbor's failover"
        )
