"""Table 1: the coverage of the handcrafted emulator is low.

Reproduces the paper's coverage table by counting each service's API
inventory against the APIs the Moto-like baseline emulates.

Paper numbers:
    Compute (ec2)       571   177   31%
    DB (dynamodb)        57    39   68%
    Network Firewall     45     5   11%
    Kubernetes (eks)     58    15   26%
    Overall (subset)    731   236  ~32%
"""

from repro.analysis import table1_rows
from repro.baselines import build_moto_like
from repro.docs import inventory

PAPER = {
    "ec2": (571, 177, 31),
    "dynamodb": (57, 39, 68),
    "network_firewall": (45, 5, 11),
    "eks": (58, 15, 26),
    "overall": (731, 236, 32),
}


def test_table1_coverage(benchmark):
    rows = benchmark(table1_rows)
    print("\nTable 1 — coverage of the handcrafted (Moto-like) emulator")
    print(f"{'Service':20} {'APIs':>6} {'Emulated':>9} {'Coverage':>9}")
    for row in rows:
        print(f"{row.service:20} {row.total:>6} {row.emulated:>9} "
              f"{row.percent:>8}%")
    measured = {
        row.service: (row.total, row.emulated, row.percent) for row in rows
    }
    assert measured == PAPER


def test_moto_backend_agrees_with_inventory(benchmark):
    """The baseline *implementation* (not just the list) has Table 1's
    coverage: counting supports() over the full inventory."""

    def count():
        counts = {}
        for service in ("ec2", "dynamodb", "network_firewall", "eks"):
            moto = build_moto_like(service)
            counts[service] = sum(
                1 for name in inventory(service) if moto.supports(name)
            )
        return counts

    counts = benchmark(count)
    assert counts == {
        "ec2": 177, "dynamodb": 39, "network_firewall": 5, "eks": 15,
    }
