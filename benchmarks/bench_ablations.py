"""Ablations over the design choices DESIGN.md calls out.

1. Structured generation (§4.2): constrained decoding vs iterative
   re-prompting vs a single unconstrained attempt.
2. Consistency checks (§4.2): extraction with and without the
   completeness/soundness checks.
3. Alignment rounds (§4.3): divergences remaining after each round of
   the repair loop.
"""

import pytest

from repro.alignment import align_module, diff_traces, TraceBuilder
from repro.cloud import make_cloud
from repro.core import wrangled_docs
from repro.extraction import run_checks, run_extraction
from repro.llm import make_llm, synthesize_with_reprompt
from repro.spec import SpecSyntaxError


@pytest.fixture(scope="module")
def ec2_docs():
    return wrangled_docs("ec2")


def test_ablation_structured_generation(benchmark, ec2_docs):
    """Constrained decoding needs one attempt per resource; re-prompting
    needs more; a single unconstrained attempt loses resources."""

    def measure():
        outcomes = {}
        for mode, max_attempts in (
            ("constrained", 4), ("reprompt", 4), ("reprompt", 1),
        ):
            llm = make_llm(mode, seed=7)
            attempts = 0
            failed = 0
            for res in ec2_docs.resources:
                try:
                    result = synthesize_with_reprompt(
                        llm, res, max_attempts=max_attempts
                    )
                    attempts += result.attempts
                except SpecSyntaxError:
                    failed += 1
                    attempts += max_attempts
            label = mode if max_attempts > 1 else "single_attempt"
            outcomes[label] = (attempts, failed)
        return outcomes

    outcomes = benchmark(measure)
    print("\nAblation — structured generation (28 EC2 resources)")
    for label, (attempts, failed) in outcomes.items():
        print(f"  {label:16} llm_attempts={attempts:3} "
              f"unparseable_resources={failed}")
    constrained_attempts, constrained_failed = outcomes["constrained"]
    reprompt_attempts, reprompt_failed = outcomes["reprompt"]
    single_attempts, single_failed = outcomes["single_attempt"]
    assert constrained_attempts == 28 and constrained_failed == 0
    assert reprompt_attempts > 28 and reprompt_failed == 0
    assert single_failed > 0


def test_ablation_consistency_checks(benchmark, ec2_docs):
    """Without checks, constrained-generation faults survive into the
    executable spec; with checks, targeted correction removes them."""

    def measure():
        with_checks = run_extraction("ec2", mode="constrained", seed=7,
                                     service_doc=ec2_docs)
        without = run_extraction("ec2", mode="constrained", seed=7,
                                 service_doc=ec2_docs,
                                 checks_enabled=False)
        return (
            len(run_checks(with_checks.module, ec2_docs)),
            len(run_checks(without.module, ec2_docs)),
            len(with_checks.initial_violations),
        )

    surviving_with, surviving_without, caught = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print("\nAblation — consistency checks")
    print(f"  violations injected & caught: {caught}")
    print(f"  surviving with checks:    {surviving_with}")
    print(f"  surviving without checks: {surviving_without}")
    assert surviving_with == 0
    assert surviving_without > 0


def test_ablation_alignment_rounds(benchmark, ec2_docs):
    """Divergences remaining after each round of the repair loop."""

    def measure():
        remaining = {}
        for rounds in (0, 1, 2, 3):
            outcome = run_extraction("ec2", mode="constrained", seed=7,
                                     service_doc=ec2_docs)
            if rounds:
                align_module(
                    outcome.module, outcome.notfound_codes, ec2_docs,
                    make_llm("constrained", seed=7),
                    cloud_factory=lambda: make_cloud("ec2"),
                    max_rounds=rounds,
                )
            builder = TraceBuilder(outcome.module)
            traces, __ = builder.build_all()
            from repro.interpreter import Emulator
            emulator = Emulator(outcome.module, outcome.notfound_codes)
            report = diff_traces(make_cloud("ec2"), emulator, traces)
            remaining[rounds] = len(report.divergences)
        return remaining

    remaining = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nAblation — alignment rounds vs remaining divergences")
    for rounds, divergences in remaining.items():
        print(f"  rounds={rounds}  divergences={divergences}")
    assert remaining[0] > 0
    assert remaining[3] == 0
    assert remaining[0] >= remaining[1] >= remaining[2] >= remaining[3]
