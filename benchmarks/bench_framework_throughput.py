"""Performance of the emulator framework itself.

Not a paper figure, but a property a usable emulator must have: mock
API calls must be fast enough for frictionless local test loops.
Measures single-call latency through the full interpreter stack, the
throughput of the alignment differ, and the compiled fast path's
speedup over the tree-walking evaluator (the serve-path optimisation
this repo's perf trajectory is anchored on).
"""

import time

from repro.alignment import diff_traces, TraceBuilder
from repro.cloud import make_cloud
from repro.scenarios import evaluation_traces, run_trace


def test_invoke_latency(benchmark, learned_builds, bench_metrics):
    emulator = learned_builds["ec2"].make_backend()
    vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
    params = {"VpcId": vpc.data["id"]}

    result = benchmark(emulator.invoke, "DescribeVpcs", params)
    assert result.success
    bench_metrics.observe("invoke_latency_s", benchmark, api="DescribeVpcs")


def _calls_per_second(emulator, api: str, params: dict,
                      calls: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` throughput for one API through a backend."""
    best = 0.0
    for __ in range(repeats):
        start = time.perf_counter()
        for __ in range(calls):
            emulator.invoke(api, params)
        best = max(best, calls / (time.perf_counter() - start))
    return best


def test_compiled_vs_interpreted_throughput(learned_builds, bench_metrics):
    """The compiled serve path must beat the evaluator by >= 3x.

    Measures steady-state DescribeVpcs throughput (a read-only call
    dominated by interpretation cost, not transaction commits) through
    the same learned module, once over compiled closures and once over
    the tree-walking reference evaluator.
    """
    build = learned_builds["ec2"]
    calls = 6000
    rates = {}
    for label, compiled in (("interpreted", False), ("compiled", True)):
        emulator = build.make_backend(compile=compiled)
        vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        assert vpc.success
        rates[label] = _calls_per_second(
            emulator, "DescribeVpcs", {"VpcId": vpc.data["id"]}, calls
        )
    speedup = rates["compiled"] / rates["interpreted"]
    print(f"\nDescribeVpcs: interpreted {rates['interpreted']:,.0f}/s, "
          f"compiled {rates['compiled']:,.0f}/s ({speedup:.2f}x)")
    bench_metrics.gauge("interpreted_calls_per_s", rates["interpreted"])
    bench_metrics.gauge("compiled_calls_per_s", rates["compiled"])
    bench_metrics.gauge("compiled_speedup", round(speedup, 3))
    # The CI smoke job fails on any regression below parity; the local
    # bar is the 3x the serve-path compiler was built to clear.
    assert speedup >= 3.0, f"compiled path only {speedup:.2f}x"


def test_create_heavy_workload(benchmark, learned_builds,
                               bench_metrics):
    """A create-modify-delete churn loop through the SM interpreter."""
    emulator = learned_builds["ec2"].make_backend()

    def churn():
        vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        emulator.invoke(
            "ModifySubnetAttribute",
            {"SubnetId": subnet.data["id"], "MapPublicIpOnLaunch": True},
        )
        emulator.invoke("DeleteSubnet", {"SubnetId": subnet.data["id"]})
        emulator.invoke("DeleteVpc", {"VpcId": vpc.data["id"]})
        return len(emulator.registry)

    leftover = benchmark(churn)
    assert leftover == 0
    bench_metrics.observe("churn_loop_s", benchmark)


def test_trace_replay_throughput(benchmark, learned_builds,
                                 bench_metrics):
    emulator = learned_builds["ec2"].make_backend()
    trace = next(
        t for t in evaluation_traces() if t.name == "provision_network"
    )

    run = benchmark(run_trace, emulator, trace)
    assert all(r.response.success for r in run.results)
    bench_metrics.observe("trace_replay_s", benchmark,
                          trace="provision_network")


def test_differential_pass_throughput(benchmark, learned_builds,
                                      bench_metrics):
    """One full symbolic-trace differential pass over the EC2 module."""
    module = learned_builds["ec2"].module
    notfound = learned_builds["ec2"].extraction.notfound_codes

    def one_pass():
        from repro.interpreter import Emulator

        builder = TraceBuilder(module)
        traces, __ = builder.build_all(probes=False)
        report = diff_traces(
            make_cloud("ec2"), Emulator(module, notfound), traces
        )
        return report

    report = benchmark.pedantic(one_pass, rounds=1, iterations=1)
    print(f"\nDifferential pass: {report.compared} traces, "
          f"{len(report.divergences)} divergence(s)")
    assert report.compared > 200
    bench_metrics.observe("differential_pass_s", benchmark)
    bench_metrics.gauge("differential_pass_traces", report.compared)
