"""Performance of the emulator framework itself.

Not a paper figure, but a property a usable emulator must have: mock
API calls must be fast enough for frictionless local test loops.
Measures single-call latency through the full interpreter stack and
the throughput of the alignment differ.
"""

from repro.alignment import diff_traces, TraceBuilder
from repro.cloud import make_cloud
from repro.scenarios import evaluation_traces, run_trace


def test_invoke_latency(benchmark, learned_builds, bench_metrics):
    emulator = learned_builds["ec2"].make_backend()
    vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
    params = {"VpcId": vpc.data["id"]}

    result = benchmark(emulator.invoke, "DescribeVpcs", params)
    assert result.success
    bench_metrics.observe("invoke_latency_s", benchmark, api="DescribeVpcs")


def test_create_heavy_workload(benchmark, learned_builds,
                               bench_metrics):
    """A create-modify-delete churn loop through the SM interpreter."""
    emulator = learned_builds["ec2"].make_backend()

    def churn():
        vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
        subnet = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
        )
        emulator.invoke(
            "ModifySubnetAttribute",
            {"SubnetId": subnet.data["id"], "MapPublicIpOnLaunch": True},
        )
        emulator.invoke("DeleteSubnet", {"SubnetId": subnet.data["id"]})
        emulator.invoke("DeleteVpc", {"VpcId": vpc.data["id"]})
        return len(emulator.registry)

    leftover = benchmark(churn)
    assert leftover == 0
    bench_metrics.observe("churn_loop_s", benchmark)


def test_trace_replay_throughput(benchmark, learned_builds,
                                 bench_metrics):
    emulator = learned_builds["ec2"].make_backend()
    trace = next(
        t for t in evaluation_traces() if t.name == "provision_network"
    )

    run = benchmark(run_trace, emulator, trace)
    assert all(r.response.success for r in run.results)
    bench_metrics.observe("trace_replay_s", benchmark,
                          trace="provision_network")


def test_differential_pass_throughput(benchmark, learned_builds,
                                      bench_metrics):
    """One full symbolic-trace differential pass over the EC2 module."""
    module = learned_builds["ec2"].module
    notfound = learned_builds["ec2"].extraction.notfound_codes

    def one_pass():
        from repro.interpreter import Emulator

        builder = TraceBuilder(module)
        traces, __ = builder.build_all(probes=False)
        report = diff_traces(
            make_cloud("ec2"), Emulator(module, notfound), traces
        )
        return report

    report = benchmark.pedantic(one_pass, rounds=1, iterations=1)
    print(f"\nDifferential pass: {report.compared} traces, "
          f"{len(report.divergences)} divergence(s)")
    assert report.compared > 200
    bench_metrics.observe("differential_pass_s", benchmark)
    bench_metrics.gauge("differential_pass_traces", report.compared)
