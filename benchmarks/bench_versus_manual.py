"""§5 "Versus manual engineering": coverage of learned vs handcrafted.

Paper: Moto covers 11% of Network Firewall APIs (LocalStack none); the
learned prototype captures all 45 through automated generation, and
all EC2 and DynamoDB calls (of the modeled resources — see
EXPERIMENTS.md for the interpretation).
"""

from repro.analysis import backend_coverage, catalog_coverage, moto_coverage
from repro.baselines import build_moto_like


def test_versus_manual_coverage(benchmark, learned_builds):
    def compute():
        table = []
        for service in ("ec2", "dynamodb", "network_firewall"):
            learned = learned_builds[service].make_backend()
            table.append((
                service,
                moto_coverage(service),
                catalog_coverage(service, learned),
            ))
        return table

    table = benchmark(compute)
    print("\n§5 versus manual engineering — API coverage")
    print(f"{'service':20} {'handcrafted':>16} {'learned':>16}")
    for service, moto_row, learned_row in table:
        moto_text = f"{moto_row.emulated}/{moto_row.total}"
        learned_text = f"{learned_row.emulated}/{learned_row.total}"
        print(f"{service:20} {moto_text:>16} {learned_text:>16}")

    by_service = {service: (m, l) for service, m, l in table}
    nfw_moto, nfw_learned = by_service["network_firewall"]
    assert nfw_moto.emulated == 5 and nfw_moto.total == 45
    assert nfw_learned.emulated == 45 and nfw_learned.total == 45
    # All documented EC2 and DynamoDB calls are captured.
    for service in ("ec2", "dynamodb"):
        __, learned_row = by_service[service]
        assert learned_row.emulated == learned_row.total


def test_learned_nfw_covers_full_inventory(benchmark, learned_builds):
    """Against the *full* 45-API inventory, not just the catalog."""
    emulator = learned_builds["network_firewall"].make_backend()
    row = benchmark(backend_coverage, "network_firewall", emulator)
    assert (row.emulated, row.total) == (45, 45)


def test_moto_misses_delete_firewall(benchmark):
    """The paper's concrete example: CreateFirewall() but not
    DeleteFirewall()."""

    def check():
        moto = build_moto_like("network_firewall")
        return (moto.supports("CreateFirewall"),
                moto.supports("DeleteFirewall"))

    has_create, has_delete = benchmark(check)
    assert has_create and not has_delete
