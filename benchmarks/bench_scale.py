"""Scale behaviour of the emulator framework.

A gym for agents (§4.4) and a CI test backend both imply thousands of
live mock resources; the framework must stay fast as the registry
grows.  Measures bulk creation, lookups at depth, the cost of a
dependency check scanning a large child list, and the end-to-end
build-path speedup from wave-parallel extraction + prompt caching.
"""

import json
import os
import time
from pathlib import Path

from repro.core import build_learned_emulator
from repro.llm import PromptCache

FLEET = 500


def _best_of(fn, repeats=2):
    """(elapsed, result) of the fastest of ``repeats`` runs of ``fn``."""
    best = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    return best


def _populated_backend(build):
    emulator = build.make_backend()
    vpc = emulator.invoke("CreateVpc",
                          {"CidrBlock": "10.0.0.0/16"})
    assert vpc.success, vpc.error_message
    vpc_id = vpc.data["id"]
    subnet_ids = []
    for index in range(FLEET):
        third = index // 4
        offset = (index % 4) * 64
        subnet = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc_id,
             "CidrBlock": f"10.0.{third}.{offset}/26"},
        )
        assert subnet.success, subnet.error_message
        subnet_ids.append(subnet.data["id"])
    return emulator, vpc_id, subnet_ids


def test_bulk_creation(benchmark, learned_builds, bench_metrics):
    build = learned_builds["ec2"]

    def create_fleet():
        emulator, __, subnet_ids = _populated_backend(build)
        return len(emulator.registry), subnet_ids

    (count, subnet_ids) = benchmark.pedantic(create_fleet, rounds=1,
                                             iterations=1)
    assert count == FLEET + 1
    assert len(set(subnet_ids)) == FLEET
    bench_metrics.observe("bulk_creation_s", benchmark, fleet=FLEET)


def test_lookup_in_large_registry(benchmark, learned_builds,
                                  bench_metrics):
    build = learned_builds["ec2"]
    emulator, __, subnet_ids = _populated_backend(build)
    target = subnet_ids[FLEET // 2]

    response = benchmark(emulator.invoke, "DescribeSubnets",
                         {"SubnetId": target})
    assert response.success
    bench_metrics.observe("lookup_latency_s", benchmark, fleet=FLEET)


def test_dependency_check_scans_large_list(benchmark, learned_builds,
                                           bench_metrics):
    """DeleteVpc must reject while 500 subnet CIDRs are tracked —
    and answer quickly."""
    build = learned_builds["ec2"]
    emulator, vpc_id, __ = _populated_backend(build)

    response = benchmark(emulator.invoke, "DeleteVpc", {"VpcId": vpc_id})
    assert response.error_code == "DependencyViolation"
    bench_metrics.observe("dependency_check_s", benchmark, fleet=FLEET)


def test_overlap_check_against_many_siblings(benchmark, learned_builds,
                                             bench_metrics):
    """Subnet creation checks its CIDR against every tracked sibling."""
    build = learned_builds["ec2"]
    emulator, vpc_id, __ = _populated_backend(build)

    def conflicting_create():
        return emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc_id, "CidrBlock": "10.0.0.0/24"},
        )

    response = benchmark(conflicting_create)
    assert response.error_code == "InvalidSubnet.Conflict"
    bench_metrics.observe("overlap_check_s", benchmark, fleet=FLEET)


def test_parallel_warm_build_speedup(bench_metrics):
    """End-to-end build: ``--parallel 8`` + warm prompt cache >= 2x.

    The simulated LLM is instant by default, which hides exactly the
    cost the build path is parallel *for*: real model calls block on
    the network.  This bench switches on the client's latency model
    (a deliberately conservative 10 ms per generation — two orders of
    magnitude under real decoding times) and compares the legacy
    configuration (sequential, cold cache, tree-walking evaluator)
    against the optimised one (wave-parallel extraction, sharded
    alignment, warm content-addressed cache, compiled serve path).
    """
    latency = 0.01

    t_legacy, legacy = _best_of(lambda: build_learned_emulator(
        "ec2", compile=False, llm_latency=latency))
    cache = PromptCache()
    build_learned_emulator("ec2", parallel=8, llm_cache=cache,
                           llm_latency=latency)  # warm the cache
    t_fast, fast = _best_of(lambda: build_learned_emulator(
        "ec2", parallel=8, llm_cache=cache, llm_latency=latency))

    # Same learned artifact either way: the perf path must not change
    # what is built.
    assert fast.module.machines.keys() == legacy.module.machines.keys()
    speedup = t_legacy / t_fast
    print(f"\nBuild: legacy {t_legacy:.3f}s, parallel+warm {t_fast:.3f}s "
          f"({speedup:.2f}x)")
    bench_metrics.gauge("build_legacy_s", round(t_legacy, 4))
    bench_metrics.gauge("build_parallel_warm_s", round(t_fast, 4))
    bench_metrics.gauge("build_speedup", round(speedup, 3))
    assert speedup >= 2.0, f"build path only {speedup:.2f}x"


def _warm_build_baseline() -> float:
    """The recorded ``build_parallel_warm_s`` gauge, if present."""
    target = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    try:
        baselines = json.loads(
            (target / "BENCH_baseline.json").read_text()
        )
        return float(baselines["scale"]["build_parallel_warm_s"]["value"])
    except (OSError, ValueError, KeyError, TypeError):
        return 0.0


def test_journaled_build_overhead(bench_metrics, tmp_path):
    """Crash-safe journaling must cost <10% over the warm build.

    The journal fsyncs one CRC-framed record per completed resource,
    correction, and alignment round; that durability is only cheap
    enough to leave on by default if the journaled build stays within
    110% of the parallel + warm-cache build it protects
    (``build_parallel_warm_s`` in ``BENCH_baseline.json``; same-process
    measurement is the fallback reference when no baseline is
    recorded yet).
    """
    latency = 0.01
    cache = PromptCache()
    build_learned_emulator("ec2", parallel=8, llm_cache=cache,
                           llm_latency=latency)  # warm the cache
    t_plain, __ = _best_of(lambda: build_learned_emulator(
        "ec2", parallel=8, llm_cache=cache, llm_latency=latency),
        repeats=5)
    counter = iter(range(100))

    def journaled():
        return build_learned_emulator(
            "ec2", parallel=8, llm_cache=cache, llm_latency=latency,
            journal=tmp_path / f"journal-{next(counter)}",
        )

    t_journaled, build = _best_of(journaled, repeats=5)
    assert build.durability.journal_appends > 0

    reference = _warm_build_baseline() or t_plain
    overhead = t_journaled / reference - 1.0
    print(f"\nBuild: plain {t_plain:.3f}s, journaled {t_journaled:.3f}s "
          f"(+{overhead * 100:.1f}% vs {reference:.3f}s reference)")
    bench_metrics.gauge("build_journaled_s", round(t_journaled, 4))
    bench_metrics.gauge("journal_overhead_pct", round(overhead * 100, 2))
    assert overhead < 0.10, (
        f"journaling costs {overhead * 100:.1f}% over the warm-build "
        f"reference ({reference:.3f}s)"
    )
