"""Scale behaviour of the emulator framework.

A gym for agents (§4.4) and a CI test backend both imply thousands of
live mock resources; the framework must stay fast as the registry
grows.  Measures bulk creation, lookups at depth, the cost of a
dependency check scanning a large child list, and the end-to-end
build-path speedup from wave-parallel extraction + prompt caching.
"""

import time

from repro.core import build_learned_emulator
from repro.llm import PromptCache

FLEET = 500


def _populated_backend(build):
    emulator = build.make_backend()
    vpc = emulator.invoke("CreateVpc",
                          {"CidrBlock": "10.0.0.0/16"})
    assert vpc.success, vpc.error_message
    vpc_id = vpc.data["id"]
    subnet_ids = []
    for index in range(FLEET):
        third = index // 4
        offset = (index % 4) * 64
        subnet = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc_id,
             "CidrBlock": f"10.0.{third}.{offset}/26"},
        )
        assert subnet.success, subnet.error_message
        subnet_ids.append(subnet.data["id"])
    return emulator, vpc_id, subnet_ids


def test_bulk_creation(benchmark, learned_builds, bench_metrics):
    build = learned_builds["ec2"]

    def create_fleet():
        emulator, __, subnet_ids = _populated_backend(build)
        return len(emulator.registry), subnet_ids

    (count, subnet_ids) = benchmark.pedantic(create_fleet, rounds=1,
                                             iterations=1)
    assert count == FLEET + 1
    assert len(set(subnet_ids)) == FLEET
    bench_metrics.observe("bulk_creation_s", benchmark, fleet=FLEET)


def test_lookup_in_large_registry(benchmark, learned_builds,
                                  bench_metrics):
    build = learned_builds["ec2"]
    emulator, __, subnet_ids = _populated_backend(build)
    target = subnet_ids[FLEET // 2]

    response = benchmark(emulator.invoke, "DescribeSubnets",
                         {"SubnetId": target})
    assert response.success
    bench_metrics.observe("lookup_latency_s", benchmark, fleet=FLEET)


def test_dependency_check_scans_large_list(benchmark, learned_builds,
                                           bench_metrics):
    """DeleteVpc must reject while 500 subnet CIDRs are tracked —
    and answer quickly."""
    build = learned_builds["ec2"]
    emulator, vpc_id, __ = _populated_backend(build)

    response = benchmark(emulator.invoke, "DeleteVpc", {"VpcId": vpc_id})
    assert response.error_code == "DependencyViolation"
    bench_metrics.observe("dependency_check_s", benchmark, fleet=FLEET)


def test_overlap_check_against_many_siblings(benchmark, learned_builds,
                                             bench_metrics):
    """Subnet creation checks its CIDR against every tracked sibling."""
    build = learned_builds["ec2"]
    emulator, vpc_id, __ = _populated_backend(build)

    def conflicting_create():
        return emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc_id, "CidrBlock": "10.0.0.0/24"},
        )

    response = benchmark(conflicting_create)
    assert response.error_code == "InvalidSubnet.Conflict"
    bench_metrics.observe("overlap_check_s", benchmark, fleet=FLEET)


def test_parallel_warm_build_speedup(bench_metrics):
    """End-to-end build: ``--parallel 8`` + warm prompt cache >= 2x.

    The simulated LLM is instant by default, which hides exactly the
    cost the build path is parallel *for*: real model calls block on
    the network.  This bench switches on the client's latency model
    (a deliberately conservative 10 ms per generation — two orders of
    magnitude under real decoding times) and compares the legacy
    configuration (sequential, cold cache, tree-walking evaluator)
    against the optimised one (wave-parallel extraction, sharded
    alignment, warm content-addressed cache, compiled serve path).
    """
    latency = 0.01

    def best_of(fn, repeats=2):
        best = None
        for __ in range(repeats):
            start = time.perf_counter()
            build = fn()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, build)
        return best

    t_legacy, legacy = best_of(lambda: build_learned_emulator(
        "ec2", compile=False, llm_latency=latency))
    cache = PromptCache()
    build_learned_emulator("ec2", parallel=8, llm_cache=cache,
                           llm_latency=latency)  # warm the cache
    t_fast, fast = best_of(lambda: build_learned_emulator(
        "ec2", parallel=8, llm_cache=cache, llm_latency=latency))

    # Same learned artifact either way: the perf path must not change
    # what is built.
    assert fast.module.machines.keys() == legacy.module.machines.keys()
    speedup = t_legacy / t_fast
    print(f"\nBuild: legacy {t_legacy:.3f}s, parallel+warm {t_fast:.3f}s "
          f"({speedup:.2f}x)")
    bench_metrics.gauge("build_legacy_s", round(t_legacy, 4))
    bench_metrics.gauge("build_parallel_warm_s", round(t_fast, 4))
    bench_metrics.gauge("build_speedup", round(speedup, 3))
    assert speedup >= 2.0, f"build path only {speedup:.2f}x"
