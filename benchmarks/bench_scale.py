"""Scale behaviour of the emulator framework.

A gym for agents (§4.4) and a CI test backend both imply thousands of
live mock resources; the framework must stay fast as the registry
grows.  Measures bulk creation, lookups at depth, and the cost of a
dependency check scanning a large child list.
"""

FLEET = 500


def _populated_backend(build):
    emulator = build.make_backend()
    vpc = emulator.invoke("CreateVpc",
                          {"CidrBlock": "10.0.0.0/16"})
    assert vpc.success, vpc.error_message
    vpc_id = vpc.data["id"]
    subnet_ids = []
    for index in range(FLEET):
        third = index // 4
        offset = (index % 4) * 64
        subnet = emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc_id,
             "CidrBlock": f"10.0.{third}.{offset}/26"},
        )
        assert subnet.success, subnet.error_message
        subnet_ids.append(subnet.data["id"])
    return emulator, vpc_id, subnet_ids


def test_bulk_creation(benchmark, learned_builds, bench_metrics):
    build = learned_builds["ec2"]

    def create_fleet():
        emulator, __, subnet_ids = _populated_backend(build)
        return len(emulator.registry), subnet_ids

    (count, subnet_ids) = benchmark.pedantic(create_fleet, rounds=1,
                                             iterations=1)
    assert count == FLEET + 1
    assert len(set(subnet_ids)) == FLEET
    bench_metrics.observe("bulk_creation_s", benchmark, fleet=FLEET)


def test_lookup_in_large_registry(benchmark, learned_builds,
                                  bench_metrics):
    build = learned_builds["ec2"]
    emulator, __, subnet_ids = _populated_backend(build)
    target = subnet_ids[FLEET // 2]

    response = benchmark(emulator.invoke, "DescribeSubnets",
                         {"SubnetId": target})
    assert response.success
    bench_metrics.observe("lookup_latency_s", benchmark, fleet=FLEET)


def test_dependency_check_scans_large_list(benchmark, learned_builds,
                                           bench_metrics):
    """DeleteVpc must reject while 500 subnet CIDRs are tracked —
    and answer quickly."""
    build = learned_builds["ec2"]
    emulator, vpc_id, __ = _populated_backend(build)

    response = benchmark(emulator.invoke, "DeleteVpc", {"VpcId": vpc_id})
    assert response.error_code == "DependencyViolation"
    bench_metrics.observe("dependency_check_s", benchmark, fleet=FLEET)


def test_overlap_check_against_many_siblings(benchmark, learned_builds,
                                             bench_metrics):
    """Subnet creation checks its CIDR against every tracked sibling."""
    build = learned_builds["ec2"]
    emulator, vpc_id, __ = _populated_backend(build)

    def conflicting_create():
        return emulator.invoke(
            "CreateSubnet",
            {"VpcId": vpc_id, "CidrBlock": "10.0.0.0/24"},
        )

    response = benchmark(conflicting_create)
    assert response.error_code == "InvalidSubnet.Conflict"
    bench_metrics.observe("overlap_check_s", benchmark, fleet=FLEET)
