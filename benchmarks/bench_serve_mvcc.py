"""Lock-free MVCC serve reads: the scaling proof and its guardrails.

The MVCC refactor's claim has three measurable parts, each pinned
here against the RW-lock fallback measured by
``bench_serve_concurrency.py`` (the committed baseline):

1. **Reads scale without locking.**  The same modeled-service-latency
   methodology as the lock bench — a real ``time.sleep`` per request,
   released-GIL I/O stand-in — but through a wrapper that forwards the
   versioned-read surface, so the concurrency layer pins published
   registry versions instead of taking the shared lock.  The proof of
   "zero locking" is a counter, not an adjective: the tenant's RW lock
   must record **0** read acquisitions over the whole run.

2. **Reads do not stall behind writes.**  Under the RW lock, one
   writer holding the exclusive side stalls every reader for its full
   modeled service time; under MVCC, readers keep dispatching against
   the last published version.  The bench runs the same read load
   under continuous write churn in both modes and requires MVCC to
   come out strictly ahead — this is the structural gap, robust to
   scheduler noise in a way raw scaling ratios are not.

3. **Writes pay almost nothing for it.**  Publishing a version after
   each commit is a shallow dict copy; steady-state write throughput
   (no modeled latency — raw dispatch, where the publish cost would
   actually show) must stay within 10% of the RW-lock fallback's.

A clean and a hostile-chaos 8-worker soak close the file: serial
replay linearizability and snapshot byte-identity must hold while the
read path stays lock-free.
"""

import os
import threading
import time

from repro.resilience.chaos import ChaosEngine, ChaosProxy, HOSTILE_PROFILE
from repro.serve import ConcurrentEmulator, FrontDoor, LoadGenerator

#: Modeled per-request service time (seconds) — same figure as the
#: RW-lock bench so the two JSONs are directly comparable.
SERVICE_LATENCY_S = 0.002


class _ModeledMvccEmulator:
    """A modeled-latency emulator that keeps the versioned-read surface.

    The lock bench's wrapper deliberately hides ``invoke_at`` so the
    concurrency layer falls back to the RW lock; this one forwards the
    whole MVCC surface, so the same modeled workload runs lock-free.
    """

    def __init__(self, inner, latency: float = SERVICE_LATENCY_S):
        self.inner = inner
        self.latency = latency
        self.mvcc = inner.mvcc

    def api_names(self):
        return self.inner.api_names()

    def supports(self, api):
        return self.inner.supports(api)

    def read_only(self, api):
        return self.inner.read_only(api)

    def reset(self):
        self.inner.reset()

    def snapshot(self):
        return self.inner.snapshot()

    def restore(self, snapshot):
        self.inner.restore(snapshot)

    def recover(self, snapshot, records=None):
        return self.inner.recover(snapshot, records)

    @property
    def registry(self):
        return self.inner.registry

    @property
    def wal_seq(self):
        return self.inner.wal_seq

    def publish_version(self):
        return self.inner.publish_version()

    def invoke(self, api, params=None):
        time.sleep(self.latency)
        return self.inner.invoke(api, params)

    def invoke_at(self, version, api, params=None):
        time.sleep(self.latency)
        return self.inner.invoke_at(version, api, params)

    def reference_invoke(self, api, params=None, at=None):
        return self.inner.reference_invoke(api, params, at=at)


def _read_throughput(front: FrontDoor, vpc: str, workers: int,
                     reads_per_worker: int) -> float:
    """Wall-clock read throughput at a given worker count."""
    start_line = threading.Barrier(workers + 1)
    failures: list[str] = []

    def reader():
        start_line.wait()
        for __ in range(reads_per_worker):
            response = front.invoke(
                "DescribeVpcs", {"VpcId": vpc}, api_key="bench"
            )
            if not response.success:
                failures.append(response.error_code)

    threads = [threading.Thread(target=reader) for __ in range(workers)]
    for thread in threads:
        thread.start()
    start_line.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not failures, failures[:3]
    return (workers * reads_per_worker) / elapsed


def _make_front(build, mvcc: bool) -> FrontDoor:
    if mvcc:
        factory = lambda: _ModeledMvccEmulator(build.make_backend())  # noqa: E731
    else:
        # Same modeled wrapper shape, but without the MVCC surface —
        # the concurrency layer auto-selects the RW-lock fallback.
        factory = lambda: _LockedModeled(build.make_backend())  # noqa: E731
    return FrontDoor(
        build.module, factory,
        rate=1e9, burst=1e9, max_concurrent=64, queue_depth=256,
    )


class _LockedModeled:
    """The RW-lock twin: modeled latency, no versioned-read surface."""

    def __init__(self, inner, latency: float = SERVICE_LATENCY_S):
        self.inner = inner
        self.latency = latency

    def api_names(self):
        return self.inner.api_names()

    def supports(self, api):
        return self.inner.supports(api)

    def read_only(self, api):
        return self.inner.read_only(api)

    def reset(self):
        self.inner.reset()

    def snapshot(self):
        return self.inner.snapshot()

    @property
    def registry(self):
        return self.inner.registry

    def invoke(self, api, params=None):
        time.sleep(self.latency)
        return self.inner.invoke(api, params)


def test_mvcc_read_path_scales_lock_free(learned_builds, bench_metrics):
    """8 pinned readers overlap fully — and the lock counter stays 0."""
    build = learned_builds["ec2"]
    front = _make_front(build, mvcc=True)
    created = front.invoke(
        "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, api_key="bench"
    )
    assert created.success
    vpc = created.data["id"]

    tenant = front.router.get("bench")
    assert tenant.emulator.mvcc, "expected the lock-free MVCC path"

    backend = tenant.emulator.inner
    unlocked_calls = 80
    start = time.perf_counter()
    for __ in range(unlocked_calls):
        assert backend.invoke("DescribeVpcs", {"VpcId": vpc}).success
    unlocked = unlocked_calls / (time.perf_counter() - start)

    single = _read_throughput(front, vpc, workers=1, reads_per_worker=80)
    eight = _read_throughput(front, vpc, workers=8, reads_per_worker=40)
    speedup = eight / single
    honest = eight / unlocked

    stats = tenant.emulator.version_stats()
    print(f"\nmvcc read path: unlocked {unlocked:,.0f}/s, "
          f"1 worker {single:,.0f}/s, 8 workers {eight:,.0f}/s "
          f"({speedup:.2f}x, {honest:.2f}x vs unlocked), "
          f"{stats['pinned_reads']} pinned reads, "
          f"{stats['read_lock_acquisitions']} read locks")
    bench_metrics.gauge("read_throughput_unlocked_1_thread_per_s",
                        round(unlocked, 1))
    bench_metrics.gauge("read_throughput_1_worker_per_s", round(single, 1))
    bench_metrics.gauge("read_throughput_8_workers_per_s", round(eight, 1))
    bench_metrics.gauge("read_scaling_8v1", round(speedup, 3))
    bench_metrics.gauge("read_scaling_8v1_unlocked", round(honest, 3))
    bench_metrics.gauge("read_lock_acquisitions",
                        stats["read_lock_acquisitions"])
    bench_metrics.gauge("pinned_reads", stats["pinned_reads"])
    bench_metrics.gauge("workers", 8)
    bench_metrics.gauge("cpu_count", os.cpu_count() or 1)
    # The zero-lock proof: every read pinned a version instead.
    assert stats["read_lock_acquisitions"] == 0
    assert stats["pinned_reads"] >= 8 * 40
    assert speedup >= 2.0, f"mvcc read path scaled only {speedup:.2f}x"


def _churned_read_throughput(front: FrontDoor, vpc: str,
                             readers: int, reads_per_worker: int) -> float:
    """Read throughput while one paced writer mutates continuously.

    The writer pauses *outside* the lock between operations and
    deletes what it creates, for two reasons.  A tight create-only
    loop through the writer-preferring RW lock starves readers
    outright (the writer re-acquires before any queued reader passes
    the gate — the lock's documented bias, which MVCC is precisely
    the answer to), and an ever-growing registry makes per-op cost
    drift upward mid-measurement.  Paced steady-state churn keeps the
    comparison about the structural stall: RW-lock readers lose the
    writer's full in-lock service time every cycle, MVCC readers
    lose nothing.
    """
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            created = front.invoke(
                "CreateSubnet",
                {"VpcId": vpc, "CidrBlock": "10.0.1.0/24"},
                api_key="bench",
            )
            time.sleep(SERVICE_LATENCY_S)  # pause outside the lock
            if created.success:
                front.invoke(
                    "DeleteSubnet",
                    {"SubnetId": created.data["id"]},
                    api_key="bench",
                )
                time.sleep(SERVICE_LATENCY_S)

    churn = threading.Thread(target=writer, daemon=True)
    churn.start()
    try:
        return _read_throughput(front, vpc, readers, reads_per_worker)
    finally:
        stop.set()
        churn.join()


def test_mvcc_reads_dont_stall_behind_writes(learned_builds,
                                             bench_metrics):
    """Under continuous write churn, MVCC reads must beat the RW lock.

    This is the structural gap: the writer holds the exclusive lock
    for its full modeled service time, stalling every RW-lock reader,
    while MVCC readers keep serving the last published version.
    """
    build = learned_builds["ec2"]
    rates = {}
    for mode, mvcc in (("mvcc", True), ("rwlock", False)):
        front = _make_front(build, mvcc=mvcc)
        created = front.invoke(
            "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, api_key="bench"
        )
        assert created.success
        rates[mode] = _churned_read_throughput(
            front, created.data["id"], readers=8, reads_per_worker=30
        )
        if mvcc:
            stats = front.router.get("bench").emulator.version_stats()
            assert stats["read_lock_acquisitions"] == 0
            bench_metrics.gauge("churn_publishes", stats["publishes"])
            bench_metrics.gauge("churn_reclaimed", stats["reclaimed"])
            bench_metrics.gauge("churn_versions_live",
                                stats["versions_live"])
    advantage = rates["mvcc"] / rates["rwlock"]
    print(f"\nreads under write churn: mvcc {rates['mvcc']:,.0f}/s vs "
          f"rwlock {rates['rwlock']:,.0f}/s ({advantage:.2f}x)")
    bench_metrics.gauge("churned_read_mvcc_per_s",
                        round(rates["mvcc"], 1))
    bench_metrics.gauge("churned_read_rwlock_per_s",
                        round(rates["rwlock"], 1))
    bench_metrics.gauge("churned_read_advantage", round(advantage, 3))
    assert advantage > 1.0, (
        f"MVCC reads under churn only {advantage:.2f}x the RW lock"
    )


def test_write_path_within_10pct_of_rwlock(learned_builds, bench_metrics):
    """Publish-per-commit must not tax writes beyond 10%.

    No modeled latency here: raw single-thread write dispatch through
    the concurrency layer, where the version publish (a shallow dict
    copy of the registry) would actually show up.  Steady-state: one
    create + one delete per iteration, so the registry — and thus the
    publish cost — stays constant size.
    """
    build = learned_builds["ec2"]
    iterations = 400

    def write_rate(mvcc: bool) -> float:
        emulator = ConcurrentEmulator(build.make_backend(mvcc=mvcc))
        assert emulator.mvcc is mvcc
        best = 0.0
        for __ in range(3):
            emulator.reset()
            start = time.perf_counter()
            for index in range(iterations):
                created = emulator.invoke(
                    "CreateVpc", {"CidrBlock": "10.0.0.0/16"}
                )
                assert created.success
                emulator.invoke(
                    "DeleteVpc", {"VpcId": created.data["id"]}
                )
            best = max(
                best, 2 * iterations / (time.perf_counter() - start)
            )
        return best

    locked = write_rate(False)
    versioned = write_rate(True)
    ratio = versioned / locked
    print(f"\nwrite path: rwlock {locked:,.0f}/s, "
          f"mvcc {versioned:,.0f}/s ({ratio:.3f}x)")
    bench_metrics.gauge("write_rwlock_per_s", round(locked, 1))
    bench_metrics.gauge("write_mvcc_per_s", round(versioned, 1))
    bench_metrics.gauge("write_throughput_ratio", round(ratio, 3))
    assert ratio >= 0.90, (
        f"MVCC write path at {ratio:.3f}x of the RW-lock baseline"
    )


def test_mvcc_soaks_stay_linearizable(learned_builds, bench_metrics):
    """Clean + hostile 8-worker soaks: serial replay byte-identity and
    zero read-lock acquisitions, with chaos outside the version chain."""
    build = learned_builds["ec2"]
    for profile, wrap, seed in (
        ("clean", None, 51),
        ("hostile",
         (lambda backend: ChaosProxy(
             backend, ChaosEngine(HOSTILE_PROFILE, seed=53))),
         52),
    ):
        front = FrontDoor(
            build.module, build.make_backend, wrap=wrap,
            rate=1e9, burst=1e9, max_concurrent=64, queue_depth=256,
        )
        generator = LoadGenerator(
            front, seed=seed, workers=8, requests_per_worker=250,
            read_ratio=0.6, tenants=2,
        )
        report = generator.run()
        assert report.linearizable, report.mismatches
        assert report.requests == 2000
        stats = report.mvcc
        assert stats["mvcc_tenants"] == stats["tenants"] > 0
        assert stats["read_lock_acquisitions"] == 0
        assert stats["publishes"] > 0
        print(f"\n{profile} soak: {report.throughput_rps:,.0f} req/s, "
              f"{stats['publishes']} publishes, "
              f"{stats['reclaimed']} reclaimed, linearizable")
        bench_metrics.gauge(f"soak_{profile}_req_per_s",
                            round(report.throughput_rps, 1))
        bench_metrics.gauge(f"soak_{profile}_publishes",
                            stats["publishes"])
        bench_metrics.gauge(f"soak_{profile}_reclaimed",
                            stats["reclaimed"])
        bench_metrics.gauge(f"soak_{profile}_read_lock_acquisitions",
                            stats["read_lock_acquisitions"])
