"""§4.1: symbolic preprocessing beats shoving the whole PDF at the LLM.

"This preprocessing can build resource-specific information, reducing
the amount of context that the LLMs have to process and improving the
generation accuracy."  Measures the prompt context per resource with
and without wrangling: the whole rendered corpus vs the wrangled
per-resource slice the pipeline actually sends.
"""

from repro.docs import build_catalog, render_docs, wrangle
from repro.llm.prompting import build_prompt


def _tokens(text: str) -> int:
    return max(1, len(text) // 4)


def test_context_reduction(benchmark):
    def measure():
        table = {}
        for service in ("ec2", "dynamodb", "network_firewall"):
            catalog = build_catalog(service)
            pages = render_docs(catalog)
            corpus_tokens = sum(_tokens(page.text) for page in pages)
            docs = wrangle(pages, provider=catalog.provider,
                           service=service)
            per_resource = [
                _tokens(build_prompt(res)) for res in docs.resources
            ]
            table[service] = (
                corpus_tokens,
                max(per_resource),
                sum(per_resource) / len(per_resource),
            )
        return table

    table = benchmark(measure)
    print("\n§4.1 — prompt context per resource (tokens)")
    print(f"{'service':20} {'full corpus':>12} {'max/resource':>13} "
          f"{'mean/resource':>14} {'reduction':>10}")
    for service, (corpus, biggest, mean) in table.items():
        print(f"{service:20} {corpus:>12} {biggest:>13} {mean:>14.0f} "
              f"{corpus / mean:>9.0f}x")
        # The per-resource slice must be much smaller than the corpus an
        # unstructured (RAG-free) prompt would need.  The worst case is
        # a service dominated by one resource (DynamoDB's table holds
        # 30 of its 57 APIs), where even the biggest slice still wins.
        assert mean * 5 < corpus
        assert biggest < corpus
