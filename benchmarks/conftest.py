"""Shared fixtures for the benchmark harness.

Expensive artifacts (learned emulators, evaluation setups) are built
once per session; each bench then measures and reports its own
table/figure.  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see the reproduced tables alongside the timings.
"""

import pytest

from repro.core import build_learned_emulator, EvaluationSetup


@pytest.fixture(scope="session")
def learned_builds():
    """Learned emulators (constrained + aligned) for every AWS service."""
    return {
        service: build_learned_emulator(service, mode="constrained", seed=7)
        for service in ("ec2", "network_firewall", "dynamodb")
    }


@pytest.fixture(scope="session")
def evaluation_setup():
    """Backends and clouds for the Fig. 3 accuracy measurement."""
    setup = EvaluationSetup(seed=7)
    setup.prepare()
    return setup
