"""Shared fixtures for the benchmark harness.

Expensive artifacts (learned emulators, evaluation setups) are built
once per session; each bench then measures and reports its own
table/figure.  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see the reproduced tables alongside the timings.

Each module also gets a ``bench_metrics`` recorder backed by the
telemetry :class:`~repro.telemetry.MetricsRegistry`; on teardown its
snapshot (count/min/mean/p50/p95/max per series) lands in
``BENCH_<module>.json`` next to the working directory (override with
``$REPRO_BENCH_DIR``), so CI can archive machine-readable numbers
alongside pytest-benchmark's own output.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core import build_learned_emulator, EvaluationSetup
from repro.telemetry import MetricsRegistry


class BenchRecorder:
    """Folds pytest-benchmark timings into a metrics registry."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def observe(self, name, benchmark, **labels):
        """Record one benchmark's raw per-round timings (seconds)."""
        histogram = self.registry.histogram(name, **labels)
        stats = getattr(benchmark.stats, "stats", None)
        for value in getattr(stats, "data", None) or []:
            histogram.observe(value)
        return histogram

    def gauge(self, name, value, **labels):
        self.registry.gauge(name, **labels).set(value)


@pytest.fixture(scope="module")
def bench_metrics(request):
    """Per-module metrics recorder; writes ``BENCH_<module>.json``."""
    recorder = BenchRecorder(MetricsRegistry())
    yield recorder
    snapshot = recorder.registry.snapshot()
    if not snapshot:
        return
    name = request.module.__name__.removeprefix("bench_")
    target = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


@pytest.fixture(scope="session")
def learned_builds():
    """Learned emulators (constrained + aligned) for every AWS service."""
    return {
        service: build_learned_emulator(service, mode="constrained", seed=7)
        for service in ("ec2", "network_firewall", "dynamodb")
    }


@pytest.fixture(scope="session")
def evaluation_setup():
    """Backends and clouds for the Fig. 3 accuracy measurement."""
    setup = EvaluationSetup(seed=7)
    setup.prepare()
    return setup
