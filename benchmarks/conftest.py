"""Shared fixtures for the benchmark harness.

Expensive artifacts (learned emulators, evaluation setups) are built
once per session; each bench then measures and reports its own
table/figure.  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see the reproduced tables alongside the timings.

Each module also gets a ``bench_metrics`` recorder backed by the
telemetry :class:`~repro.telemetry.MetricsRegistry`; on teardown its
snapshot (count/min/mean/p50/p95/max per series) lands in
``BENCH_<module>.json`` next to the working directory (override with
``$REPRO_BENCH_DIR``), so CI can archive machine-readable numbers
alongside pytest-benchmark's own output.

The perf trajectory is self-recording: the first run of a module also
writes its snapshot into the shared ``BENCH_baseline.json`` (one
section per module, never overwritten), and every later run embeds a
``speedup_vs_previous`` section — previous-snapshot mean over current
mean, per timing series — into the module's ``BENCH_<module>.json``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core import build_learned_emulator, EvaluationSetup
from repro.telemetry import MetricsRegistry


class BenchRecorder:
    """Folds pytest-benchmark timings into a metrics registry."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def observe(self, name, benchmark, **labels):
        """Record one benchmark's raw per-round timings (seconds)."""
        histogram = self.registry.histogram(name, **labels)
        stats = getattr(benchmark.stats, "stats", None)
        for value in getattr(stats, "data", None) or []:
            histogram.observe(value)
        return histogram

    def gauge(self, name, value, **labels):
        self.registry.gauge(name, **labels).set(value)


def _load_json(path: Path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _speedups(previous: dict | None, current: dict) -> dict:
    """Per-series mean speedup of ``current`` over ``previous``."""
    out: dict[str, float] = {}
    for key, record in current.items():
        if record.get("type") != "histogram" or not record.get("mean"):
            continue
        before = (previous or {}).get(key)
        if not isinstance(before, dict) or not before.get("mean"):
            continue
        out[key] = round(before["mean"] / record["mean"], 3)
    return out


@pytest.fixture(scope="module")
def bench_metrics(request):
    """Per-module metrics recorder; writes ``BENCH_<module>.json``."""
    recorder = BenchRecorder(MetricsRegistry())
    yield recorder
    snapshot = recorder.registry.snapshot()
    if not snapshot:
        return
    name = request.module.__name__.removeprefix("bench_")
    target = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"

    previous = _load_json(path)
    speedups = _speedups(previous, snapshot)
    payload = dict(snapshot)
    if speedups:
        payload["speedup_vs_previous"] = speedups
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")

    # A module's first-ever snapshot becomes its permanent baseline;
    # later runs leave the baseline file's section untouched, so the
    # trajectory always has a fixed starting point to compare against.
    baseline_path = target / "BENCH_baseline.json"
    baselines = _load_json(baseline_path) or {}
    if name not in baselines:
        baselines[name] = snapshot
        baseline_path.write_text(
            json.dumps(baselines, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


@pytest.fixture(scope="session")
def learned_builds():
    """Learned emulators (constrained + aligned) for every AWS service."""
    return {
        service: build_learned_emulator(service, mode="constrained", seed=7)
        for service in ("ec2", "network_firewall", "dynamodb")
    }


@pytest.fixture(scope="session")
def evaluation_setup():
    """Backends and clouds for the Fig. 3 accuracy measurement."""
    setup = EvaluationSetup(seed=7)
    setup.prepare()
    return setup
