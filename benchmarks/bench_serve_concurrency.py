"""Concurrent serving throughput: the RW-lock read path must scale.

The serving layer's claim is that read-only traffic (bare describes
and compiled pure-route calls) rides a *shared* lock and therefore
overlaps across worker threads, while writes serialize.  On a
single-core runner, pure-Python CPU work cannot overlap, so the bench
models per-request service latency with a real ``time.sleep`` inside
the backend — the sleep releases the GIL, exactly like the I/O wait it
stands in for, and critically it happens *while the read lock is
held*: if reads were serialized by an exclusive lock, adding workers
would buy nothing.

Acceptance: 8-worker read throughput >= 2x the single-worker baseline,
recorded in ``BENCH_serve_concurrency.json``.

Since the MVCC refactor this file measures the **RW-lock fallback**
(the modeled-latency wrapper exposes no versioned-read surface, so the
concurrency layer auto-selects the lock) — it is the committed
baseline the MVCC bench (``bench_serve_mvcc.py``) must beat.  The JSON
records two scaling columns: ``read_scaling_8v1`` against a
single-worker run *under the same lock* (the historical number) and
``read_scaling_8v1_unlocked`` against an unlocked single-thread pass
over the same backend — the honest denominator, since the lock also
taxes the uncontended case.
"""

import os
import threading
import time

from repro.serve import FrontDoor

#: Modeled per-request service time (seconds).  Stands in for the
#: I/O wait of a real serving stack; sleeps release the GIL so they
#: overlap exactly when the locking allows them to.
SERVICE_LATENCY_S = 0.002


class _ModeledLatencyEmulator:
    """An emulator whose every call takes ``latency`` wall seconds."""

    def __init__(self, inner, latency: float = SERVICE_LATENCY_S):
        self.inner = inner
        self.latency = latency

    def api_names(self):
        return self.inner.api_names()

    def supports(self, api):
        return self.inner.supports(api)

    def read_only(self, api):
        return self.inner.read_only(api)

    def reset(self):
        self.inner.reset()

    def snapshot(self):
        return self.inner.snapshot()

    @property
    def registry(self):
        return self.inner.registry

    def invoke(self, api, params=None):
        time.sleep(self.latency)
        return self.inner.invoke(api, params)


def _read_throughput(front: FrontDoor, vpc: str, workers: int,
                     reads_per_worker: int) -> float:
    """Wall-clock read throughput at a given worker count."""
    start_line = threading.Barrier(workers + 1)
    failures: list[str] = []

    def reader():
        start_line.wait()
        for __ in range(reads_per_worker):
            response = front.invoke(
                "DescribeVpcs", {"VpcId": vpc}, api_key="bench"
            )
            if not response.success:
                failures.append(response.error_code)

    threads = [threading.Thread(target=reader) for __ in range(workers)]
    for thread in threads:
        thread.start()
    start_line.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not failures, failures[:3]
    return (workers * reads_per_worker) / elapsed


def test_read_path_scales_with_workers(learned_builds, bench_metrics):
    """8 concurrent readers must clear >= 2x one reader's throughput."""
    build = learned_builds["ec2"]
    backend = _ModeledLatencyEmulator(build.make_backend())
    front = FrontDoor(
        build.module,
        lambda: backend,
        rate=1e9, burst=1e9, max_concurrent=64, queue_depth=256,
    )
    created = front.invoke(
        "CreateVpc", {"CidrBlock": "10.0.0.0/16"}, api_key="bench"
    )
    assert created.success
    vpc = created.data["id"]

    # Honest denominator: the same modeled backend, one thread, no
    # front door and no lock at all.
    unlocked_calls = 80
    start = time.perf_counter()
    for __ in range(unlocked_calls):
        response = backend.invoke("DescribeVpcs", {"VpcId": vpc})
        assert response.success
    unlocked = unlocked_calls / (time.perf_counter() - start)

    single = _read_throughput(front, vpc, workers=1, reads_per_worker=80)
    eight = _read_throughput(front, vpc, workers=8, reads_per_worker=40)
    speedup = eight / single
    honest = eight / unlocked
    print(f"\nserve read path: unlocked {unlocked:,.0f}/s, "
          f"1 worker {single:,.0f}/s, 8 workers {eight:,.0f}/s "
          f"({speedup:.2f}x locked, {honest:.2f}x vs unlocked)")
    bench_metrics.gauge("read_throughput_unlocked_1_thread_per_s",
                        round(unlocked, 1))
    bench_metrics.gauge("read_throughput_1_worker_per_s", round(single, 1))
    bench_metrics.gauge("read_throughput_8_workers_per_s", round(eight, 1))
    bench_metrics.gauge("read_scaling_8v1", round(speedup, 3))
    bench_metrics.gauge("read_scaling_8v1_unlocked", round(honest, 3))
    bench_metrics.gauge("workers", 8)
    bench_metrics.gauge("cpu_count", os.cpu_count() or 1)
    assert speedup >= 2.0, f"read path scaled only {speedup:.2f}x"


def test_writes_serialize_but_stay_linearizable(learned_builds,
                                                bench_metrics):
    """Mixed 8-worker churn: writes serialize on the exclusive side,
    the admitted log proves nothing tore, and the serving overhead on
    the write path stays bounded."""
    from repro.serve import LoadGenerator

    build = learned_builds["ec2"]
    front = FrontDoor(build.module, build.make_backend,
                      rate=1e9, burst=1e9, max_concurrent=64,
                      queue_depth=256)
    generator = LoadGenerator(
        front, seed=41, workers=8, requests_per_worker=250,
        read_ratio=0.5, tenants=2,
    )
    report = generator.run()
    assert report.linearizable, report.mismatches
    assert report.requests == 2000
    print(f"\nmixed soak: {report.throughput_rps:,.0f} req/s, "
          f"{report.admitted_writes} admitted writes, linearizable")
    bench_metrics.gauge("mixed_soak_req_per_s",
                        round(report.throughput_rps, 1))
    bench_metrics.gauge("mixed_soak_admitted_writes",
                        report.admitted_writes)


def test_frontdoor_overhead_single_thread(learned_builds, bench_metrics):
    """Validation + admission + locking must not dominate a serve call."""
    build = learned_builds["ec2"]
    raw = build.make_backend()
    vpc = raw.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
    raw_params = {"VpcId": vpc.data["id"]}

    front = FrontDoor(build.module, build.make_backend,
                      rate=1e9, burst=1e9)
    created = front.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
    front_params = {"VpcId": created.data["id"]}

    calls = 4000

    def rate_of(invoke, params):
        best = 0.0
        for __ in range(3):
            start = time.perf_counter()
            for __ in range(calls):
                invoke("DescribeVpcs", params)
            best = max(best, calls / (time.perf_counter() - start))
        return best

    raw_rate = rate_of(raw.invoke, raw_params)
    front_rate = rate_of(front.invoke, front_params)
    overhead = raw_rate / front_rate
    print(f"\nDescribeVpcs: raw {raw_rate:,.0f}/s, "
          f"served {front_rate:,.0f}/s ({overhead:.2f}x overhead)")
    bench_metrics.gauge("raw_read_calls_per_s", round(raw_rate, 1))
    bench_metrics.gauge("served_read_calls_per_s", round(front_rate, 1))
    bench_metrics.gauge("serve_overhead_factor", round(overhead, 3))
    # Loose ceiling: the guard stack may cost a few x on a
    # microsecond-scale in-memory call, never an order of magnitude.
    assert overhead < 10.0, f"serve overhead {overhead:.2f}x"
