"""Fig. 4: CDF of SM complexity across services.

Extracts specs for EC2, Network Firewall and DynamoDB and computes the
per-SM complexity distribution (state variables + transitions).
Paper: 28 SMs for EC2, 8 for Network Firewall, 7 for DynamoDB, with
EC2's machines the most complex.
"""

from repro.analysis import complexity_cdf, ComplexityComparison

PAPER_SM_COUNTS = {"ec2": 28, "network_firewall": 8, "dynamodb": 7}


def test_fig4_complexity_cdf(benchmark, learned_builds):
    def compute():
        comparison = ComplexityComparison()
        cdfs = {}
        for service, build in learned_builds.items():
            comparison.add(service, build.module)
            cdfs[service] = complexity_cdf(build.module)
        return comparison, cdfs

    comparison, cdfs = benchmark(compute)

    print("\nFig. 4 — SM complexity per service")
    print(f"{'service':20} {'SMs':>4} {'median':>8} {'mean':>7} "
          f"{'max':>5}")
    summary = comparison.summary()
    for service, stats in summary.items():
        print(f"{service:20} {stats['machines']:>4} {stats['median']:>8} "
              f"{stats['mean']:>7.1f} {stats['max']:>5}")
    for service, cdf in cdfs.items():
        series = " ".join(f"{x}:{y:.2f}" for x, y in cdf[:8])
        print(f"  CDF[{service}]: {series} ...")

    # SM counts exactly as the paper reports.
    for service, count in PAPER_SM_COUNTS.items():
        assert summary[service]["machines"] == count, service
    # Shape: EC2's distribution sits to the right of the others.
    assert summary["ec2"]["median"] > summary["network_firewall"]["median"]
    assert summary["ec2"]["median"] > summary["dynamodb"]["median"]
    assert summary["ec2"]["mean"] > summary["network_firewall"]["mean"]
