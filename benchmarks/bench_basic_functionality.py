"""§5 "Basic functionality": the motivating DevOps program.

Creates a VPC, attaches a subnet, enables MapPublicIpOnLaunch — the
emulator must maintain the required state (vpc_id, subnet_id), process
ModifySubnetAttribute, and produce responses aligned with the cloud.
Also times the end-to-end code synthesis the paper reports taking "a
couple of minutes" with a real LLM.
"""

import time

from repro.alignment import compare_runs
from repro.cloud import make_cloud
from repro.core import build_learned_emulator
from repro.scenarios import basic_functionality_trace, run_trace


def test_basic_functionality_aligns(benchmark, learned_builds):
    build = learned_builds["ec2"]
    trace = basic_functionality_trace()

    def run():
        emulator_run = run_trace(build.make_backend(), trace)
        cloud_run = run_trace(make_cloud("ec2"), trace)
        return compare_runs(cloud_run, emulator_run), emulator_run

    comparison, emulator_run = benchmark(run)
    print("\n§5 basic functionality — the paper's DevOps program")
    for step in comparison.steps:
        print(f"  {step.api:26} aligned={step.aligned}")
    print(f"  maintained vpc_id={emulator_run.env['vpc']} "
          f"subnet_id={emulator_run.env['subnet']}")
    assert comparison.aligned
    assert emulator_run.env["vpc"]
    assert emulator_run.env["subnet"]


def test_synthesis_wall_clock(benchmark):
    """End-to-end synthesis time (extraction + checks + alignment).

    Not comparable in absolute terms to the paper's LLM-bound "couple
    of minutes" — the simulated LLM answers instantly — but reported so
    the framework's own overhead is visible.
    """

    def build():
        start = time.perf_counter()
        result = build_learned_emulator("ec2", mode="constrained", seed=7)
        elapsed = time.perf_counter() - start
        return result, elapsed

    result, elapsed = benchmark.pedantic(build, rounds=1, iterations=1)
    print(f"\nFull EC2 synthesis (28 SMs, checks, alignment): "
          f"{elapsed:.2f}s wall clock, "
          f"{result.llm.usage.requests} LLM call(s)")
    assert result.alignment is not None and result.alignment.converged
