"""§4.3 ablation: guided symbolic tracing vs random API fuzzing.

"Whereas prior work has found emulator discrepancy using API fuzzing,
randomly fuzzing the entire emulator is inefficient."  Measures
divergences found per API call for both strategies against the
unaligned emulator (whose true divergence set is known: the two
documentation gaps).
"""

from repro.alignment import diff_traces, RandomFuzzer, TraceBuilder
from repro.cloud import make_cloud
from repro.core import build_learned_emulator


def test_guided_vs_fuzzing(benchmark):
    build = build_learned_emulator("ec2", mode="constrained", seed=7,
                                   align=False)

    def measure():
        builder = TraceBuilder(build.module)
        traces, __ = builder.build_all()
        guided_calls = sum(len(t.steps) for t in traces)
        guided = diff_traces(
            make_cloud("ec2"), build.make_backend(), traces
        )
        fuzz = RandomFuzzer(build.module, seed=99).run(
            make_cloud("ec2"), build.make_backend(), budget=2000
        )
        return guided_calls, guided, fuzz

    guided_calls, guided, fuzz = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print("\n§4.3 — guided symbolic tracing vs random fuzzing "
          "(unaligned EC2 emulator; ground truth: 2 divergent APIs)")
    print(f"  {'strategy':10} {'API calls':>10} {'divergent APIs':>15}")
    guided_apis = {d.api for d in guided.divergences}
    fuzz_apis = {d.api for d in fuzz.divergences}
    print(f"  {'guided':10} {guided_calls:>10} {len(guided_apis):>15}")
    print(f"  {'fuzzing':10} {fuzz.calls:>10} {len(fuzz_apis):>15}")
    assert guided_apis == {"StartInstances", "ModifyVpcAttribute"}
    assert len(fuzz_apis) < len(guided_apis)
    assert fuzz.calls > guided_calls
