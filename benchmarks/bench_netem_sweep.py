"""Network emulation cost: transmit rate, cell wall time, sweep scale.

The netem layer's claim is that network weather is *free-ish*: every
RTT, loss draw and partition check is a couple of seeded hashes plus a
virtual-clock advance, so a sweep cell that emulates seconds of WAN
traffic should finish in a fraction of that wall time.  The bench pins
that down with three numbers, recorded in ``BENCH_netem_sweep.json``:

- raw ``NetEm.transmit`` throughput (messages per wall second);
- one hostile sweep cell (5% loss, partitions) end to end, with the
  virtual-seconds-emulated over wall-seconds-spent compression ratio;
- a small multi-cell sweep, to price the full harness per cell.
"""

import time

from repro.netem import (
    FaultTimeline,
    NetEm,
    SweepConfig,
    SweepGrid,
    run_sweep,
    seeded_partitions,
    uniform_topology,
)
from repro.resilience.policy import VirtualClock
from repro.scenarios.geo import (
    noisy_cross_region_replication,
    partition_heal_convergence,
)

REGIONS = ("us-east-1", "us-west-2", "eu-west-1")


def test_transmit_throughput(bench_metrics):
    """A transmit is two seeded hashes and a clock bump — it must be
    cheap enough to charge on every served request."""
    clock = VirtualClock()
    topology = uniform_topology(REGIONS, base_rtt=0.04, loss=0.02)
    timeline = FaultTimeline(seeded_partitions(
        REGIONS, seed=11, horizon=1e9, duration=5.0, period=50.0,
    ))
    netem = NetEm(topology, clock=clock, timeline=timeline, seed=11)
    messages = 20_000
    pairs = [(a, b) for a in REGIONS for b in REGIONS if a != b]
    start = time.perf_counter()
    for index in range(messages):
        src, dst = pairs[index % len(pairs)]
        netem.transmit(src, dst, key=index)
    elapsed = time.perf_counter() - start
    rate = messages / elapsed
    print(f"\nnetem transmit: {rate:,.0f} msg/s wall "
          f"({clock.now():,.0f} virtual seconds emulated)")
    bench_metrics.gauge("transmit_msgs_per_s", round(rate, 1))
    bench_metrics.gauge("transmit_virtual_seconds", round(clock.now(), 1))
    assert netem.stats.delivered > 0
    assert rate > 5_000, f"transmit path too slow: {rate:,.0f}/s"


def test_hostile_cell_wall_time(learned_builds, bench_metrics):
    """One worst-corner sweep cell, timed: emulated WAN seconds must
    come far cheaper than real ones, and the cell must stay
    linearizable."""
    build = learned_builds["ec2"]
    start = time.perf_counter()
    result = noisy_cross_region_replication(
        build, seed=7, loss=0.05, base_rtt=0.08, partition_duration=5.0,
    )
    wall = time.perf_counter() - start
    assert result["ok"], result["load"].get("mismatches")
    virtual = result["net"]["latency_total"]
    ratio = virtual / wall if wall > 0 else 0.0
    print(f"\nhostile cell: {wall:.2f}s wall for {virtual:.2f}s of "
          f"virtual WAN latency ({ratio:.1f}x compression), "
          f"{result['net']['messages']} messages, "
          f"{result['net']['partition_rejects']} partition rejects")
    bench_metrics.gauge("hostile_cell_wall_s", round(wall, 3))
    bench_metrics.gauge("hostile_cell_virtual_s", round(virtual, 3))
    bench_metrics.gauge("hostile_cell_compression", round(ratio, 2))


def test_sweep_per_cell_cost(learned_builds, bench_metrics):
    """A 2x2x2 sweep end to end: the harness's per-cell price."""
    build = learned_builds["ec2"]
    grid = SweepGrid(losses=(0.0, 0.05), rtts=(0.02, 0.08),
                     partition_durations=(0.0, 5.0))
    config = SweepConfig(workers=3, requests_per_worker=20, tenants=2,
                         seed=7)
    start = time.perf_counter()
    payload = run_sweep(build, grid, config)
    wall = time.perf_counter() - start
    per_cell = wall / len(grid)
    print(f"\nsweep: {len(grid)} cells in {wall:.2f}s "
          f"({per_cell:.2f}s/cell), "
          f"all_linearizable={payload['all_linearizable']}")
    bench_metrics.gauge("sweep_cells", len(grid))
    bench_metrics.gauge("sweep_wall_s", round(wall, 3))
    bench_metrics.gauge("sweep_per_cell_s", round(per_cell, 3))
    assert payload["all_linearizable"] is True


def test_convergence_proof_cost(learned_builds, bench_metrics):
    """The partition-then-heal convergence check (full registry diffs
    against every replica) must stay cheap enough for CI."""
    build = learned_builds["ec2"]
    start = time.perf_counter()
    result = partition_heal_convergence(build, seed=7)
    wall = time.perf_counter() - start
    assert result["ok"], result
    print(f"\nconvergence proof: {wall:.2f}s wall, "
          f"{result['replications']} replications")
    bench_metrics.gauge("convergence_wall_s", round(wall, 3))
