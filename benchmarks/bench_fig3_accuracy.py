"""Fig. 3: accuracy of learned emulators across scenarios.

Measures response alignment against the cloud for 4 traces in each of
3 scenarios (provisioning, state updates, edge cases), for the three
variants §5 compares.  Paper: the D2C baseline aligns in only 3 of 12
traces; the full workflow with alignment has no divergence; the
no-alignment variant sits in between.
"""

from repro.scenarios import evaluation_traces

PAPER_D2C_ALIGNED = 3
PAPER_TOTAL = 12


def test_fig3_accuracy(benchmark, evaluation_setup):
    def score_all():
        return {
            variant: evaluation_setup.score(variant)
            for variant in ("learned_aligned", "learned_no_align", "d2c")
        }

    results = benchmark.pedantic(score_all, rounds=1, iterations=1)

    print("\nFig. 3 — trace alignment per scenario "
          "(aligned/total)")
    scenarios = ("provisioning", "state_updates", "edge_cases")
    header = f"{'variant':18}" + "".join(f"{s:>16}" for s in scenarios)
    print(header + f"{'total':>10}")
    for variant, accuracy in results.items():
        cells = ""
        for scenario in scenarios:
            aligned, total = accuracy.per_scenario[scenario]
            cells += f"{aligned}/{total}".rjust(16)
        aligned, total = accuracy.total
        print(f"{variant:18}{cells}{f'{aligned}/{total}':>10}")

    aligned, total = results["d2c"].total
    assert (aligned, total) == (PAPER_D2C_ALIGNED, PAPER_TOTAL)
    full, __ = results["learned_aligned"].total
    assert full == PAPER_TOTAL
    middle, __ = results["learned_no_align"].total
    assert PAPER_D2C_ALIGNED < middle < PAPER_TOTAL


def test_fig3_trace_execution_speed(benchmark, evaluation_setup):
    """Throughput of the trace-alignment measurement itself."""
    traces = [t for t in evaluation_traces() if t.service == "ec2"]

    def run():
        return evaluation_setup.score("learned_aligned", traces)

    accuracy = benchmark(run)
    aligned, total = accuracy.total
    assert aligned == total
