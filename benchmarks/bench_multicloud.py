"""§5 "Multi-cloud": the same workflow replicated on Azure.

Paper: replicating the workflow on Azure achieves comparable accuracy;
the primary additional effort is documentation wrangling (Azure
scatters definitions across per-resource web pages).
"""

from repro.core import run_multicloud_evaluation
from repro.docs import build_catalog, render_docs, wrangle


def test_multicloud_accuracy(benchmark):
    results = benchmark.pedantic(
        run_multicloud_evaluation, kwargs={"seed": 7}, rounds=1,
        iterations=1,
    )
    print("\n§5 multi-cloud — Azure trace alignment")
    for variant, accuracy in results.items():
        aligned, total = accuracy.total
        print(f"  {variant:18} {aligned}/{total}")
    aligned, total = results["learned_aligned"].total
    assert aligned == total == 4
    d2c_aligned, __ = results["d2c"].total
    assert d2c_aligned < aligned


def test_multicloud_gcp_accuracy(benchmark):
    """Our extension along the paper's multi-cloud axis: a third
    provider with a third documentation format (REST discovery)."""
    results = benchmark.pedantic(
        run_multicloud_evaluation,
        kwargs={"seed": 7, "service": "gcp_compute"},
        rounds=1, iterations=1,
    )
    print("\nMulti-cloud extension — GCP trace alignment")
    for variant, accuracy in results.items():
        aligned, total = accuracy.total
        print(f"  {variant:18} {aligned}/{total}")
    aligned, total = results["learned_aligned"].total
    assert aligned == total == 4
    d2c_aligned, __ = results["d2c"].total
    assert d2c_aligned < aligned


def test_wrangling_is_the_provider_specific_part(benchmark):
    """Both providers' pages reduce to the same corpus shape through
    provider-specific parsers — the adaptation §5 calls out."""

    def wrangle_both():
        aws = build_catalog("ec2")
        azure = build_catalog("azure_network")
        return (
            wrangle(render_docs(aws), provider="aws", service="ec2"),
            wrangle(render_docs(azure), provider="azure",
                    service="azure_network"),
        )

    aws_docs, azure_docs = benchmark(wrangle_both)
    assert aws_docs.resources and azure_docs.resources
    # Same structured shape, regardless of page layout.
    for docs in (aws_docs, azure_docs):
        for res in docs.resources:
            assert res.api_names()
