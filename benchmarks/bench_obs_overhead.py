"""Observability-plane overhead on the serving hot path.

The plane's per-request cost is one root span, one windowed-histogram
record and one crc32 sampling draw; hop child spans only materialize
for kept traces.  The acceptance bar is <5% throughput loss on a
serve path with modeled service latency (the same 2ms GIL-releasing
sleep ``bench_serve_concurrency`` uses to stand in for real I/O wait),
measured with the full plane attached: per-tenant SLOs, tail sampling
at 5%, and exemplar tracking.

The bench also reports the raw per-request bookkeeping cost in
microseconds (no modeled latency), so regressions in the instrument
itself are visible even when the sleep hides them.
"""

import threading
import time

from repro.obs import default_slos, ObsPlane
from repro.serve import FrontDoor
from repro.telemetry import Telemetry

from bench_serve_concurrency import _ModeledLatencyEmulator

#: Acceptance bar: attached plane may cost at most this throughput
#: fraction on the modeled hot path.
MAX_OVERHEAD = 0.05


def _make_front(build, with_obs: bool, modeled: bool) -> FrontDoor:
    telemetry = Telemetry(service=build.service)
    if with_obs:
        ObsPlane(telemetry, seed=7,
                 slos=default_slos(["bench"], period=60.0),
                 sample_keep=0.05)
    factory = build.make_backend
    if modeled:
        factory = lambda: _ModeledLatencyEmulator(  # noqa: E731
            build.make_backend()
        )
    return FrontDoor(build.module, factory, telemetry=telemetry,
                     rate=1e9, burst=1e9, max_concurrent=64,
                     queue_depth=256)


def _read_throughput(front: FrontDoor, params: dict, workers: int,
                     reads_per_worker: int) -> float:
    start_line = threading.Barrier(workers + 1)
    failures: list[str] = []

    def reader():
        start_line.wait()
        for __ in range(reads_per_worker):
            response = front.invoke("DescribeVpcs", params,
                                    api_key="bench")
            if not response.success:
                failures.append(response.error_code)

    threads = [threading.Thread(target=reader) for __ in range(workers)]
    for thread in threads:
        thread.start()
    start_line.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not failures, failures[:3]
    return (workers * reads_per_worker) / elapsed


def _seed_vpc(front: FrontDoor) -> dict:
    created = front.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"},
                           api_key="bench")
    assert created.success
    return {"VpcId": created.data["id"]}


def test_obs_overhead_under_five_percent(learned_builds, bench_metrics):
    """Full plane attached: <5% throughput loss on the modeled path."""
    build = learned_builds["ec2"]
    plain = _make_front(build, with_obs=False, modeled=True)
    instrumented = _make_front(build, with_obs=True, modeled=True)
    plain_params = _seed_vpc(plain)
    obs_params = _seed_vpc(instrumented)

    # Interleave the runs so machine noise hits both sides alike.
    plain_best = obs_best = 0.0
    for __ in range(3):
        plain_best = max(plain_best, _read_throughput(
            plain, plain_params, workers=4, reads_per_worker=80))
        obs_best = max(obs_best, _read_throughput(
            instrumented, obs_params, workers=4, reads_per_worker=80))

    overhead = 1.0 - obs_best / plain_best
    print(f"\nobs overhead (modeled 2ms path): plain {plain_best:,.0f}/s, "
          f"instrumented {obs_best:,.0f}/s ({overhead:+.2%})")
    bench_metrics.gauge("modeled_throughput_plain_per_s",
                        round(plain_best, 1))
    bench_metrics.gauge("modeled_throughput_obs_per_s",
                        round(obs_best, 1))
    bench_metrics.gauge("modeled_overhead_fraction", round(overhead, 4))
    assert overhead < MAX_OVERHEAD, (
        f"observability plane cost {overhead:.2%} on the modeled hot "
        f"path (bar: {MAX_OVERHEAD:.0%})"
    )

    # The sampler must have been exercised, or the bench proves nothing.
    sampler = instrumented.telemetry.obs.sampler
    assert sampler.seen >= 4 * 80
    assert sampler.kept < sampler.seen


def test_obs_bookkeeping_cost_microseconds(learned_builds, bench_metrics):
    """Raw per-request instrument cost, no modeled latency to hide it."""
    build = learned_builds["ec2"]
    plain = _make_front(build, with_obs=False, modeled=False)
    instrumented = _make_front(build, with_obs=True, modeled=False)
    plain_params = _seed_vpc(plain)
    obs_params = _seed_vpc(instrumented)
    calls = 3000

    def best_rate(front, params):
        best = 0.0
        for __ in range(3):
            start = time.perf_counter()
            for __ in range(calls):
                front.invoke("DescribeVpcs", params, api_key="bench")
            best = max(best, calls / (time.perf_counter() - start))
        return best

    plain_rate = best_rate(plain, plain_params)
    obs_rate = best_rate(instrumented, obs_params)
    cost_us = (1.0 / obs_rate - 1.0 / plain_rate) * 1e6
    print(f"\nobs bookkeeping: plain {plain_rate:,.0f}/s, instrumented "
          f"{obs_rate:,.0f}/s (+{cost_us:.1f}us/request)")
    bench_metrics.gauge("bookkeeping_cost_us_per_request",
                        round(cost_us, 2))
    # Informational bound, deliberately loose: the instrument itself
    # must stay cheap in absolute terms even on a pure-CPU path.
    assert cost_us < 500.0
