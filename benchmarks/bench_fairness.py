"""Holistic fair allocation under adversarial load, measured.

Three numbers quantify what the allocator tentpole buys
(``BENCH_fairness.json``), all produced by the deterministic
single-threaded driver in :mod:`repro.scenarios.fairness` — every
ratio is exactly reproducible per seed, so CI gates regressions, not
scheduling noise:

1. **Victim isolation** — with an aggressor flooding at 10x each
   victim's rate into the shared pool, every victim must keep at
   least ``MIN_VICTIM_GOODPUT`` of the goodput it had with the
   aggressor absent, and its p99 time-to-outcome (including honored
   backoff) must stay within twice the isolated tail.

2. **Work conservation** — against the same skewed offered load, the
   holistic pool must admit at least as much aggregate work as the
   legacy independent per-tenant buckets: unused victim budget flows
   to the flooding tenant instead of being confiscated by static
   caps.

3. **Shard-kill budget inheritance** — killing one of two shard
   workers (no auto-restart) must leave aggregate goodput above
   ``MIN_KILL_RETENTION`` of the pre-kill rate, because the dead
   shard's grants flow to tenants on the survivor.  Without
   inheritance a 2-shard kill pins retention near 0.5.

Every phase re-proves linearizability — a fair allocator that loses
or duplicates a write would be worse than an unfair one.
"""

from repro.scenarios.fairness import (
    drive_fair_load,
    noisy_neighbor,
    shard_kill_inheritance,
)
from repro.serve import AllocationConfig, FrontDoor
from repro.serve.loadgen import verify_linearizable

#: Every victim keeps at least this fraction of its isolated goodput.
MIN_VICTIM_GOODPUT = 0.9

#: The holistic pool must admit at least this multiple of what the
#: independent-bucket baseline admits for the same offered load.
MIN_WORK_CONSERVATION = 1.0

#: Post-kill aggregate goodput floor, as a fraction of pre-kill.
MIN_KILL_RETENTION = 0.7


def test_noisy_neighbor_isolation(learned_builds, bench_metrics):
    build = learned_builds["ec2"]
    result = noisy_neighbor(
        build, seed=7, seconds=20.0,
        goodput_floor=MIN_VICTIM_GOODPUT,
    )
    ratios = result["victim_goodput_ratios"]
    contended = result["phases"]["contended"]["tenants"]
    for victim, ratio in ratios.items():
        bench_metrics.gauge(
            "victim_goodput_ratio", ratio, tenant=victim
        )
    bench_metrics.gauge(
        "victim_goodput_ratio_min", min(ratios.values())
    )
    bench_metrics.gauge(
        "victim_p99_max_s",
        max(
            stats["p99_s"]
            for name, stats in contended.items()
            if name != "aggressor"
        ),
    )
    bench_metrics.gauge(
        "aggressor_goodput_rps", contended["aggressor"]["goodput_rps"]
    )
    bench_metrics.gauge(
        "reallocations", result["allocation"]["reallocations"]
    )
    print(
        f"\nnoisy neighbor: victim goodput ratios {ratios} "
        f"(floor {MIN_VICTIM_GOODPUT}); aggressor "
        f"{contended['aggressor']['goodput_rps']} rps with "
        f"{contended['aggressor']['shed']} shed"
    )
    assert result["linearizable"], result["mismatches"]
    assert min(ratios.values()) >= MIN_VICTIM_GOODPUT, ratios
    assert all(result["victim_p99_ok"].values()), result["victim_p99_ok"]
    assert result["ok"], result


def test_work_conservation_vs_independent_buckets(
    learned_builds, bench_metrics
):
    """Same skewed offered load, two admission policies: the holistic
    pool must admit at least as much aggregate work as independent
    equal per-tenant buckets, because idle victims' budget is
    re-granted to the flooding tenant instead of sitting confiscated.

    The mix is all-writes so the token budget is the binding resource
    — degraded-mode free reads would otherwise dominate both sides of
    the comparison and hide the rate-budget difference being measured.
    """
    build = learned_builds["ec2"]
    tenants = 4
    pool_rate = 80.0
    clients = [(f"victim-{index}", 5.0) for index in range(3)]
    clients.append(("aggressor", 200.0))

    fair = FrontDoor(
        build.module, build.make_backend, seed=7,
        allocation=AllocationConfig(
            total_rate=pool_rate, total_burst=pool_rate * 0.4
        ),
    )
    fair_run = drive_fair_load(
        fair, clients, 15.0, seed=7, read_ratio=0.0
    )
    fair_ok, fair_mismatches = verify_linearizable(fair)

    legacy = FrontDoor(
        build.module, build.make_backend, seed=7,
        rate=pool_rate / tenants, burst=pool_rate * 0.4 / tenants,
    )
    legacy_run = drive_fair_load(
        legacy, clients, 15.0, seed=7, read_ratio=0.0
    )
    legacy_ok, legacy_mismatches = verify_linearizable(legacy)

    fair_total = sum(
        stats["admitted"] for stats in fair_run["tenants"].values()
    )
    legacy_total = sum(
        stats["admitted"] for stats in legacy_run["tenants"].values()
    )
    ratio = fair_total / max(1, legacy_total)
    bench_metrics.gauge("aggregate_admitted_fair", fair_total)
    bench_metrics.gauge("aggregate_admitted_independent", legacy_total)
    bench_metrics.gauge("work_conservation_ratio", round(ratio, 4))
    print(
        f"\nwork conservation: fair pool admitted {fair_total}, "
        f"independent buckets {legacy_total} ({ratio:.2f}x)"
    )
    assert fair_ok, fair_mismatches
    assert legacy_ok, legacy_mismatches
    assert ratio >= MIN_WORK_CONSERVATION, (
        f"holistic pool admitted only {ratio:.2f}x of the "
        f"independent-bucket baseline"
    )


def test_shard_kill_budget_inheritance(
    learned_builds, bench_metrics, tmp_path
):
    build = learned_builds["ec2"]
    result = shard_kill_inheritance(
        build, seed=7, data_dir=tmp_path,
        retention_floor=MIN_KILL_RETENTION,
    )
    retention = result["throughput_retention"]
    bench_metrics.gauge("shard_kill_retention", retention)
    bench_metrics.gauge("pre_kill_rps", result["pre_kill_rps"])
    bench_metrics.gauge("post_kill_rps", result["post_kill_rps"])
    print(
        f"\nshard-kill inheritance: {result['pre_kill_rps']} -> "
        f"{result['post_kill_rps']} rps (retention {retention}, "
        f"floor {MIN_KILL_RETENTION})"
    )
    assert result["linearizable"], result["mismatches"]
    assert result["allocation"]["shards_down"] == [0], result["allocation"]
    assert retention >= MIN_KILL_RETENTION, result
    assert result["ok"], result
