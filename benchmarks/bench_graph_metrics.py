"""§4.4 complexity metrics over the SM interaction graph.

The extracted specification comprises a graph of interacting state
machines; node counts and edge density give objective complexity
numbers for comparing services.
"""

from repro.core import wrangled_docs
from repro.extraction import extraction_order, graph_metrics


def test_graph_metrics(benchmark):
    def compute():
        return {
            service: graph_metrics(wrangled_docs(service))
            for service in ("ec2", "network_firewall", "dynamodb",
                            "azure_network")
        }

    metrics = benchmark(compute)
    print("\n§4.4 — SM interaction graph metrics")
    print(f"{'service':20} {'nodes':>6} {'edges':>6} {'density':>9} "
          f"{'external':>9}")
    for service, m in metrics.items():
        print(f"{service:20} {m['nodes']:>6} {m['edges']:>6} "
              f"{m['edge_density']:>9.3f} "
              f"{len(m['external_references']):>9}")
    assert metrics["ec2"]["nodes"] == 28
    assert metrics["ec2"]["edges"] > metrics["network_firewall"]["edges"]
    # NFW references the VPC, which lives outside its own docs.
    assert "vpc" in metrics["network_firewall"]["external_references"]


def test_extraction_order_is_fast_and_valid(benchmark):
    docs = wrangled_docs("ec2")
    order = benchmark(extraction_order, docs)
    position = {name: index for index, name in enumerate(order)}
    assert position["vpc"] < position["subnet"] < position["instance"]
