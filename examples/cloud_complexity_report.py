"""Quantifying cloud complexity from learned specifications (§4.4).

Extracts specs for every AWS service in the corpus and prints the
complexity analysis the paper proposes: per-SM complexity
distributions (the data behind Fig. 4), dependency-graph metrics, and
detected API anti-patterns.

    python examples/cloud_complexity_report.py
"""

from repro.analysis import (
    analyze_module,
    complexity_cdf,
    ComplexityComparison,
    module_complexities,
)
from repro.core import build_learned_emulator, wrangled_docs
from repro.extraction import graph_metrics


def ascii_cdf(series: list[tuple[int, float]], width: int = 40) -> str:
    lines = []
    for value, fraction in series:
        bar = "#" * int(fraction * width)
        lines.append(f"    {value:4d} | {bar} {fraction:.2f}")
    return "\n".join(lines)


def main() -> None:
    services = ("ec2", "network_firewall", "dynamodb")
    comparison = ComplexityComparison()
    modules = {}

    for service in services:
        build = build_learned_emulator(service, align=False)
        modules[service] = build.module
        comparison.add(service, build.module)

    print("-- SM complexity (state variables + transitions), Fig. 4 --")
    for service in services:
        module = modules[service]
        print(f"\n  {service}: {len(module.machines)} state machines")
        print(ascii_cdf(complexity_cdf(module)))

    print("\n-- Summary statistics --")
    for service, stats in comparison.summary().items():
        print(f"  {service:18} machines={stats['machines']:3} "
              f"median={stats['median']:3} mean={stats['mean']:.1f} "
              f"max={stats['max']}")

    print("\n-- Most complex state machines --")
    for service in services:
        top = sorted(module_complexities(modules[service]),
                     key=lambda c: -c.total)[:3]
        names = ", ".join(f"{c.sm}({c.total})" for c in top)
        print(f"  {service:18} {names}")

    print("\n-- Dependency-graph metrics (§4.4) --")
    for service in services:
        metrics = graph_metrics(wrangled_docs(service))
        print(f"  {service:18} nodes={metrics['nodes']:3} "
              f"edges={metrics['edges']:3} "
              f"density={metrics['edge_density']:.3f}")

    print("\n-- API anti-patterns (documentation engineering) --")
    for service in services:
        findings = analyze_module(modules[service])
        print(f"  {service}: {len(findings)} finding(s)")
        for finding in findings[:5]:
            location = finding.sm + (f".{finding.api}" if finding.api else "")
            print(f"    [{finding.kind}] {location}: {finding.detail}")


if __name__ == "__main__":
    main()
