"""Testing a DevOps program against the learned emulator (§5).

Runs the paper's basic-functionality program — create a VPC, attach a
subnet, enable MapPublicIpOnLaunch — against the learned EC2 emulator,
verifies its responses match the cloud's, and then demonstrates the
rich error decoding of §4.3 on a buggy variant of the program that
tries to delete the VPC while the internet gateway is still attached.

    python examples/devops_testing.py
"""

from repro.alignment import compare_runs, ErrorDecoder
from repro.cloud import make_cloud
from repro.core import build_learned_emulator
from repro.scenarios import basic_functionality_trace, run_trace


def main() -> None:
    print("Building the learned EC2 emulator (28 state machines) ...")
    build = build_learned_emulator("ec2")
    emulator = build.make_backend()

    print("\n-- The paper's basic-functionality DevOps program --")
    trace = basic_functionality_trace()
    emulator_run = run_trace(emulator, trace)
    for step, result in zip(trace.steps, emulator_run.results):
        print(f"  {step.api:24} success={result.response.success}")
    final = emulator_run.results[-1].response
    print(f"  subnet map_public_ip_on_launch = "
          f"{final.data['map_public_ip_on_launch']}")

    print("\n-- Responses align with the (reference) cloud --")
    cloud_run = run_trace(make_cloud("ec2"), trace)
    comparison = compare_runs(cloud_run, emulator_run)
    print(f"  trace aligned: {comparison.aligned}")

    print("\n-- Debugging a buggy DevOps program --")
    emulator.reset()
    decoder = ErrorDecoder(emulator)
    vpc = emulator.invoke("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
    igw = emulator.invoke("CreateInternetGateway", {})
    emulator.invoke(
        "AttachInternetGateway",
        {"InternetGatewayId": igw.data["id"], "VpcId": vpc.data["id"]},
    )
    subnet = emulator.invoke(
        "CreateSubnet",
        {"VpcId": vpc.data["id"], "CidrBlock": "10.0.1.0/24"},
    )
    print(f"  created {vpc.data['id']}, {igw.data['id']}, "
          f"{subnet.data['id']}")

    # The bug: tearing down the VPC before its dependents.
    params = {"VpcId": vpc.data["id"]}
    delete = emulator.invoke("DeleteVpc", params)
    print(f"  DeleteVpc -> success={delete.success}, "
          f"code={delete.error_code}")
    print("\n  Decoded explanation:")
    explanation = decoder.explain("DeleteVpc", params, delete)
    for line in explanation.render().splitlines():
        print("   ", line)

    # And a subtle one: a /29 subnet.
    bad = emulator.invoke(
        "CreateSubnet",
        {"VpcId": vpc.data["id"], "CidrBlock": "10.0.2.0/29"},
    )
    print(f"\n  CreateSubnet /29 -> success={bad.success}, "
          f"code={bad.error_code}")
    explanation = decoder.explain(
        "CreateSubnet",
        {"VpcId": vpc.data["id"], "CidrBlock": "10.0.2.0/29"},
        bad,
    )
    for line in explanation.render().splitlines():
        print("   ", line)


if __name__ == "__main__":
    main()
