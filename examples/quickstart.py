"""Quickstart: learn an emulator from documentation and talk to it.

Runs the full workflow of the paper's Fig. 2 for AWS Network Firewall —
the service where handcrafted emulators cover 5 of 45 APIs (Table 1) —
and then uses the learned emulator like a mock cloud.

    python examples/quickstart.py
"""

from repro.core import build_learned_emulator


def main() -> None:
    print("Building a learned emulator for AWS Network Firewall ...")
    build = build_learned_emulator("network_firewall")
    print(f"  extracted {len(build.module.machines)} state machines, "
          f"{build.api_count} APIs")
    print(f"  LLM calls: {build.llm.usage.requests}, "
          f"prompt tokens: {build.llm.usage.prompt_tokens}")
    if build.alignment is not None:
        print(f"  alignment: {len(build.alignment.rounds)} round(s), "
              f"{build.alignment.total_repairs} repair(s), "
              f"converged={build.alignment.converged}")

    emulator = build.make_backend()
    print("\nDriving the emulator like the real cloud:")

    policy = emulator.invoke("CreateFirewallPolicy",
                             {"PolicyName": "edge-policy"})
    print(f"  CreateFirewallPolicy -> {policy.data['id']}")

    firewall = emulator.invoke(
        "CreateFirewall",
        {"FirewallName": "edge-fw",
         "FirewallPolicyId": policy.data["id"]},
    )
    print(f"  CreateFirewall       -> {firewall.data['id']}")

    protect = emulator.invoke(
        "UpdateFirewallDeleteProtection",
        {"FirewallId": firewall.data["id"], "DeleteProtection": True},
    )
    print(f"  Enable delete protection -> success={protect.success}")

    delete = emulator.invoke("DeleteFirewall",
                             {"FirewallId": firewall.data["id"]})
    print(f"  DeleteFirewall (protected) -> success={delete.success}, "
          f"code={delete.error_code}")

    in_use = emulator.invoke(
        "DeleteFirewallPolicy", {"FirewallPolicyId": policy.data["id"]}
    )
    print(f"  DeleteFirewallPolicy (in use) -> success={in_use.success}, "
          f"code={in_use.error_code}")

    listing = emulator.invoke("ListFirewalls", {})
    print(f"  ListFirewalls -> {listing.data['count']} firewall(s)")


if __name__ == "__main__":
    main()
