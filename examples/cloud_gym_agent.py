"""The cloud gym (§4.4): a no-cost playground for DevOps agents.

Wraps the learned emulator in a reset/step environment and runs two
agents on the "public subnet" task: a scripted expert and a naive
trial-and-error agent that recovers from failures by reading the
decoded error messages.

    python examples/cloud_gym_agent.py
"""

from repro.alignment import ErrorDecoder
from repro.analysis import CloudGym, public_subnet_task
from repro.core import build_learned_emulator


def scripted_expert(gym: CloudGym) -> float:
    """Knows the dependency order; solves the task in four steps."""
    gym.reset()
    total_reward = 0.0
    vpc = gym.step("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
    total_reward += vpc.reward
    subnet = gym.step(
        "CreateSubnet",
        {"VpcId": vpc.response.data["id"], "CidrBlock": "10.0.1.0/24"},
    )
    total_reward += subnet.reward
    total_reward += gym.step(
        "ModifySubnetAttribute",
        {"SubnetId": subnet.response.data["id"],
         "MapPublicIpOnLaunch": True},
    ).reward
    igw = gym.step("CreateInternetGateway", {})
    total_reward += igw.reward
    total_reward += gym.step(
        "AttachInternetGateway",
        {"InternetGatewayId": igw.response.data["id"],
         "VpcId": vpc.response.data["id"]},
    ).reward
    return total_reward


def naive_agent(gym: CloudGym, decoder: ErrorDecoder) -> float:
    """Tries the wrong order first and repairs from decoded errors."""
    gym.reset()
    total_reward = 0.0

    # Mistake 1: create the subnet before any VPC exists.
    step = gym.step("CreateSubnet",
                    {"VpcId": "vpc-imagined", "CidrBlock": "10.0.1.0/24"})
    total_reward += step.reward
    explanation = decoder.explain(
        "CreateSubnet",
        {"VpcId": "vpc-imagined", "CidrBlock": "10.0.1.0/24"},
        step.response,
    )
    print(f"  agent hit: {explanation.code}; "
          f"decoder says: {explanation.root_cause}")

    vpc = gym.step("CreateVpc", {"CidrBlock": "10.0.0.0/16"})
    total_reward += vpc.reward
    vpc_id = vpc.response.data["id"]

    # Mistake 2: a /29 subnet.
    params = {"VpcId": vpc_id, "CidrBlock": "10.0.1.0/29"}
    step = gym.step("CreateSubnet", params)
    total_reward += step.reward
    explanation = decoder.explain("CreateSubnet", params, step.response)
    print(f"  agent hit: {explanation.code}; "
          f"decoder says: {explanation.root_cause}")

    subnet = gym.step(
        "CreateSubnet", {"VpcId": vpc_id, "CidrBlock": "10.0.1.0/24"}
    )
    total_reward += subnet.reward
    total_reward += gym.step(
        "ModifySubnetAttribute",
        {"SubnetId": subnet.response.data["id"],
         "MapPublicIpOnLaunch": True},
    ).reward
    igw = gym.step("CreateInternetGateway", {})
    total_reward += igw.reward
    final = gym.step(
        "AttachInternetGateway",
        {"InternetGatewayId": igw.response.data["id"], "VpcId": vpc_id},
    )
    total_reward += final.reward
    return total_reward


def main() -> None:
    print("Building the learned EC2 emulator for the gym ...")
    build = build_learned_emulator("ec2")
    task = public_subnet_task()
    print(f"Task: {task.description}\n")

    gym = CloudGym(emulator=build.make_backend(), task=task)
    print("Scripted expert:")
    reward = scripted_expert(gym)
    print(f"  solved={gym.solved} in {gym.steps_used} steps, "
          f"reward={reward:.2f}\n")

    gym = CloudGym(emulator=build.make_backend(), task=task)
    decoder = ErrorDecoder(gym.emulator)
    print("Naive agent (recovers from decoded errors):")
    reward = naive_agent(gym, decoder)
    print(f"  solved={gym.solved} in {gym.steps_used} steps, "
          f"reward={reward:.2f}")
    print("\nFailures cost steps but the gym risks nothing and costs "
          "nothing — the paper's zero-risk training argument.")


if __name__ == "__main__":
    main()
