"""Extending a learned emulator with a hand-authored resource.

A downstream team often needs one internal service (a deploy queue, a
feature-flag store) emulated next to the learned cloud.  The fluent
spec builder produces the same executable SMs the LLM does, so custom
resources plug into the same module — and the JSON wire endpoint makes
the whole thing answer like a cloud API server.

    python examples/extend_with_custom_resource.py
"""

import json

from repro.core import build_learned_emulator
from repro.interpreter import Emulator, JsonEndpoint
from repro.spec import ast, sm


def deploy_queue_spec() -> ast.SMSpec:
    """An internal deploy queue, written with the fluent builder."""
    return (
        sm("deploy_queue", doc="An internal deployment pipeline queue.")
        .state("environment", "enum(staging, production)",
               default="staging")
        .state("frozen", "bool", default=False)
        .state("deploys", "list")
        .create("CreateDeployQueue")
            .param("environment", "str")
            .check('!exists(environment) || environment in '
                   '["staging", "production"]',
                   code="InvalidEnvironment")
            .write("environment", "environment")
        .modify("SubmitDeploy")
            .param("deploy_queue_id", "str")
            .param("build_id", "str")
            .require("deploy_queue_id")
            .require("build_id")
            .check("self.frozen == false", code="QueueFrozen",
                   message="queue {id} is frozen for {environment}")
            .check("!contains(deploys, build_id)",
                   code="DuplicateDeploy")
            .write("deploys", "append(deploys, build_id)")
        .modify("FreezeQueue")
            .param("deploy_queue_id", "str")
            .write("frozen", "true")
        .describe("DescribeDeployQueue")
            .param("deploy_queue_id", "str")
            .read("environment")
            .read("frozen")
            .read("deploys")
        .done()
    )


def main() -> None:
    print("Learning the EC2 emulator, then splicing in a custom SM ...")
    build = build_learned_emulator("ec2")
    module = build.module
    module.add(deploy_queue_spec())
    emulator = Emulator(module,
                        notfound_codes=build.extraction.notfound_codes)
    print(f"  module now has {len(module.machines)} SMs "
          f"({module.machines['deploy_queue'].complexity} complexity "
          "for the custom one)")

    print("\nTalking to it through the JSON wire endpoint:")
    endpoint = JsonEndpoint(backend=emulator)

    def call(action: str, **parameters):
        reply = endpoint.handle(json.dumps({
            "Action": action, "Parameters": parameters,
        }))
        body = json.loads(reply)
        request_id = body["ResponseMetadata"]["RequestId"][:13]
        if JsonEndpoint.is_error(body):
            print(f"  [{request_id}] {action}: "
                  f"{body['Error']['Code']} — {body['Error']['Message']}")
        else:
            data = {k: v for k, v in body.items()
                    if k != "ResponseMetadata"}
            print(f"  [{request_id}] {action}: {data}")
        return body

    queue = call("CreateDeployQueue", Environment="production")
    queue_id = queue["id"]
    call("SubmitDeploy", DeployQueueId=queue_id, BuildId="build-401")
    call("SubmitDeploy", DeployQueueId=queue_id, BuildId="build-401")
    call("FreezeQueue", DeployQueueId=queue_id)
    call("SubmitDeploy", DeployQueueId=queue_id, BuildId="build-402")
    call("DescribeDeployQueue", DeployQueueId=queue_id)

    # The learned EC2 surface answers through the same front door.
    vpc = call("CreateVpc", CidrBlock="10.0.0.0/16")
    call("DeleteVpc", VpcId=vpc["id"])
    call("DeleteVpc", VpcId=vpc["id"])  # idempotence check: NotFound


if __name__ == "__main__":
    main()
