"""Multi-cloud emulation and portability analysis (§4.4, §5).

Learns an emulator for the Azure-flavoured catalog from its web-style
documentation, replays an Azure DevOps program against it, and then
formally compares equivalent AWS/Azure services — does Azure's VM
creation enforce the same dependency checks as AWS RunInstances?

    python examples/multicloud_portability.py
"""

from repro.analysis import compare_aws_azure, compare_aws_gcp
from repro.core import build_learned_emulator
from repro.scenarios import azure_traces, gcp_traces, run_trace


def main() -> None:
    print("Learning emulators from three providers' documentation ...")
    aws = build_learned_emulator("ec2")
    azure = build_learned_emulator("azure_network")
    gcp = build_learned_emulator("gcp_compute")
    print(f"  AWS EC2:        {len(aws.module.machines)} SMs "
          "(PDF-style API reference)")
    print(f"  Azure network:  {len(azure.module.machines)} SMs "
          "(per-resource web pages)")
    print(f"  GCP compute:    {len(gcp.module.machines)} SMs "
          "(REST discovery pages)")

    print("\n-- An Azure DevOps program on the learned emulator --")
    backend = azure.make_backend()
    trace = azure_traces()[0]
    run = run_trace(backend, trace)
    for step, result in zip(trace.steps, run.results):
        print(f"  {step.api:34} success={result.response.success}")

    print("\n-- Cross-cloud portability comparison --")
    comparisons = compare_aws_azure(aws.module, azure.module)
    for comparison in comparisons:
        ratio = comparison.portability_ratio
        print(f"\n  {comparison.left_sm:18} <-> "
              f"{comparison.right_sm:22} portability {ratio:.0%}")
        for pairing in comparison.pairings:
            if pairing.portable:
                continue
            print(f"    {pairing.left_api} vs {pairing.right_api}:")
            if pairing.left_only:
                print(f"      AWS-only checks:   "
                      f"{', '.join(pairing.left_only)}")
            if pairing.right_only:
                print(f"      Azure-only checks: "
                      f"{', '.join(pairing.right_only)}")

    print("\n-- AWS <-> GCP comparison --")
    for comparison in compare_aws_gcp(aws.module, gcp.module):
        print(f"  {comparison.left_sm:18} <-> {comparison.right_sm:18} "
              f"portability {comparison.portability_ratio:.0%}")

    print("\n-- A GCP DevOps program on its learned emulator --")
    backend = gcp.make_backend()
    trace = gcp_traces()[0]
    run = run_trace(backend, trace)
    for step, result in zip(trace.steps, run.results):
        print(f"  {step.api:34} success={result.response.success}")

    print("\nOne-sided checks are portability hazards: a program that "
          "passes on the laxer cloud fails on the stricter one.")


if __name__ == "__main__":
    main()
